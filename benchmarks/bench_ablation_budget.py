"""ABL-BUDGET: reward vs trainable-parameter budget (Section IV-C's axis).

The paper's comparison hinges on the ~50-parameter budget; this bench
sweeps the variational gate count of the quantum framework.
"""

import os

from conftest import BENCH_SEED, emit

from repro.experiments.ablations import run_parameter_budget
from repro.experiments.io import results_dir, save_json


def test_ablation_parameter_budget(benchmark):
    result = benchmark.pedantic(
        lambda: run_parameter_budget(
            budgets=(10, 25, 50),
            train_epochs=5,
            episode_limit=10,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )

    assert len(result["final_rewards"]) == 3
    assert all(r <= 0.0 for r in result["final_rewards"])

    rows = [f"{'gate budget':>12} {'final reward':>13}"]
    for budget, reward in zip(result["budgets"], result["final_rewards"]):
        rows.append(f"{budget:>12} {reward:>13.3f}")
    rows.append(f"\nrandom-walk reference: {result['random_walk_return']:.3f}")
    emit("ABL-BUDGET — reward vs variational gate budget", "\n".join(rows))
    save_json(result, os.path.join(results_dir(), "ablation_budget.json"))
