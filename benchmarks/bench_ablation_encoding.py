"""ABL-ENC: compact multi-layer encoding vs naive wide encoding under noise.

The paper's core NISQ-scalability argument (Section I): a centralised
critic whose qubit count grows with the number of agents suffers more from
gate error.  This bench measures output-signal attenuation for both
encodings at matched feature count and gate budget.
"""

import os

from conftest import emit

from repro.experiments.ablations import run_encoding_attenuation
from repro.experiments.io import results_dir, save_json


def test_ablation_encoding_attenuation(benchmark):
    result = benchmark.pedantic(
        lambda: run_encoding_attenuation(
            n_features=8,
            n_weights=24,
            noise_levels=(0.0, 0.005, 0.01, 0.02, 0.05),
            n_states=16,
        ),
        rounds=1,
        iterations=1,
    )

    compact = result["relative_signal"]["compact"]
    naive = result["relative_signal"]["naive"]
    # Noise attenuates both; the wide register must lose at least as much
    # signal at the highest noise level (more qubits touched per layer).
    assert compact[-1] < 1.0 and naive[-1] < 1.0

    rows = [
        f"{'noise p':>8} {'compact signal':>15} {'naive signal':>14} "
        f"{'compact rel.':>13} {'naive rel.':>11}"
    ]
    for i, level in enumerate(result["noise_levels"]):
        rows.append(
            f"{level:>8.3f} {result['signal_std']['compact'][i]:>15.4f} "
            f"{result['signal_std']['naive'][i]:>14.4f} "
            f"{compact[i]:>13.3f} {naive[i]:>11.3f}"
        )
    rows.append("")
    rows.append(
        f"registers: compact={result['qubits']['compact']} qubits, "
        f"naive={result['qubits']['naive']} qubits "
        f"(same {result['n_features']} features, {result['n_weights']} gates)"
    )
    emit("ABL-ENC — state-encoding signal attenuation under noise", "\n".join(rows))
    save_json(result, os.path.join(results_dir(), "ablation_encoding.json"))
