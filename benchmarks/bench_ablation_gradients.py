"""ABL-GRAD: adjoint vs parameter-shift vs finite differences.

Times each differentiation method on the paper's production circuit shape
(4 qubits, 16 features, 50 variational gates) and verifies numerical
agreement.  Adjoint is the training default; parameter-shift is the
hardware-faithful path.
"""

import os

import numpy as np
import pytest

from conftest import emit

from repro.experiments.io import results_dir, save_json
from repro.quantum.gradients import backward
from repro.quantum.vqc import build_vqc

_VQC = build_vqc(4, 16, 50, seed=3)
_RNG = np.random.default_rng(0)
_INPUTS = _RNG.uniform(size=(16, 16))
_WEIGHTS = _VQC.initial_weights(_RNG)
_UPSTREAM = _RNG.normal(size=(16, 4))

_REFERENCE = backward(
    _VQC.circuit, _VQC.observables, _INPUTS, _WEIGHTS, _UPSTREAM,
    method="adjoint",
)[1]


@pytest.mark.parametrize("method", ["adjoint", "parameter_shift", "finite_diff"])
def test_gradient_method(benchmark, method):
    gi, gw = benchmark(
        backward,
        _VQC.circuit,
        _VQC.observables,
        _INPUTS,
        _WEIGHTS,
        _UPSTREAM,
        method=method,
    )
    deviation = float(np.max(np.abs(gw - _REFERENCE)))
    tolerance = 1e-8 if method != "finite_diff" else 1e-4
    assert deviation < tolerance

    emit(
        f"ABL-GRAD — {method}",
        f"max |grad - adjoint| = {deviation:.2e} "
        f"(circuit: 4 qubits, 66 gates, batch 16)",
    )
    save_json(
        {"method": method, "max_deviation_vs_adjoint": deviation},
        os.path.join(results_dir(), f"ablation_gradients_{method}.json"),
    )
