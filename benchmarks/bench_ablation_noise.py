"""ABL-NOISE: trained-policy robustness to depolarising gate error.

The paper's future-work axis (Section V): "the impact of noise is
considerable on quantum computing".  A noiselessly-trained Proposed policy
is re-executed on the density-matrix backend at increasing per-gate error.
"""

import os

from conftest import BENCH_SEED, emit

from repro.experiments.ablations import run_noise_robustness
from repro.experiments.io import results_dir, save_json


def test_ablation_noise_robustness(benchmark):
    result = benchmark.pedantic(
        lambda: run_noise_robustness(
            noise_levels=(0.0, 0.01, 0.05, 0.15),
            train_epochs=6,
            episode_limit=12,
            n_episodes=3,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )

    rewards = result["greedy_rewards"]
    assert len(rewards) == 4
    assert all(r <= 0.0 for r in rewards)

    rows = [f"{'gate error p':>13} {'greedy total reward':>21}"]
    for level, reward in zip(result["noise_levels"], rewards):
        rows.append(f"{level:>13.3f} {reward:>21.3f}")
    emit("ABL-NOISE — policy reward vs depolarising gate error", "\n".join(rows))
    save_json(result, os.path.join(results_dir(), "ablation_noise.json"))
