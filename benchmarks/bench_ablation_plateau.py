"""ABL-PLATEAU: barren-plateau gradient variance vs register width.

The second half of the paper's small-register argument: beyond gate error
(ABL-ENC), random wide circuits also lose *trainability* — single-parameter
gradient variance decays exponentially with qubit count (McClean et al.
2018).  The paper's critic therefore compresses the joint state onto 4
qubits instead of widening with the number of agents.
"""

import os

from conftest import emit

from repro.experiments.ablations import run_barren_plateau
from repro.experiments.io import results_dir, save_json


def test_ablation_barren_plateau(benchmark):
    result = benchmark.pedantic(
        lambda: run_barren_plateau(
            qubit_counts=(2, 4, 6, 8), n_gates=30, n_samples=16
        ),
        rounds=1,
        iterations=1,
    )

    variances = result["gradient_variance"]
    # Gradient variance must collapse from the narrowest to widest register.
    assert variances[-1] < variances[0]

    rows = [f"{'qubits':>7} {'Var[dE/dw0]':>13} {'E|dE/dw0|':>11}"]
    for n, var, mean in zip(
        result["qubit_counts"], variances, result["gradient_mean_abs"]
    ):
        rows.append(f"{n:>7} {var:>13.6f} {mean:>11.6f}")
    emit(
        "ABL-PLATEAU — gradient variance vs register width", "\n".join(rows)
    )
    save_json(result, os.path.join(results_dir(), "ablation_plateau.json"))
