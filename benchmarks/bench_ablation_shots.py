"""ABL-SHOTS: trained-policy robustness to finite measurement shots.

Real hardware estimates expectation values from a finite number of
measurement samples; this bench sweeps the shot budget for a trained
Proposed policy (``exact`` = the paper's simulator regime).
"""

import os

from conftest import BENCH_SEED, emit

from repro.experiments.ablations import run_shot_budget
from repro.experiments.io import results_dir, save_json


def test_ablation_shot_budget(benchmark):
    result = benchmark.pedantic(
        lambda: run_shot_budget(
            shot_counts=(8, 64, 512, None),
            train_epochs=6,
            episode_limit=12,
            n_episodes=3,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )

    rewards = result["greedy_rewards"]
    assert len(rewards) == 4
    assert all(r <= 0.0 for r in rewards)

    rows = [f"{'shots':>8} {'greedy total reward':>21}"]
    for shots, reward in zip(result["shot_counts"], rewards):
        rows.append(f"{str(shots):>8} {reward:>21.3f}")
    emit("ABL-SHOTS — policy reward vs measurement shots", "\n".join(rows))
    save_json(result, os.path.join(results_dir(), "ablation_shots.json"))
