"""ABL-TEMPLATE: ansatz families at the paper's weight budget.

Compares the paper's torchquantum-style random layers against structured
basic-entangler and strongly-entangling templates, each trained briefly at
(approximately) the 50-weight budget.
"""

import os

from conftest import BENCH_SEED, emit

from repro.experiments.ablations import run_template_comparison
from repro.experiments.io import results_dir, save_json


def test_ablation_template_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: run_template_comparison(
            templates=("random", "basic_entangler", "strongly_entangling"),
            train_epochs=5,
            episode_limit=10,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )

    rewards = result["final_rewards"]
    assert set(rewards) == {"random", "basic_entangler", "strongly_entangling"}
    assert all(r <= 0.0 for r in rewards.values())

    rows = [f"{'template':<22} {'actor weights':>14} {'final reward':>13}"]
    for template in result["templates"]:
        rows.append(
            f"{template:<22} {result['actor_parameters'][template]:>14} "
            f"{rewards[template]:>13.3f}"
        )
    emit("ABL-TEMPLATE — ansatz families at the 50-weight budget", "\n".join(rows))
    save_json(result, os.path.join(results_dir(), "ablation_template.json"))
