"""Gate-kernel throughput: interpreted vs. program-compiled execution.

Measures the three places the program tier (:mod:`repro.quantum.program`)
replaces the interpreted per-gate loop:

- **raw gate application** per gate class — a diagonal/permutation-heavy
  circuit (rz/cz/cnot/s: phase-vector multiplies and index gathers), a
  single-qubit dense circuit (rx/ry/h: rotation kernels) and a two-qubit
  dense circuit (crx/cry) — in circuit gate applications per second;
- **adjoint reverse sweep** — one batched vector-Jacobian product through
  the paper-scale VQC (4 qubits, 16 features, 50 weights), with shared and
  per-sample weights;
- **end-to-end training** — quantum-framework ``train_epoch`` env steps/s
  with the program tier off (the PR 1/2 suffix-compiled baseline) and on.

Run under the benchmark harness::

    pytest benchmarks/bench_circuit_kernels.py --benchmark-only

or standalone for a summary table plus the machine-readable
``BENCH_circuit_kernels.json`` (tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_circuit_kernels.py [--smoke]
"""

import argparse
import os
import time

import numpy as np

from benchio import write_bench_json

from repro.config import SingleHopConfig, TrainingConfig
from repro.marl.frameworks import build_framework
from repro.quantum.backends import StatevectorBackend
from repro.quantum.circuit import ParameterRef, QuantumCircuit
from repro.quantum.gradients import adjoint_backward
from repro.quantum.program import compile_program, using_program
from repro.quantum.vqc import build_vqc

SEED = 7
GATE_BATCH = 256
GATE_QUBITS = 6
GATE_OPS = 60
ADJOINT_BATCH = 128
EPISODE_LIMIT = 25
EPISODES_PER_EPOCH = 8
ROLLOUT_ENVS = 8


def _diag_perm_circuit():
    """Diagonal/permutation-heavy: rz + cz + cnot + s."""
    circuit = QuantumCircuit(GATE_QUBITS)
    for i in range(GATE_OPS):
        wire = i % GATE_QUBITS
        kind = i % 4
        if kind == 0:
            circuit.add("rz", (wire,), ParameterRef.input(wire))
        elif kind == 1:
            circuit.add("cz", (wire, (wire + 1) % GATE_QUBITS))
        elif kind == 2:
            circuit.add("cnot", (wire, (wire + 1) % GATE_QUBITS))
        else:
            circuit.add("s", (wire,))
    return circuit


def _dense_1q_circuit():
    """Single-qubit dense rotations: rx + ry + h."""
    circuit = QuantumCircuit(GATE_QUBITS)
    for i in range(GATE_OPS):
        wire = i % GATE_QUBITS
        if i % 3 == 0:
            circuit.add("rx", (wire,), ParameterRef.input(wire))
        elif i % 3 == 1:
            circuit.add("ry", (wire,), ParameterRef.input(wire))
        else:
            circuit.add("h", (wire,))
    return circuit


def _dense_2q_circuit():
    """Two-qubit dense controlled rotations: crx + cry."""
    circuit = QuantumCircuit(GATE_QUBITS)
    for i in range(GATE_OPS):
        gate = ("crx", "cry")[i % 2]
        circuit.add(
            gate,
            (i % GATE_QUBITS, (i + 2) % GATE_QUBITS),
            ParameterRef.input(i % GATE_QUBITS),
        )
    return circuit


GATE_CLASSES = {
    "diag_perm": _diag_perm_circuit,
    "dense_1q": _dense_1q_circuit,
    "dense_2q": _dense_2q_circuit,
}


def _measure(fn, repeats):
    """Best-of-``repeats`` wall time for one call."""
    fn()  # warmup (program compile, caches, allocator)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _gate_class_rates(repeats):
    rng = np.random.default_rng(SEED)
    inputs = rng.uniform(size=(GATE_BATCH, GATE_QUBITS))
    interpreted = StatevectorBackend(program=False)
    results = {}
    for name, builder in GATE_CLASSES.items():
        circuit = builder()
        program = compile_program(circuit)
        t_interp = _measure(lambda: interpreted.evolve(circuit, inputs), repeats)
        t_prog = _measure(
            lambda: program.evolve(inputs, None, GATE_BATCH), repeats
        )
        results[name] = {
            "n_ops": circuit.n_operations,
            "batch": GATE_BATCH,
            "interpreted_gates_per_s": circuit.n_operations / t_interp,
            "program_gates_per_s": circuit.n_operations / t_prog,
            "speedup": t_interp / t_prog,
        }
    return results


def _adjoint_rates(repeats):
    rng = np.random.default_rng(SEED)
    vqc = build_vqc(4, 16, 50, seed=3)
    inputs = rng.uniform(size=(ADJOINT_BATCH, 16))
    upstream = rng.normal(size=(ADJOINT_BATCH, 4))
    shared = vqc.initial_weights(rng)
    per_sample = np.tile(
        np.stack([vqc.initial_weights(rng) for _ in range(4)]),
        (ADJOINT_BATCH // 4, 1),
    )
    results = {}
    for label, weights in (("shared", shared), ("per_sample", per_sample)):
        times = {}
        for tier, flag in (("interpreted", False), ("program", True)):
            def sweep():
                with using_program(flag):
                    adjoint_backward(
                        vqc.circuit, vqc.observables, inputs, weights, upstream
                    )
            times[tier] = _measure(sweep, repeats)
        results[label] = {
            "batch": ADJOINT_BATCH,
            "interpreted_sweeps_per_s": 1.0 / times["interpreted"],
            "program_sweeps_per_s": 1.0 / times["program"],
            "speedup": times["interpreted"] / times["program"],
        }
    return results


def _train_epoch_rate(program, n_epochs):
    with using_program(program):
        framework = build_framework(
            "proposed",
            seed=SEED,
            env_config=SingleHopConfig(episode_limit=EPISODE_LIMIT),
            train_config=TrainingConfig(
                episodes_per_epoch=EPISODES_PER_EPOCH,
                rollout_envs=ROLLOUT_ENVS,
            ),
        )
        framework.trainer.train_epoch()  # warmup
        start = time.perf_counter()
        for _ in range(n_epochs):
            framework.trainer.train_epoch()
        elapsed = (time.perf_counter() - start) / n_epochs
        framework.trainer.close()
    return EPISODES_PER_EPOCH * EPISODE_LIMIT / elapsed


def _train_epoch_rates(n_epochs):
    baseline = _train_epoch_rate(False, n_epochs)
    program = _train_epoch_rate(True, n_epochs)
    return {
        "framework": "proposed",
        "episode_limit": EPISODE_LIMIT,
        "episodes_per_epoch": EPISODES_PER_EPOCH,
        "rollout_envs": ROLLOUT_ENVS,
        "suffix_compiled_steps_per_s": baseline,
        "program_steps_per_s": program,
        "speedup": program / baseline,
    }


# -- pytest-benchmark harness entry points ----------------------------------


def _bench_gate_class(benchmark, builder, program):
    rng = np.random.default_rng(SEED)
    inputs = rng.uniform(size=(GATE_BATCH, GATE_QUBITS))
    circuit = builder()
    if program:
        compiled = compile_program(circuit)
        run = lambda: compiled.evolve(inputs, None, GATE_BATCH)  # noqa: E731
    else:
        backend = StatevectorBackend(program=False)
        run = lambda: backend.evolve(circuit, inputs)  # noqa: E731
    benchmark.pedantic(run, rounds=3, iterations=2, warmup_rounds=1)
    benchmark.extra_info["gates_per_round"] = circuit.n_operations


def test_diag_perm_interpreted(benchmark):
    """Interpreted tier on the diagonal/permutation-heavy circuit."""
    _bench_gate_class(benchmark, _diag_perm_circuit, program=False)


def test_diag_perm_program(benchmark):
    """Program tier on the diagonal/permutation-heavy circuit."""
    _bench_gate_class(benchmark, _diag_perm_circuit, program=True)


def test_dense_1q_program(benchmark):
    """Program tier on the single-qubit dense circuit."""
    _bench_gate_class(benchmark, _dense_1q_circuit, program=True)


def test_dense_2q_program(benchmark):
    """Program tier on the two-qubit dense circuit."""
    _bench_gate_class(benchmark, _dense_2q_circuit, program=True)


def test_adjoint_program(benchmark):
    """Program-compiled adjoint sweep at the paper's circuit scale."""
    rng = np.random.default_rng(SEED)
    vqc = build_vqc(4, 16, 50, seed=3)
    inputs = rng.uniform(size=(ADJOINT_BATCH, 16))
    upstream = rng.normal(size=(ADJOINT_BATCH, 4))
    weights = vqc.initial_weights(rng)
    benchmark.pedantic(
        lambda: adjoint_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        ),
        rounds=3,
        iterations=2,
        warmup_rounds=1,
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json-dir", default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer repeats (CI smoke run; numbers are noisier)",
    )
    args = parser.parse_args()
    repeats = 2 if args.smoke else 5
    n_epochs = 1 if args.smoke else 4

    gate_classes = _gate_class_rates(repeats)
    print(f"{'gate class':>12}  {'interp gates/s':>15}  {'program gates/s':>16}  {'speedup':>8}")
    for name, row in gate_classes.items():
        print(
            f"{name:>12}  {row['interpreted_gates_per_s']:>15.0f}  "
            f"{row['program_gates_per_s']:>16.0f}  {row['speedup']:>7.2f}x"
        )

    adjoint = _adjoint_rates(repeats)
    print(f"\n{'adjoint':>12}  {'interp sweeps/s':>15}  {'program sweeps/s':>16}  {'speedup':>8}")
    for name, row in adjoint.items():
        print(
            f"{name:>12}  {row['interpreted_sweeps_per_s']:>15.1f}  "
            f"{row['program_sweeps_per_s']:>16.1f}  {row['speedup']:>7.2f}x"
        )

    train = _train_epoch_rates(n_epochs)
    print(
        f"\ntrain_epoch: {train['suffix_compiled_steps_per_s']:.1f} -> "
        f"{train['program_steps_per_s']:.1f} env steps/s "
        f"({train['speedup']:.2f}x)"
    )

    path = write_bench_json(
        "BENCH_circuit_kernels.json",
        {
            "benchmark": "circuit_kernels",
            "cpu_count": os.cpu_count(),
            "smoke": bool(args.smoke),
            "gate_classes": gate_classes,
            "adjoint": adjoint,
            "train_epoch": train,
        },
        args.json_dir,
    )
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
