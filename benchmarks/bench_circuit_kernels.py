"""Gate-kernel throughput: interpreted vs. program-compiled execution.

Measures the three places the program tier (:mod:`repro.quantum.program`)
replaces the interpreted per-gate loop:

- **raw gate application** per gate class — a diagonal/permutation-heavy
  circuit (rz/cz/cnot/s: phase-vector multiplies and index gathers), a
  single-qubit dense circuit (rx/ry/h: rotation kernels) and a two-qubit
  dense circuit (crx/cry) — in circuit gate applications per second;
- **adjoint reverse sweep** — one batched vector-Jacobian product through
  the paper-scale VQC (4 qubits, 16 features, 50 weights), with shared and
  per-sample weights;
- **end-to-end training** — quantum-framework ``train_epoch`` env steps/s
  with the program tier off (the PR 1/2 suffix-compiled baseline) and on;
- **seam overhead** (numpy only) — the compiled kernels, which now dispatch
  through the array-backend seam, against a twin executor running the same
  kernel algorithm through direct numpy calls (``--check`` gates this
  dispatch cost at ≤5% per gate class), plus the allocation churn of the
  pre-seam fresh-allocation idioms vs the scratch kernels, counted as
  deterministic freshly-mapped pages per evolve.

``--backend NAME`` runs the program tier on another array backend
(``mock`` in CPU-only CI; ``cupy``/``torch`` where installed) and stamps
the choice into the artifact.

Run under the benchmark harness::

    pytest benchmarks/bench_circuit_kernels.py --benchmark-only

or standalone for a summary table plus the machine-readable
``BENCH_circuit_kernels.json`` (tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_circuit_kernels.py [--smoke]
"""

import argparse
import os
import resource
import sys
import time

import numpy as np

from benchio import write_bench_json

from repro.config import SingleHopConfig, TrainingConfig
from repro.marl.frameworks import build_framework
from repro.quantum import backend as qback
from repro.quantum.backends import StatevectorBackend
from repro.quantum.circuit import ParameterRef, QuantumCircuit
from repro.quantum.gradients import adjoint_backward
from repro.quantum.program import _resolve, compile_program, using_program
from repro.quantum.vqc import build_vqc

SEAM_OVERHEAD_BUDGET_PCT = 5.0

SEED = 7
GATE_BATCH = 256
GATE_QUBITS = 6
GATE_OPS = 60
ADJOINT_BATCH = 128
EPISODE_LIMIT = 25
EPISODES_PER_EPOCH = 8
ROLLOUT_ENVS = 8


def _diag_perm_circuit():
    """Diagonal/permutation-heavy: rz + cz + cnot + s."""
    circuit = QuantumCircuit(GATE_QUBITS)
    for i in range(GATE_OPS):
        wire = i % GATE_QUBITS
        kind = i % 4
        if kind == 0:
            circuit.add("rz", (wire,), ParameterRef.input(wire))
        elif kind == 1:
            circuit.add("cz", (wire, (wire + 1) % GATE_QUBITS))
        elif kind == 2:
            circuit.add("cnot", (wire, (wire + 1) % GATE_QUBITS))
        else:
            circuit.add("s", (wire,))
    return circuit


def _dense_1q_circuit():
    """Single-qubit dense rotations: rx + ry + h."""
    circuit = QuantumCircuit(GATE_QUBITS)
    for i in range(GATE_OPS):
        wire = i % GATE_QUBITS
        if i % 3 == 0:
            circuit.add("rx", (wire,), ParameterRef.input(wire))
        elif i % 3 == 1:
            circuit.add("ry", (wire,), ParameterRef.input(wire))
        else:
            circuit.add("h", (wire,))
    return circuit


def _dense_2q_circuit():
    """Two-qubit dense controlled rotations: crx + cry."""
    circuit = QuantumCircuit(GATE_QUBITS)
    for i in range(GATE_OPS):
        gate = ("crx", "cry")[i % 2]
        circuit.add(
            gate,
            (i % GATE_QUBITS, (i + 2) % GATE_QUBITS),
            ParameterRef.input(i % GATE_QUBITS),
        )
    return circuit


GATE_CLASSES = {
    "diag_perm": _diag_perm_circuit,
    "dense_1q": _dense_1q_circuit,
    "dense_2q": _dense_2q_circuit,
}


def _measure(fn, repeats):
    """Best-of-``repeats`` wall time for one call."""
    fn()  # warmup (program compile, caches, allocator)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _gate_class_rates(repeats):
    rng = np.random.default_rng(SEED)
    inputs = rng.uniform(size=(GATE_BATCH, GATE_QUBITS))
    interpreted = StatevectorBackend(program=False)
    results = {}
    for name, builder in GATE_CLASSES.items():
        circuit = builder()
        program = compile_program(circuit)
        t_interp = _measure(lambda: interpreted.evolve(circuit, inputs), repeats)
        t_prog = _measure(
            lambda: program.evolve(inputs, None, GATE_BATCH), repeats
        )
        results[name] = {
            "n_ops": circuit.n_operations,
            "batch": GATE_BATCH,
            "interpreted_gates_per_s": circuit.n_operations / t_interp,
            "program_gates_per_s": circuit.n_operations / t_prog,
            "speedup": t_interp / t_prog,
        }
    return results


def _adjoint_rates(repeats):
    rng = np.random.default_rng(SEED)
    vqc = build_vqc(4, 16, 50, seed=3)
    inputs = rng.uniform(size=(ADJOINT_BATCH, 16))
    upstream = rng.normal(size=(ADJOINT_BATCH, 4))
    shared = vqc.initial_weights(rng)
    per_sample = np.tile(
        np.stack([vqc.initial_weights(rng) for _ in range(4)]),
        (ADJOINT_BATCH // 4, 1),
    )
    results = {}
    for label, weights in (("shared", shared), ("per_sample", per_sample)):
        times = {}
        for tier, flag in (("interpreted", False), ("program", True)):
            def sweep():
                with using_program(flag):
                    adjoint_backward(
                        vqc.circuit, vqc.observables, inputs, weights, upstream
                    )
            times[tier] = _measure(sweep, repeats)
        results[label] = {
            "batch": ADJOINT_BATCH,
            "interpreted_sweeps_per_s": 1.0 / times["interpreted"],
            "program_sweeps_per_s": 1.0 / times["program"],
            "speedup": times["interpreted"] / times["program"],
        }
    return results


def _legacy_generator(plan, psi):
    """Pre-seam generator kernel: fancy-index gather + fresh multiply."""
    if plan.gen_kind == "diag":
        return psi * plan.gen_data
    if plan.gen_kind == "gather":
        source, phase = plan.gen_data
        taken = psi[:, source]
        return taken if phase is None else taken * phase
    return plan.apply_generator(psi)


def _legacy_step(plan, psi, theta):
    """One gate application written with the pre-seam idioms.

    Fresh allocation per gather/multiply, fancy indexing instead of
    ``take(out=)``, no in-place reuse of per-sample phase tables — exactly
    the numpy code the program tier ran before the backend seam landed.
    Dense kernels are unchanged on numpy and reuse the plan directly.
    """
    kind = plan.kind
    if kind == "diag":
        return psi if plan.phase is None else psi * plan.phase
    if kind == "gather":
        taken = psi[:, plan.source]
        return taken if plan.phase is None else taken * plan.phase
    if kind == "pdiag":
        unique_coeff, index_map = plan.coeff
        if np.ndim(theta) == 1:
            table = np.exp(1j * np.asarray(theta)[:, None] * unique_coeff)
            return psi * table[:, index_map]
        return psi * np.exp(1j * theta * unique_coeff)[index_map]
    if kind == "prot":
        half = 0.5 * np.asarray(theta)
        cos, sin = np.cos(half), np.sin(half)
        if cos.ndim == 1:
            cos, sin = cos[:, None], sin[:, None]
        g_psi = _legacy_generator(plan, psi)
        if plan.proj is None:
            return cos * psi + (-1j * sin) * g_psi
        return psi * (1.0 + (cos - 1.0) * plan.proj) + (-1j * sin) * g_psi
    return plan.apply_forward(psi, theta)


def _legacy_evolve(program, inputs, batch):
    """Run a compiled program through the pre-seam reference kernels."""
    psi = program.zero_state(batch)
    for step in program.steps:
        plan = getattr(step, "plan", None)
        if plan is None:
            # Fused weight steps run the same cached matmul either way.
            psi = step.apply(psi, inputs, None, None)
        elif plan.resolver is None:
            psi = _legacy_step(plan, psi, None)
        else:
            psi = _legacy_step(plan, psi, _resolve(plan.resolver, inputs, None))
    return psi


def _direct_generator(plan, psi):
    """Current generator kernel, direct numpy (no seam dispatch)."""
    if plan.gen_kind == "diag":
        return psi * plan.gen_data
    if plan.gen_kind == "gather":
        source, phase = plan.gen_data
        taken = psi[:, source]
        return taken if phase is None else np.multiply(taken, phase, out=taken)
    return plan.apply_generator(psi)


def _direct_step(plan, psi, theta, out):
    """One gate with the *current* kernel algorithm, but direct ``np.*``
    calls — the dispatch-free twin of ``apply_forward``.  Scratch reuse,
    ``take(out=, mode="clip")``, in-place phase multiplies: everything the
    seam path does, minus the backend indirection being measured.  Dense
    kinds fall through to the plan (their seam ops are the numpy functions
    themselves, so there is no indirection left to strip).
    """
    kind = plan.kind
    if kind == "diag":
        if plan.phase is None:
            return psi
        if out is not None:
            return np.multiply(psi, plan.phase, out=out)
        return psi * plan.phase
    if kind == "gather":
        if out is not None:
            taken = np.take(psi, plan.source, axis=1, out=out, mode="clip")
        else:
            taken = psi[:, plan.source]
        if plan.phase is None:
            return taken
        return np.multiply(taken, plan.phase, out=taken)
    if kind == "pdiag":
        unique_coeff, index_map = plan.coeff
        if np.ndim(theta) == 1:
            table = np.exp(1j * np.asarray(theta)[:, None] * unique_coeff)
            phases = np.take(table, index_map, axis=1)
            return np.multiply(psi, phases, out=phases)
        phases = np.take(np.exp(1j * theta * unique_coeff), index_map, axis=0)
        if out is not None:
            return np.multiply(psi, phases, out=out)
        return psi * phases
    if kind == "prot":
        half = 0.5 * np.asarray(theta)
        cos, sin = np.cos(half), np.sin(half)
        if cos.ndim == 1:
            cos, sin = cos[:, None], sin[:, None]
        g_psi = _direct_generator(plan, psi)
        if plan.proj is None:
            return cos * psi + (-1j * sin) * g_psi
        return psi * (1.0 + (cos - 1.0) * plan.proj) + (-1j * sin) * g_psi
    return plan.apply_forward(psi, theta)


def _direct_evolve(program, inputs, batch):
    """Run a compiled program through the dispatch-free twin kernels."""
    psi = program.zero_state(batch)
    steps = program.steps
    scratch = program._scratch_pair(psi.shape)
    last = len(steps) - 1
    for i, step in enumerate(steps):
        out = scratch[i & 1] if i != last else None
        plan = getattr(step, "plan", None)
        if plan is None:
            # Fused weight steps run the same cached matmul either way.
            psi = step.apply(psi, inputs, None, None)
            continue
        theta = (
            None
            if plan.resolver is None
            else _resolve(plan.resolver, inputs, None)
        )
        psi = _direct_step(plan, psi, theta, out)
    return psi


def _pin_allocator(threshold=8 << 20):
    """Pin glibc's mmap threshold (default: above the state-buffer size).

    glibc adapts the threshold dynamically, which makes any fresh-allocation
    path bimodal across processes: state-sized buffers either recycle
    through the heap or round-trip through mmap at ~200 minor page faults
    per evolve, a per-process coin flip that swamps a 5% overhead budget.
    Pinning removes the coin flip so the tables here are reproducible.
    No-op off glibc.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None)
        libc.mallopt(-3, threshold)  # M_MMAP_THRESHOLD = -3
    except Exception:
        pass


def _paired_overhead(run_base, run_seam, pairs):
    """Median per-pair time ratio between the two executors.

    This container's throughput drifts in multi-second bands (noisy
    neighbours, frequency scaling), so any estimator that times one
    executor for a stretch and then the other reads the band, not the
    code.  Instead each base/seam pair runs back to back inside the same
    ~ms window — a band perturbs both members alike — the order alternates
    to cancel ordering bias, and the median across pairs discards the
    stragglers a band boundary still splits.
    """
    samples = []
    order = (run_base, run_seam)
    for i in range(pairs):
        first, second = order if i % 2 == 0 else order[::-1]
        t0 = time.perf_counter()
        first()
        t1 = time.perf_counter()
        second()
        t2 = time.perf_counter()
        t_first, t_second = t1 - t0, t2 - t1
        samples.append(
            (t_first, t_second) if i % 2 == 0 else (t_second, t_first)
        )
    t_base = float(np.median([s[0] for s in samples]))
    t_seam = float(np.median([s[1] for s in samples]))
    ratio = float(np.median([s / b for b, s in samples]))
    return t_base, t_seam, ratio


def _trim_heap():
    """Release the allocator's free pages back to the OS (glibc only)."""
    try:
        import ctypes

        ctypes.CDLL(None).malloc_trim(0)
    except Exception:
        pass


def _fresh_pages(fn, iters):
    """Minor page faults per call — the transient pages each call touches.

    ``malloc_trim`` before every call hands all *freed* pages back to the
    OS, so each call re-faults exactly the pages of the buffers it
    allocates and drops; long-lived buffers (program constants, scratch)
    stay mapped and count nothing.  A deterministic measure of allocation
    churn — unlike wall clock, which depends on where the heap happens to
    recycle buffers.
    """
    fn()  # warmup (program compile, caches, scratch)
    total = 0
    for _ in range(iters):
        _trim_heap()
        before = resource.getrusage(resource.RUSAGE_SELF).ru_minflt
        fn()
        total += resource.getrusage(resource.RUSAGE_SELF).ru_minflt - before
    return total / iters


def _seam_overhead(repeats):
    """Seam cost on the numpy path per gate class, two ways.

    ``overhead_pct`` (the gated number) is pure dispatch cost: the seam
    path against a twin executor running the *same* kernel algorithm
    through direct ``np.*`` calls.  The allocation win of the scratch
    kernels over the pre-seam fresh-allocation idioms is reported as
    deterministic page counts (``preseam_pages_per_evolve`` vs
    ``seam_pages_per_evolve``) rather than wall clock, because a
    fresh-allocation baseline's speed is allocator-luck — it swings tens
    of percent either way with heap history.
    """
    rng = np.random.default_rng(SEED)
    inputs = rng.uniform(size=(GATE_BATCH, GATE_QUBITS))
    pairs = 30 * repeats
    fault_iters = 5 * repeats
    results = {}
    for name, builder in GATE_CLASSES.items():
        circuit = builder()
        program = compile_program(circuit)
        seam = program.evolve(inputs, None, GATE_BATCH)
        for reference in (
            _direct_evolve(program, inputs, GATE_BATCH),
            _legacy_evolve(program, inputs, GATE_BATCH),
        ):
            if not np.array_equal(seam, reference):
                raise AssertionError(
                    f"seam and reference kernels disagree on {name}"
                )
        t_direct, t_seam, ratio = _paired_overhead(
            lambda: _direct_evolve(program, inputs, GATE_BATCH),
            lambda: program.evolve(inputs, None, GATE_BATCH),
            pairs,
        )
        pages_legacy = _fresh_pages(
            lambda: _legacy_evolve(program, inputs, GATE_BATCH), fault_iters
        )
        pages_seam = _fresh_pages(
            lambda: program.evolve(inputs, None, GATE_BATCH), fault_iters
        )
        results[name] = {
            "direct_gates_per_s": circuit.n_operations / t_direct,
            "seam_gates_per_s": circuit.n_operations / t_seam,
            "overhead_pct": (ratio - 1.0) * 100.0,
            "preseam_pages_per_evolve": pages_legacy,
            "seam_pages_per_evolve": pages_seam,
        }
    results["budget_pct"] = SEAM_OVERHEAD_BUDGET_PCT
    results["max_overhead_pct"] = max(
        results[name]["overhead_pct"] for name in GATE_CLASSES
    )
    return results


def _train_epoch_rate(program, n_epochs):
    with using_program(program):
        framework = build_framework(
            "proposed",
            seed=SEED,
            env_config=SingleHopConfig(episode_limit=EPISODE_LIMIT),
            train_config=TrainingConfig(
                episodes_per_epoch=EPISODES_PER_EPOCH,
                rollout_envs=ROLLOUT_ENVS,
            ),
        )
        framework.trainer.train_epoch()  # warmup
        start = time.perf_counter()
        for _ in range(n_epochs):
            framework.trainer.train_epoch()
        elapsed = (time.perf_counter() - start) / n_epochs
        framework.trainer.close()
    return EPISODES_PER_EPOCH * EPISODE_LIMIT / elapsed


def _train_epoch_rates(n_epochs):
    baseline = _train_epoch_rate(False, n_epochs)
    program = _train_epoch_rate(True, n_epochs)
    return {
        "framework": "proposed",
        "episode_limit": EPISODE_LIMIT,
        "episodes_per_epoch": EPISODES_PER_EPOCH,
        "rollout_envs": ROLLOUT_ENVS,
        "suffix_compiled_steps_per_s": baseline,
        "program_steps_per_s": program,
        "speedup": program / baseline,
    }


# -- pytest-benchmark harness entry points ----------------------------------


def _bench_gate_class(benchmark, builder, program):
    rng = np.random.default_rng(SEED)
    inputs = rng.uniform(size=(GATE_BATCH, GATE_QUBITS))
    circuit = builder()
    if program:
        compiled = compile_program(circuit)
        run = lambda: compiled.evolve(inputs, None, GATE_BATCH)  # noqa: E731
    else:
        backend = StatevectorBackend(program=False)
        run = lambda: backend.evolve(circuit, inputs)  # noqa: E731
    benchmark.pedantic(run, rounds=3, iterations=2, warmup_rounds=1)
    benchmark.extra_info["gates_per_round"] = circuit.n_operations


def test_diag_perm_interpreted(benchmark):
    """Interpreted tier on the diagonal/permutation-heavy circuit."""
    _bench_gate_class(benchmark, _diag_perm_circuit, program=False)


def test_diag_perm_program(benchmark):
    """Program tier on the diagonal/permutation-heavy circuit."""
    _bench_gate_class(benchmark, _diag_perm_circuit, program=True)


def test_dense_1q_program(benchmark):
    """Program tier on the single-qubit dense circuit."""
    _bench_gate_class(benchmark, _dense_1q_circuit, program=True)


def test_dense_2q_program(benchmark):
    """Program tier on the two-qubit dense circuit."""
    _bench_gate_class(benchmark, _dense_2q_circuit, program=True)


def test_adjoint_program(benchmark):
    """Program-compiled adjoint sweep at the paper's circuit scale."""
    rng = np.random.default_rng(SEED)
    vqc = build_vqc(4, 16, 50, seed=3)
    inputs = rng.uniform(size=(ADJOINT_BATCH, 16))
    upstream = rng.normal(size=(ADJOINT_BATCH, 4))
    weights = vqc.initial_weights(rng)
    benchmark.pedantic(
        lambda: adjoint_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        ),
        rounds=3,
        iterations=2,
        warmup_rounds=1,
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json-dir", default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer repeats (CI smoke run; numbers are noisier)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=qback.available_array_backends(),
        help="array backend the program tier runs on (default: process default)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail if numpy seam overhead exceeds {SEAM_OVERHEAD_BUDGET_PCT}%% "
        "on any gate class",
    )
    args = parser.parse_args()
    _pin_allocator()
    if args.backend is not None:
        qback.set_default_array_backend(args.backend)
    backend_name = qback.default_array_backend().name
    repeats = 2 if args.smoke else 5
    n_epochs = 1 if args.smoke else 4

    gate_classes = _gate_class_rates(repeats)
    print(f"{'gate class':>12}  {'interp gates/s':>15}  {'program gates/s':>16}  {'speedup':>8}")
    for name, row in gate_classes.items():
        print(
            f"{name:>12}  {row['interpreted_gates_per_s']:>15.0f}  "
            f"{row['program_gates_per_s']:>16.0f}  {row['speedup']:>7.2f}x"
        )

    adjoint = _adjoint_rates(repeats)
    print(f"\n{'adjoint':>12}  {'interp sweeps/s':>15}  {'program sweeps/s':>16}  {'speedup':>8}")
    for name, row in adjoint.items():
        print(
            f"{name:>12}  {row['interpreted_sweeps_per_s']:>15.1f}  "
            f"{row['program_sweeps_per_s']:>16.1f}  {row['speedup']:>7.2f}x"
        )

    train = _train_epoch_rates(n_epochs)
    print(
        f"\ntrain_epoch: {train['suffix_compiled_steps_per_s']:.1f} -> "
        f"{train['program_steps_per_s']:.1f} env steps/s "
        f"({train['speedup']:.2f}x)"
    )

    seam = None
    if backend_name == "numpy":
        seam = _seam_overhead(repeats)
        print(
            f"\n{'seam overhead':>14}  {'direct gates/s':>14}  "
            f"{'seam gates/s':>13}  {'dispatch':>9}  {'pages/evolve pre->seam':>22}"
        )
        for name in GATE_CLASSES:
            row = seam[name]
            print(
                f"{name:>14}  {row['direct_gates_per_s']:>14.0f}  "
                f"{row['seam_gates_per_s']:>13.0f}  {row['overhead_pct']:>8.2f}%  "
                f"{row['preseam_pages_per_evolve']:>10.0f} -> "
                f"{row['seam_pages_per_evolve']:.0f}"
            )

    path = write_bench_json(
        "BENCH_circuit_kernels.json",
        {
            "benchmark": "circuit_kernels",
            "cpu_count": os.cpu_count(),
            "smoke": bool(args.smoke),
            "array_backend": backend_name,
            "gate_classes": gate_classes,
            "adjoint": adjoint,
            "train_epoch": train,
            "seam_overhead": seam,
        },
        args.json_dir,
    )
    print(f"\nwrote {path}")

    if args.check:
        if seam is None:
            print("seam-overhead check requires the numpy backend; skipped")
        elif seam["max_overhead_pct"] > SEAM_OVERHEAD_BUDGET_PCT:
            print(
                f"FAIL: seam overhead {seam['max_overhead_pct']:.2f}% exceeds "
                f"budget {SEAM_OVERHEAD_BUDGET_PCT}%"
            )
            sys.exit(1)
        else:
            print(
                f"seam overhead {seam['max_overhead_pct']:.2f}% within "
                f"{SEAM_OVERHEAD_BUDGET_PCT}% budget"
            )


if __name__ == "__main__":
    main()
