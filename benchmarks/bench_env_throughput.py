"""Microbenchmarks of the environment and training-loop substrate."""

import numpy as np

from repro.config import SingleHopConfig, TrainingConfig
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.marl.frameworks import build_framework


def test_env_step_throughput(benchmark):
    env = SingleHopOffloadEnv(
        SingleHopConfig(episode_limit=10_000), rng=np.random.default_rng(0)
    )
    env.reset()
    rng = np.random.default_rng(1)
    actions = [rng.integers(4) for _ in range(4)]

    benchmark(env.step, actions)


def test_env_episode(benchmark):
    env = SingleHopOffloadEnv(
        SingleHopConfig(episode_limit=100), rng=np.random.default_rng(0)
    )
    rng = np.random.default_rng(1)

    def run_episode():
        env.reset()
        done = False
        while not done:
            result = env.step([int(rng.integers(4)) for _ in range(4)])
            done = result.done

    benchmark(run_episode)


def test_proposed_train_epoch(benchmark):
    """One full CTDE epoch of the quantum framework (rollout + update)."""
    framework = build_framework(
        "proposed",
        seed=3,
        env_config=SingleHopConfig(episode_limit=15),
        train_config=TrainingConfig(
            episodes_per_epoch=2, actor_lr=1e-3, critic_lr=1e-3
        ),
    )
    benchmark.pedantic(
        framework.trainer.train_epoch, rounds=2, iterations=1, warmup_rounds=1
    )


def test_comp3_train_epoch(benchmark):
    """One full CTDE epoch of the large classical baseline."""
    framework = build_framework(
        "comp3",
        seed=3,
        env_config=SingleHopConfig(episode_limit=15),
        train_config=TrainingConfig(
            episodes_per_epoch=2, actor_lr=1e-3, critic_lr=1e-3
        ),
    )
    benchmark.pedantic(
        framework.trainer.train_epoch, rounds=2, iterations=1, warmup_rounds=1
    )
