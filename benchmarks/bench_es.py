"""ES training throughput: serial member loop vs stacked vs sharded.

Measures the evolutionary-strategies engine
(:class:`repro.marl.evolution.ESTrainer`) on the quantum "proposed"
framework across its three interchangeable evaluation engines:

- **serial** — the per-member reference loop (one circuit evaluation per
  member per env step; the semantic oracle),
- **stacked** — the in-process single-circuit-call path (all population
  members ride the per-sample-weight axis: one evaluation per env step for
  every ``P * k * n_agents`` observation),
- **sharded** — the population split across worker processes over both
  transition transports.

Reported per engine: generations/s, candidate evaluations/s (population
members scored per second — the ES scaling axis), and env steps/s.  The
standalone entry point writes ``BENCH_es.json`` so the perf trajectory is
tracked across PRs; like the rollout benches, the sharded engines need
real cores to win (read ``cpu_count`` next to the ratios).

Run under the benchmark harness::

    pytest benchmarks/bench_es.py --benchmark-only

or standalone::

    PYTHONPATH=src python benchmarks/bench_es.py [--smoke] \
        [--transports pipe shm]
"""

import argparse
import os
import time

from benchio import write_bench_json

from repro.config import SingleHopConfig, TrainingConfig
from repro.marl.frameworks import build_framework

SEED = 3
EPISODE_LIMIT = 25
POPULATION = 8
EPISODES_PER_MEMBER = 1
WORKER_COUNTS = (2, 4)
TRANSPORTS = ("pipe", "shm")
JSON_NAME = "BENCH_es.json"


def _build_trainer(population=POPULATION, episode_limit=EPISODE_LIMIT,
                   rollout_mode="vector", rollout_workers=1,
                   rollout_transport="auto"):
    framework = build_framework(
        "proposed",
        seed=SEED,
        env_config=SingleHopConfig(episode_limit=episode_limit),
        train_config=TrainingConfig(
            trainer="es",
            episodes_per_epoch=EPISODES_PER_MEMBER,
            es_population=population,
            rollout_mode=rollout_mode,
            rollout_workers=rollout_workers,
            rollout_transport=rollout_transport,
        ),
    )
    return framework.trainer


# -- pytest-benchmark harness -------------------------------------------------

def test_es_serial_member_loop(benchmark):
    """Reference: one generation with per-member circuit evaluation."""
    trainer = _build_trainer(rollout_mode="serial")
    benchmark.pedantic(
        trainer.train_epoch, rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["candidates_per_round"] = trainer.population


def test_es_stacked(benchmark):
    """One stacked per-sample-weight circuit call per env step."""
    trainer = _build_trainer(rollout_mode="vector")
    benchmark.pedantic(
        trainer.train_epoch, rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["candidates_per_round"] = trainer.population


def test_es_sharded_w2(benchmark):
    """Population sharded over 2 worker processes (pipe transport)."""
    trainer = _build_trainer(rollout_mode="sharded", rollout_workers=2,
                             rollout_transport="pipe")
    try:
        benchmark.pedantic(
            trainer.train_epoch, rounds=3, iterations=1, warmup_rounds=1
        )
        benchmark.extra_info["candidates_per_round"] = trainer.population
    finally:
        trainer.close()


# -- standalone table + JSON artifact -----------------------------------------

def _measure_generation(trainer, repeats=3):
    """Best-of-``repeats`` seconds per ES generation."""
    trainer.train_epoch()  # warmup (pool startup, compiled caches)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        trainer.train_epoch()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(population=POPULATION, episode_limit=EPISODE_LIMIT,
                  worker_counts=WORKER_COUNTS, transports=TRANSPORTS,
                  repeats=3):
    """Measure every ES engine; returns the result document."""
    engines = {}

    def record_engine(name, rollout_mode, workers=1, transport="auto",
                      extra=None):
        trainer = _build_trainer(
            population=population, episode_limit=episode_limit,
            rollout_mode=rollout_mode, rollout_workers=workers,
            rollout_transport=transport,
        )
        try:
            seconds = _measure_generation(trainer, repeats)
        finally:
            trainer.close()
        env_steps = population * EPISODES_PER_MEMBER * episode_limit
        entry = {
            "seconds_per_generation": seconds,
            "generations_per_s": 1.0 / seconds,
            "candidates_per_s": population / seconds,
            "env_steps_per_s": env_steps / seconds,
            "population": population,
        }
        if extra:
            entry.update(extra)
        engines[name] = entry
        return entry

    serial = record_engine("serial_loop", "serial")
    stacked = record_engine("stacked", "vector")
    stacked["speedup_vs_serial"] = (
        serial["seconds_per_generation"] / stacked["seconds_per_generation"]
    )
    for transport in transports:
        for workers in worker_counts:
            entry = record_engine(
                f"sharded_w{workers}_{transport}", "sharded",
                workers=workers, transport=transport,
                extra={"n_workers": workers, "transport": transport},
            )
            entry["speedup_vs_serial"] = (
                serial["seconds_per_generation"]
                / entry["seconds_per_generation"]
            )
            entry["speedup_vs_stacked"] = (
                stacked["seconds_per_generation"]
                / entry["seconds_per_generation"]
            )
    return {
        "benchmark": "es",
        "framework": "proposed",
        "population": population,
        "episodes_per_member": EPISODES_PER_MEMBER,
        "episode_limit": episode_limit,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "transports": list(transports),
        "engines": engines,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI (still exercises every engine)",
    )
    parser.add_argument(
        "--transports", nargs="+", default=list(TRANSPORTS),
        choices=list(TRANSPORTS),
        help="which sharded transition transports to measure",
    )
    parser.add_argument("--json-dir", default=None)
    args = parser.parse_args()
    if args.smoke:
        document = run_benchmark(
            population=4, episode_limit=5, worker_counts=(2,), repeats=2,
            transports=tuple(args.transports),
        )
    else:
        document = run_benchmark(transports=tuple(args.transports))

    print(f"{'engine':>20}  {'candidates/s':>13}  {'generations/s':>14}  "
          f"{'vs serial':>10}")
    serial_rate = document["engines"]["serial_loop"]["candidates_per_s"]
    for name, record in document["engines"].items():
        print(f"{name:>20}  {record['candidates_per_s']:>13.2f}  "
              f"{record['generations_per_s']:>14.3f}  "
              f"{record['candidates_per_s'] / serial_rate:>9.2f}x")
    path = write_bench_json(JSON_NAME, document, args.json_dir)
    print(f"\nwrote {path} (cpu_count={document['cpu_count']})")


if __name__ == "__main__":
    main()
