"""Fig. 3(a): total reward vs training epoch, four frameworks.

The timed body retrains the paper's headline arm (Proposed) end to end at
benchmark scale; the printed panel reproduces the full four-framework
series from the shared run, with the paper's reference final values for
comparison.
"""

import os

from conftest import BENCH_PRESET, BENCH_SEED, emit

from repro.experiments.fig3 import run_fig3
from repro.experiments.io import save_csv, results_dir
from repro.viz.ascii_plots import line_plot

PAPER_FINAL_REWARDS = {
    "proposed": -3.0,
    "comp1": -16.6,
    "comp2": -22.5,
    "comp3": -2.8,
}


def test_fig3a_total_reward(benchmark, fig3_result):
    result = benchmark.pedantic(
        lambda: run_fig3(
            preset=BENCH_PRESET, seed=BENCH_SEED, frameworks=("proposed",)
        ),
        rounds=1,
        iterations=1,
    )
    assert result["summaries"]["proposed"]["total_reward"] <= 0.0

    series = {
        name: fig3_result["series"][name]["total_reward"]
        for name in fig3_result["series"]
    }
    emit(
        "Fig. 3(a) — total reward vs training epoch",
        line_plot(series, title=f"preset={fig3_result['preset']}")
        + "\n\npaper final rewards (1000 epochs, T~350): "
        + ", ".join(f"{k}={v}" for k, v in PAPER_FINAL_REWARDS.items())
        + "\nmeasured finals: "
        + ", ".join(
            f"{name}={summary['total_reward']:.2f}"
            for name, summary in fig3_result["summaries"].items()
        )
        + f"\nrandom walk: paper=-33.2, measured={fig3_result['random_walk_return']:.2f}",
    )
    save_csv(
        {"epoch": list(range(1, fig3_result["n_epochs"] + 1)), **series},
        os.path.join(results_dir(), "fig3a_total_reward.csv"),
    )
