"""Fig. 3(b): average queue state vs training epoch.

Paper reference (converged): Proposed 0.460, Comp1 0.480, Comp2 0.510,
Comp3 0.453 — all near the balanced half-full operating point, with the
better frameworks slightly below it.
"""

import os

from conftest import emit

from repro.experiments.io import results_dir, save_csv
from repro.marl.metrics import exponential_moving_average
from repro.viz.ascii_plots import line_plot

PAPER_AVG_QUEUE = {
    "proposed": 0.460,
    "comp1": 0.480,
    "comp2": 0.510,
    "comp3": 0.453,
}


def _panel(fig3_result):
    series = {
        name: exponential_moving_average(
            fig3_result["series"][name]["mean_queue"], alpha=0.3
        )
        for name in fig3_result["series"]
    }
    finals = {
        name: fig3_result["summaries"][name]["mean_queue"]
        for name in fig3_result["summaries"]
    }
    return series, finals


def test_fig3b_avg_queue(benchmark, fig3_result):
    series, finals = benchmark(_panel, fig3_result)

    for name, value in finals.items():
        assert 0.0 <= value <= 1.0

    emit(
        "Fig. 3(b) — average queue vs training epoch",
        line_plot(series, title="avg queue (EMA)")
        + "\n\npaper finals: "
        + ", ".join(f"{k}={v:.3f}" for k, v in PAPER_AVG_QUEUE.items())
        + "\nmeasured finals: "
        + ", ".join(f"{k}={v:.3f}" for k, v in finals.items()),
    )
    save_csv(
        {
            "epoch": list(range(1, fig3_result["n_epochs"] + 1)),
            **{k: v.tolist() for k, v in series.items()},
        },
        os.path.join(results_dir(), "fig3b_avg_queue.csv"),
    )
