"""Fig. 3(c): queue-empty-event ratio vs training epoch.

Paper reference ordering (high -> low): Comp2, Comp1, Proposed, Comp3.
"""

import os

from conftest import emit

from repro.experiments.io import results_dir, save_csv
from repro.marl.metrics import exponential_moving_average
from repro.viz.ascii_plots import line_plot

PAPER_ORDER_HIGH_TO_LOW = ["comp2", "comp1", "proposed", "comp3"]


def _panel(fig3_result):
    series = {
        name: exponential_moving_average(
            fig3_result["series"][name]["empty_ratio"], alpha=0.3
        )
        for name in fig3_result["series"]
    }
    finals = {
        name: fig3_result["summaries"][name]["empty_ratio"]
        for name in fig3_result["summaries"]
    }
    order = sorted(finals, key=finals.get, reverse=True)
    return series, finals, order


def test_fig3c_empty_ratio(benchmark, fig3_result):
    series, finals, order = benchmark(_panel, fig3_result)

    for value in finals.values():
        assert 0.0 <= value <= 1.0

    emit(
        "Fig. 3(c) — queue-empty ratio vs training epoch",
        line_plot(series, title="empty ratio (EMA)")
        + f"\n\npaper order (high->low):    {' > '.join(PAPER_ORDER_HIGH_TO_LOW)}"
        + f"\nmeasured order (high->low): {' > '.join(order)}"
        + "\nmeasured finals: "
        + ", ".join(f"{k}={v:.3f}" for k, v in finals.items()),
    )
    save_csv(
        {
            "epoch": list(range(1, fig3_result["n_epochs"] + 1)),
            **{k: v.tolist() for k, v in series.items()},
        },
        os.path.join(results_dir(), "fig3c_empty_ratio.csv"),
    )
