"""Fig. 3(d): queue-overflow ratio vs training epoch.

Paper reference ordering (low -> high): Proposed, Comp3, Comp2, Comp1.
"""

import os

from conftest import emit

from repro.experiments.io import results_dir, save_csv
from repro.marl.metrics import exponential_moving_average
from repro.viz.ascii_plots import line_plot

PAPER_ORDER_LOW_TO_HIGH = ["proposed", "comp3", "comp2", "comp1"]


def _panel(fig3_result):
    series = {
        name: exponential_moving_average(
            fig3_result["series"][name]["overflow_ratio"], alpha=0.3
        )
        for name in fig3_result["series"]
    }
    finals = {
        name: fig3_result["summaries"][name]["overflow_ratio"]
        for name in fig3_result["summaries"]
    }
    order = sorted(finals, key=finals.get)
    return series, finals, order


def test_fig3d_overflow(benchmark, fig3_result):
    series, finals, order = benchmark(_panel, fig3_result)

    for value in finals.values():
        assert 0.0 <= value <= 1.0

    emit(
        "Fig. 3(d) — queue-overflow ratio vs training epoch",
        line_plot(series, title="overflow ratio (EMA)")
        + f"\n\npaper order (low->high):    {' > '.join(PAPER_ORDER_LOW_TO_HIGH)}"
        + f"\nmeasured order (low->high): {' > '.join(order)}"
        + "\nmeasured finals: "
        + ", ".join(f"{k}={v:.3f}" for k, v in finals.items()),
    )
    save_csv(
        {
            "epoch": list(range(1, fig3_result["n_epochs"] + 1)),
            **{k: v.tolist() for k, v in series.items()},
        },
        os.path.join(results_dir(), "fig3d_overflow.csv"),
    )
