"""Fig. 4: the 12-unit-step demonstration with qubit-state heatmaps.

The timed body trains a small Proposed framework and rolls the trained
policy for 12 steps, capturing queue trajectories and the first agent's
4x4 amplitude heatmap (magnitude + phase, HLS-colourable) at every step —
exactly the content of the paper's Fig. 4.
"""

import os

import numpy as np

from conftest import BENCH_SEED, emit

from repro.experiments.fig4 import format_fig4_report, run_fig4
from repro.experiments.io import results_dir, save_json


def test_fig4_demonstration(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4(
            train_epochs=4, n_steps=12, seed=BENCH_SEED, episode_limit=15
        ),
        rounds=1,
        iterations=1,
    )
    assert result["n_steps"] == 12
    for step in result["steps"]:
        magnitude = np.asarray(step["heatmap_magnitude"])
        assert magnitude.shape == (4, 4)
        # Amplitude grids are normalised states.
        assert (magnitude**2).sum() == (
            np.float64(1.0)
        ) or abs((magnitude**2).sum() - 1.0) < 1e-9

    emit("Fig. 4 — demonstration", format_fig4_report(result))
    save_json(result, os.path.join(results_dir(), "fig4_demonstration.json"))
