"""Telemetry overhead gate: vector-rollout throughput with obs off vs on.

The ``repro.obs`` contract is *near-zero overhead while disabled* — every
instrumented hot path pays one module-global flag check and nothing else.
This bench measures env steps/sec of the N-copy vectorized collection round
(the hottest instrumented loop in the repo) under four conditions:

- **baseline** — telemetry disabled, registry never touched;
- **disabled** — telemetry toggled on and back off first (so the flag has
  been exercised), then measured disabled, flight recording off — the
  floor every other condition is judged against;
- **flight** — telemetry still disabled but the flight recorder on (the
  shipped always-on default): isolates the ring's cost in the hot path;
- **enabled** — telemetry on: counters, histograms, spans, and the
  span→ring flight events all live.

and writes ``BENCH_obs_overhead.json`` with the overhead ratios against the
budgets the observability PRs promise: disabled within 2 % of baseline,
flight-on within 3 % of disabled, enabled within 10 % of baseline.
``--check`` exits nonzero when a budget is blown (the CI observability job
runs ``--smoke --check``).

Standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]
"""

import argparse
import sys
import time

import numpy as np

from benchio import write_bench_json

from repro import obs
from repro.obs import flight as obs_flight
from repro.config import SingleHopConfig
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.vector import make_vector_env
from repro.marl.frameworks import build_framework
from repro.marl.rollout import VectorRolloutCollector

SEED = 3
EPISODE_LIMIT = 25
N_ENVS = 8
DISABLED_BUDGET = 0.02
FLIGHT_BUDGET = 0.03
ENABLED_BUDGET = 0.10


def _make_collector(n_envs, episode_limit):
    framework = build_framework(
        "proposed", seed=SEED,
        env_config=SingleHopConfig(episode_limit=episode_limit),
    )
    env = SingleHopOffloadEnv(
        SingleHopConfig(episode_limit=episode_limit),
        rng=np.random.default_rng(SEED),
    )
    return VectorRolloutCollector(
        make_vector_env(env, n_envs), framework.actors
    )


def _measure(n_envs, episode_limit, repeats):
    """Best-of-``repeats`` steps/sec of one full collection round."""
    collector = _make_collector(n_envs, episode_limit)
    rng = np.random.default_rng(SEED + 1)
    env_steps = n_envs * episode_limit

    def round_():
        collector.collect(n_envs, rng)

    round_()  # warmup: compiled-program + suffix-unitary caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        round_()
        best = min(best, time.perf_counter() - start)
    return env_steps / best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json-dir", default=None)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workload for the CI gate")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when an overhead budget is blown")
    args = parser.parse_args(argv)
    episode_limit = 10 if args.smoke else EPISODE_LIMIT
    repeats = 3 if args.smoke else 5

    previous = obs.set_enabled(False)
    previous_flight = obs_flight.set_enabled(False)
    try:
        baseline = _measure(N_ENVS, episode_limit, repeats)

        # Steady-state disabled: the flag has flipped at least once, the
        # registry holds whatever an earlier telemetry scope left behind.
        obs.set_enabled(True)
        obs.set_enabled(False)
        disabled = _measure(N_ENVS, episode_limit, repeats)

        # The flight recorder alone (its always-on shipped default),
        # telemetry still off — judged against the disabled floor.
        obs_flight.set_enabled(True)
        flight = _measure(N_ENVS, episode_limit, repeats)

        obs.set_enabled(True)
        enabled = _measure(N_ENVS, episode_limit, repeats)
    finally:
        obs.set_enabled(previous)
        obs_flight.set_enabled(previous_flight)
        obs.reset()
        obs_flight.reset()

    def overhead(rate, reference=None):
        return max(0.0, 1.0 - rate / (reference or baseline))

    results = {
        "baseline": {"env_steps_per_s": baseline},
        "disabled": {
            "env_steps_per_s": disabled,
            "overhead": overhead(disabled),
            "budget": DISABLED_BUDGET,
            "within_budget": overhead(disabled) <= DISABLED_BUDGET,
        },
        "flight": {
            "env_steps_per_s": flight,
            "overhead": overhead(flight, disabled),
            "reference": "disabled",
            "budget": FLIGHT_BUDGET,
            "within_budget": overhead(flight, disabled) <= FLIGHT_BUDGET,
        },
        "enabled": {
            "env_steps_per_s": enabled,
            "overhead": overhead(enabled),
            "budget": ENABLED_BUDGET,
            "within_budget": overhead(enabled) <= ENABLED_BUDGET,
        },
    }
    print(f"{'mode':>10}  {'env steps/s':>12}  {'overhead':>9}  budget")
    print(f"{'baseline':>10}  {baseline:>12.1f}  {'-':>9}  -")
    for mode in ("disabled", "flight", "enabled"):
        entry = results[mode]
        flag = "ok" if entry["within_budget"] else "OVER"
        print(
            f"{mode:>10}  {entry['env_steps_per_s']:>12.1f}  "
            f"{entry['overhead']:>8.1%}  <={entry['budget']:.0%} [{flag}]"
        )
    path = write_bench_json(
        "BENCH_obs_overhead.json",
        {
            "benchmark": "obs_overhead",
            "framework": "proposed",
            "n_envs": N_ENVS,
            "episode_limit": episode_limit,
            "repeats": repeats,
            "smoke": args.smoke,
            "results": results,
        },
        args.json_dir,
    )
    print(f"\nwrote {path}")
    if args.check and not (
        results["disabled"]["within_budget"]
        and results["flight"]["within_budget"]
        and results["enabled"]["within_budget"]
    ):
        print("telemetry overhead budget exceeded", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
