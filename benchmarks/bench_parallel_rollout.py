"""Rollout collection throughput: serial vs. vectorized vs. process-sharded.

Measures environment steps per second of episode collection on the quantum
actor framework ("proposed") for the three interchangeable engines:

- the serial reference loop (:func:`repro.marl.trainer.rollout_episode`),
- the in-process vectorized engine
  (:class:`repro.marl.rollout.VectorRolloutCollector`) at ``N`` lockstep
  copies, and
- the process-sharded worker pool
  (:class:`repro.marl.parallel.ShardedRolloutCollector`) at the same ``N``
  split across ``W`` worker processes, each evaluating its shard's circuits
  locally — measured over **both transition transports** (the pickle-pipe
  fallback and the zero-copy shared-memory ring).

A **ragged axis** measures the batched engines on the overflow-terminating
env family (``terminate_on_overflow=True``), where the sharded engine runs
the bounded-probe stopping-round negotiation instead of the one-command
fast path.  Ragged episode lengths vary, so those records report completed
episodes per second and a ``ragged_vs_fixed`` ratio against the same
engine's fixed-length episode rate.

The standalone entry point prints a summary table and writes the
machine-readable ``BENCH_parallel_rollout.json`` (steps/s per engine and
transport plus speedup ratios and host info) so the performance trajectory
is tracked across PRs.  The sharded engine pays per-epoch serialization and
process scheduling overhead, so its win over the single-process vector
engine requires real cores: on a single-CPU container expect parity at
best, and read ``cpu_count`` in the JSON alongside the ratios.  The
``shm``-vs-``pipe`` ratio isolates just the transport cost.

Run under the benchmark harness::

    pytest benchmarks/bench_parallel_rollout.py --benchmark-only

or standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_rollout.py \
        [--smoke] [--transports pipe shm]
"""

import argparse
import os
import time

import numpy as np

from benchio import write_bench_json

from repro.config import SingleHopConfig
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.vector import make_vector_env
from repro.marl.frameworks import build_framework
from repro.marl.parallel import ShardedRolloutCollector
from repro.marl.rollout import VectorRolloutCollector
from repro.marl.trainer import rollout_episode

SEED = 3
EPISODE_LIMIT = 25
N_ENVS = 8
WORKER_COUNTS = (2, 4)
TRANSPORTS = ("pipe", "shm")
JSON_NAME = "BENCH_parallel_rollout.json"


def _build_actors(episode_limit=EPISODE_LIMIT):
    framework = build_framework(
        "proposed", seed=SEED,
        env_config=SingleHopConfig(episode_limit=episode_limit),
    )
    return framework.actors


def _make_env(episode_limit=EPISODE_LIMIT, ragged=False):
    # The ragged variant is the overflow-terminating env family the ragged
    # round protocol runs on: episode_limit becomes a horizon cap and the
    # queue preload makes early endings common (see tests/helpers.py).
    config = SingleHopConfig(
        episode_limit=episode_limit,
        terminate_on_overflow=ragged,
        initial_queue_level=0.8 if ragged else 0.5,
    )
    return SingleHopOffloadEnv(config, rng=np.random.default_rng(SEED))


def _make_vector_collector(n_envs, actors=None, episode_limit=EPISODE_LIMIT,
                           ragged=False):
    actors = actors if actors is not None else _build_actors(episode_limit)
    return VectorRolloutCollector(
        make_vector_env(_make_env(episode_limit, ragged=ragged), n_envs),
        actors,
    )


def _make_sharded_collector(n_envs, n_workers, actors=None,
                            episode_limit=EPISODE_LIMIT, transport="pipe",
                            ragged=False):
    actors = actors if actors is not None else _build_actors(episode_limit)
    return ShardedRolloutCollector(
        _make_env(episode_limit, ragged=ragged), actors,
        n_envs=n_envs, n_workers=n_workers, transport=transport,
    )


# -- pytest-benchmark harness -------------------------------------------------

def test_serial_rollout(benchmark):
    """Reference: one serial episode (env steps = EPISODE_LIMIT)."""
    actors = _build_actors()
    env = _make_env()
    rng = np.random.default_rng(SEED + 1)
    benchmark.pedantic(
        lambda: rollout_episode(env, actors, rng),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["env_steps_per_round"] = EPISODE_LIMIT


def test_vector_rollout(benchmark):
    """In-process vectorized engine at N lockstep copies."""
    collector = _make_vector_collector(N_ENVS)
    rng = np.random.default_rng(SEED + 1)
    benchmark.pedantic(
        lambda: collector.collect(N_ENVS, rng),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["env_steps_per_round"] = N_ENVS * EPISODE_LIMIT


def _bench_sharded(benchmark, n_workers, transport="pipe"):
    collector = _make_sharded_collector(N_ENVS, n_workers, transport=transport)
    rng = np.random.default_rng(SEED + 1)
    try:
        benchmark.pedantic(
            lambda: collector.collect(N_ENVS, rng),
            rounds=3, iterations=1, warmup_rounds=1,
        )
        benchmark.extra_info["env_steps_per_round"] = N_ENVS * EPISODE_LIMIT
        benchmark.extra_info["transport"] = transport
    finally:
        collector.close()


def test_sharded_rollout_w2(benchmark):
    """Worker-pool engine: N copies over 2 processes (pipe transport)."""
    _bench_sharded(benchmark, 2)


def test_sharded_rollout_w4(benchmark):
    """Worker-pool engine: N copies over 4 processes (pipe transport)."""
    _bench_sharded(benchmark, 4)


def test_sharded_rollout_w2_shm(benchmark):
    """Worker-pool engine over the shared-memory ring transport."""
    _bench_sharded(benchmark, 2, transport="shm")


def test_sharded_rollout_w2_ragged(benchmark):
    """Worker-pool engine on the ragged env family: the bounded-probe
    stopping-round negotiation instead of the one-command fast path."""
    collector = _make_sharded_collector(N_ENVS, 2, ragged=True)
    rng = np.random.default_rng(SEED + 1)
    try:
        benchmark.pedantic(
            lambda: collector.collect(N_ENVS, rng),
            rounds=3, iterations=1, warmup_rounds=1,
        )
        benchmark.extra_info["episodes_per_round"] = N_ENVS
        benchmark.extra_info["ragged"] = True
    finally:
        collector.close()


# -- standalone steps/s table + JSON artifact ---------------------------------

def _measure(fn, env_steps, repeats=3):
    """Best-of-``repeats`` steps/sec for a collection round."""
    fn()  # warmup (worker startup, compiled-unitary caches, allocator)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return env_steps / best


def run_benchmark(n_envs=N_ENVS, worker_counts=WORKER_COUNTS,
                  episode_limit=EPISODE_LIMIT, repeats=3,
                  transports=TRANSPORTS):
    """Measure all engines (sharded ones per transport); returns the
    result document."""
    engines = {}
    rng = np.random.default_rng(SEED + 1)

    actors = _build_actors(episode_limit)
    env = _make_env(episode_limit)
    serial_rate = _measure(
        lambda: rollout_episode(env, actors, rng), episode_limit, repeats
    )
    engines["serial"] = {"env_steps_per_s": serial_rate, "n_envs": 1}

    vector = _make_vector_collector(n_envs, episode_limit=episode_limit)
    vector_rate = _measure(
        lambda: vector.collect(n_envs, rng), n_envs * episode_limit, repeats
    )
    engines[f"vector_n{n_envs}"] = {
        "env_steps_per_s": vector_rate, "n_envs": n_envs,
    }

    sharded_records = {}
    for transport in transports:
        for n_workers in worker_counts:
            sharded = _make_sharded_collector(
                n_envs, n_workers, episode_limit=episode_limit,
                transport=transport,
            )
            try:
                rate = _measure(
                    lambda: sharded.collect(n_envs, rng),
                    n_envs * episode_limit, repeats,
                )
            finally:
                sharded.close()
            record = {
                "env_steps_per_s": rate,
                "n_envs": n_envs,
                "n_workers": n_workers,
                "transport": transport,
                "speedup_vs_vector": rate / vector_rate,
                "speedup_vs_serial": rate / serial_rate,
            }
            sharded_records[(n_workers, transport)] = record
            engines[f"sharded_n{n_envs}_w{n_workers}_{transport}"] = record
    # The pipe-vs-shm ratio is filled in after all measurements so it does
    # not depend on the order transports were requested in.
    for n_workers in worker_counts:
        pipe_record = sharded_records.get((n_workers, "pipe"))
        shm_record = sharded_records.get((n_workers, "shm"))
        if pipe_record is not None and shm_record is not None:
            shm_record["speedup_vs_pipe"] = (
                shm_record["env_steps_per_s"] / pipe_record["env_steps_per_s"]
            )

    # Ragged axis: the same engines on the overflow-terminating env family
    # (the sharded engines run the bounded-probe stopping-round negotiation
    # instead of the one-command fast path).  Episode lengths vary under
    # data-dependent termination, so the honest unit here is completed
    # episodes per second; ``ragged_vs_fixed`` compares against the same
    # engine's fixed-length episode rate, folding together the protocol
    # overhead and the shorter episodes.
    ragged_vector = _make_vector_collector(
        n_envs, episode_limit=episode_limit, ragged=True
    )
    ragged_vector_rate = _measure(
        lambda: ragged_vector.collect(n_envs, rng), n_envs, repeats
    )
    engines[f"vector_n{n_envs}_ragged"] = {
        "episodes_per_s": ragged_vector_rate,
        "n_envs": n_envs,
        "ragged": True,
        "ragged_vs_fixed": (
            ragged_vector_rate / (vector_rate / episode_limit)
        ),
    }
    for transport in transports:
        for n_workers in worker_counts:
            sharded = _make_sharded_collector(
                n_envs, n_workers, episode_limit=episode_limit,
                transport=transport, ragged=True,
            )
            try:
                rate = _measure(
                    lambda: sharded.collect(n_envs, rng), n_envs, repeats
                )
            finally:
                sharded.close()
            fixed = sharded_records[(n_workers, transport)]
            engines[f"sharded_n{n_envs}_w{n_workers}_{transport}_ragged"] = {
                "episodes_per_s": rate,
                "n_envs": n_envs,
                "n_workers": n_workers,
                "transport": transport,
                "ragged": True,
                "ragged_vs_fixed": (
                    rate / (fixed["env_steps_per_s"] / episode_limit)
                ),
            }

    for record in engines.values():
        if "env_steps_per_s" in record:
            record.setdefault("speedup_vs_serial",
                              record["env_steps_per_s"] / serial_rate)
    return {
        "benchmark": "parallel_rollout",
        "framework": "proposed",
        "episode_limit": episode_limit,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "transports": list(transports),
        "engines": engines,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI (still exercises every engine)",
    )
    parser.add_argument(
        "--transports", nargs="+", default=list(TRANSPORTS),
        choices=list(TRANSPORTS),
        help="which sharded transition transports to measure",
    )
    parser.add_argument("--json-dir", default=None)
    args = parser.parse_args()
    if args.smoke:
        document = run_benchmark(
            n_envs=4, worker_counts=(2,), episode_limit=5, repeats=2,
            transports=tuple(args.transports),
        )
    else:
        document = run_benchmark(transports=tuple(args.transports))

    serial_rate = document["engines"]["serial"]["env_steps_per_s"]
    print(f"{'engine':>34}  {'rate':>12}  {'relative':>10}")
    for name, record in document["engines"].items():
        if "env_steps_per_s" in record:
            rate = record["env_steps_per_s"]
            relative = rate / serial_rate
            unit = "steps/s"
        else:  # ragged axis: completed episodes per second
            rate = record["episodes_per_s"]
            relative = record["ragged_vs_fixed"]
            unit = "eps/s"
        print(f"{name:>34}  {rate:>10.1f} {unit:<7}  {relative:>9.2f}x")
    path = write_bench_json(JSON_NAME, document, args.json_dir)
    print(f"\nwrote {path} (cpu_count={document['cpu_count']})")


if __name__ == "__main__":
    main()
