"""Microbenchmarks of the quantum substrate's hot paths.

These are the operations the training loop spends its time in: batched gate
application, full circuit forward passes (actor and critic shapes), adjoint
backward sweeps, noisy density-matrix execution, and the batched team
rollout evaluation.
"""

import numpy as np
import pytest

from repro.marl.actors import QuantumActor, QuantumActorGroup
from repro.quantum import statevector as sv
from repro.quantum.backends import DensityMatrixBackend, StatevectorBackend
from repro.quantum.channels import NoiseModel
from repro.quantum.gates import rx
from repro.quantum.gradients import adjoint_backward
from repro.quantum.vqc import build_vqc

_RNG = np.random.default_rng(0)
_ACTOR = build_vqc(4, 4, 50, seed=1)
_CRITIC = build_vqc(4, 16, 50, seed=2)
_ACTOR_W = _ACTOR.initial_weights(_RNG)
_CRITIC_W = _CRITIC.initial_weights(_RNG)
_OBS = _RNG.uniform(size=(100, 4))
_STATES = _RNG.uniform(size=(100, 16))


def test_single_qubit_gate_batched(benchmark):
    psi = sv.zero_state(4, batch_size=256)
    angles = _RNG.uniform(size=256)
    benchmark(sv.apply_matrix, psi, rx(angles), (2,), 4)


def test_actor_forward_batch100(benchmark):
    backend = StatevectorBackend()
    out = benchmark(
        backend.run, _ACTOR.circuit, _ACTOR.observables, _OBS, _ACTOR_W
    )
    assert out.shape == (100, 4)


def test_critic_forward_batch100(benchmark):
    backend = StatevectorBackend()
    out = benchmark(
        backend.run, _CRITIC.circuit, _CRITIC.observables, _STATES, _CRITIC_W
    )
    assert out.shape == (100, 4)


def test_adjoint_backward_batch100(benchmark):
    upstream = _RNG.normal(size=(100, 4))
    gi, gw = benchmark(
        adjoint_backward,
        _CRITIC.circuit,
        _CRITIC.observables,
        _STATES,
        _CRITIC_W,
        upstream,
    )
    assert gw.shape == (50,)


def test_noisy_density_forward_batch16(benchmark):
    backend = DensityMatrixBackend(NoiseModel(0.01))
    out = benchmark(
        backend.run, _ACTOR.circuit, _ACTOR.observables, _OBS[:16], _ACTOR_W
    )
    assert out.shape == (16, 4)


def test_team_rollout_action_selection(benchmark):
    """One decentralised-execution step for a 4-agent quantum team."""
    actors = [
        QuantumActor(_ACTOR, np.random.default_rng(i)) for i in range(4)
    ]
    group = QuantumActorGroup(actors)
    observations = [_RNG.uniform(size=4) for _ in range(4)]
    rng = np.random.default_rng(5)
    actions = benchmark(group.act, observations, rng)
    assert len(actions) == 4


@pytest.mark.parametrize("n_qubits", [2, 4, 6, 8])
def test_forward_scaling_with_qubits(benchmark, n_qubits):
    """Statevector cost growth with register width (NISQ-scaling context)."""
    vqc = build_vqc(n_qubits, n_qubits, 20, seed=3)
    weights = vqc.initial_weights(_RNG)
    inputs = _RNG.uniform(size=(16, n_qubits))
    backend = StatevectorBackend()
    out = benchmark(backend.run, vqc.circuit, vqc.observables, inputs, weights)
    assert out.shape == (16, n_qubits)
