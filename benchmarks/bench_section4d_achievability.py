"""Section IV-D(1): the achievability comparison table.

Paper reference: Proposed 90.9 %, Comp1 49.8 %, Comp2 33.2 %, Comp3 91.5 %
(min-max normalised against the random walk's -33.2).  The reproduction
target is the *shape*: Proposed ~ Comp3 >> Comp1 > Comp2 under the
50-parameter budget.
"""

import os

from conftest import emit

from repro.experiments.io import results_dir, save_json
from repro.experiments.section4d import (
    format_section4d_report,
    run_section4d,
)


def test_section4d_achievability(benchmark, fig3_result):
    result = benchmark(run_section4d, fig3_result=fig3_result)

    summaries = result["summaries"]
    # Structural sanity: achievability is a sensible normalisation.
    for summary in summaries.values():
        assert summary["achievability"] <= 1.0

    emit("Section IV-D — achievability table", format_section4d_report(result))
    save_json(result, os.path.join(results_dir(), "section4d.json"))
