"""Policy-serving latency/throughput: the adaptive micro-batching frontier.

Drives :func:`repro.serving.loadgen.run_serving_load` against live servers
on ephemeral ports (fresh server per scenario, checkpoint trained once):

- **closed loop** — C always-busy clients; sustainable throughput and the
  latency that comes with it, per concurrency;
- **frontier** — the batch-size-vs-latency trade at fixed concurrency,
  including the acceptance comparison: adaptive batching must beat the
  batch-size-1 server on throughput without giving up p99;
- **open loop** — fixed offered rates at fractions of measured capacity;
  latency counted from each request's *scheduled* arrival, which is the
  accounting that exposes the queueing knee.

The standalone entry point writes ``BENCH_serving.json`` so the serving
perf trajectory is tracked across PRs.  Run::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke] \
        [--json-dir DIR]
"""

import argparse

from benchio import write_bench_json

from repro.serving.loadgen import run_serving_load

JSON_NAME = "BENCH_serving.json"


def _print_table(document):
    print(f"closed loop (adaptive, max_wait_us={document['max_wait_us']}):")
    print(f"{'clients':>8}  {'rps':>8}  {'p50 ms':>8}  {'p99 ms':>8}")
    for row in document["closed_loop"]:
        print(
            f"{row['concurrency']:>8}  {row['throughput_rps']:>8.0f}  "
            f"{row['p50_ms']:>8.2f}  {row['p99_ms']:>8.2f}"
        )
    print("\nbatch-size frontier "
          f"({document['batched_vs_single']['concurrency']} clients):")
    print(f"{'max_batch':>9}  {'rps':>8}  {'p99 ms':>8}  {'mean rows':>9}")
    for row in document["frontier"]:
        print(
            f"{row['max_batch']:>9}  {row['throughput_rps']:>8.0f}  "
            f"{row['p99_ms']:>8.2f}  {row['mean_batch_rows']:>9.1f}"
        )
    comparison = document["batched_vs_single"]
    print(
        f"\nbatched vs single: {comparison['throughput_ratio']:.2f}x "
        f"throughput, batched_is_faster={comparison['batched_is_faster']}"
    )
    if document["open_loop"]:
        print("\nopen loop (offered rate sweep):")
        print(f"{'rps in':>8}  {'rps out':>8}  {'p50 ms':>8}  {'p99 ms':>8}")
        for row in document["open_loop"]:
            print(
                f"{row['offered_rps']:>8}  {row['throughput_rps']:>8.0f}  "
                f"{row['p50_ms']:>8.2f}  {row['p99_ms']:>8.2f}"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short durations and small sweeps for CI",
    )
    parser.add_argument("--framework", default="proposed")
    parser.add_argument(
        "--duration", type=float, default=None,
        help="seconds per load scenario (default: 0.6 smoke, 2.5 full)",
    )
    parser.add_argument("--json-dir", default=None)
    args = parser.parse_args()

    document = run_serving_load(
        framework=args.framework, smoke=args.smoke, duration=args.duration
    )
    _print_table(document)
    path = write_bench_json(JSON_NAME, document, args.json_dir)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
