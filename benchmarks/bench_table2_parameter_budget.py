"""Tables I & II: configuration conformance and the parameter budgets.

Verifies (and times) the construction of all four frameworks, checking the
paper's central constraint: Proposed/Comp1/Comp2 operate on ~50 trainable
parameters per network while Comp3 exceeds 40k in total, and the MDP sizes
match Table I (4 actions, 4-feature observations, 16-feature state).
"""

import os

from conftest import BENCH_SEED, emit

from repro.config import SingleHopConfig, TrainingConfig
from repro.experiments.io import results_dir, save_json
from repro.marl.frameworks import build_framework

ENV = SingleHopConfig(episode_limit=5)
TRAIN = TrainingConfig(episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3)


def _build_all():
    rows = {}
    for name in ("proposed", "comp1", "comp2", "comp3", "random"):
        framework = build_framework(
            name, seed=BENCH_SEED, env_config=ENV, train_config=TRAIN
        )
        rows[name] = framework.metadata
    return rows


def test_table2_parameter_budget(benchmark):
    rows = benchmark(_build_all)

    assert rows["proposed"]["actor_parameters"] == 50
    assert rows["proposed"]["critic_parameters"] == 50
    assert rows["comp1"]["actor_parameters"] == 50
    assert 40 <= rows["comp2"]["actor_parameters"] <= 60
    assert rows["comp3"]["total_parameters"] > 40_000
    assert rows["random"]["total_parameters"] == 0

    assert ENV.n_actions == 4
    assert ENV.observation_size == 4
    assert ENV.state_size == 16

    body = [
        f"{'framework':<10} {'actor params':>13} {'critic params':>14} {'total':>8}"
    ]
    for name, meta in rows.items():
        body.append(
            f"{name:<10} {meta['actor_parameters']:>13} "
            f"{meta['critic_parameters']:>14} {meta['total_parameters']:>8}"
        )
    body.append("")
    body.append(
        "Table II check: 50 gates in U_var (quantum), Comp2 ~50, Comp3 > 40k"
    )
    body.append(
        f"Table I check: |A|={ENV.n_actions}, |o|={ENV.observation_size}, "
        f"|s|={ENV.state_size}"
    )
    emit("Tables I & II — parameter budgets and MDP sizes", "\n".join(body))
    save_json(rows, os.path.join(results_dir(), "table2_budgets.json"))
