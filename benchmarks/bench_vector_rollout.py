"""Rollout collection throughput: serial loop vs. vectorized engine.

Measures environment steps per second of episode collection on the quantum
actor framework ("proposed") for the serial reference path
(:func:`repro.marl.trainer.rollout_episode`) and the vectorized engine
(:class:`repro.marl.rollout.VectorRolloutCollector`) at N in {1, 8, 32}
lockstep env copies.  The vectorized path amortises per-step python and
simulator-dispatch overhead across all copies — one batched circuit
evaluation of ``N * n_agents`` rows per step instead of one per env — and
is the collection engine the trainer uses when
``TrainingConfig.rollout_envs > 1``.

Run under the benchmark harness::

    pytest benchmarks/bench_vector_rollout.py --benchmark-only

or standalone for a steps/sec summary table (also written as the
machine-readable ``BENCH_vector_rollout.json`` so the perf trajectory is
tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_vector_rollout.py
"""

import argparse
import os
import time

import numpy as np

from benchio import write_bench_json

from repro.config import SingleHopConfig
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.vector import make_vector_env
from repro.marl.frameworks import build_framework
from repro.marl.rollout import VectorRolloutCollector
from repro.marl.trainer import rollout_episode

SEED = 3
EPISODE_LIMIT = 25
VECTOR_SIZES = (1, 8, 32)


def _build_actors():
    framework = build_framework(
        "proposed", seed=SEED,
        env_config=SingleHopConfig(episode_limit=EPISODE_LIMIT),
    )
    return framework.actors


def _serial_episode(env, actors, rng):
    rollout_episode(env, actors, rng)


def test_serial_rollout(benchmark):
    """Reference: one serial episode (env steps = EPISODE_LIMIT)."""
    actors = _build_actors()
    env = SingleHopOffloadEnv(
        SingleHopConfig(episode_limit=EPISODE_LIMIT),
        rng=np.random.default_rng(SEED),
    )
    rng = np.random.default_rng(SEED + 1)
    benchmark.pedantic(
        _serial_episode, args=(env, actors, rng),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["env_steps_per_round"] = EPISODE_LIMIT


def _make_collector(n_envs):
    actors = _build_actors()
    env = SingleHopOffloadEnv(
        SingleHopConfig(episode_limit=EPISODE_LIMIT),
        rng=np.random.default_rng(SEED),
    )
    return VectorRolloutCollector(make_vector_env(env, n_envs), actors)


def _vector_round(collector, rng):
    collector.collect(collector.n_envs, rng)


def _bench_vector(benchmark, n_envs):
    collector = _make_collector(n_envs)
    rng = np.random.default_rng(SEED + 1)
    benchmark.pedantic(
        _vector_round, args=(collector, rng),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["env_steps_per_round"] = n_envs * EPISODE_LIMIT


def test_vector_rollout_n1(benchmark):
    """Vectorized engine at N=1 (bit-identical to serial, batched kernels)."""
    _bench_vector(benchmark, 1)


def test_vector_rollout_n8(benchmark):
    """Vectorized engine at N=8 lockstep copies."""
    _bench_vector(benchmark, 8)


def test_vector_rollout_n32(benchmark):
    """Vectorized engine at N=32 lockstep copies."""
    _bench_vector(benchmark, 32)


def _measure(fn, env_steps, repeats=3):
    """Best-of-``repeats`` steps/sec for a collection round."""
    fn()  # warmup (compiled-unitary caches, allocator)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return env_steps / best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json-dir", default=None)
    args = parser.parse_args()
    rng = np.random.default_rng(SEED + 1)
    actors = _build_actors()
    env = SingleHopOffloadEnv(
        SingleHopConfig(episode_limit=EPISODE_LIMIT),
        rng=np.random.default_rng(SEED),
    )
    serial_rate = _measure(
        lambda: _serial_episode(env, actors, rng), EPISODE_LIMIT
    )
    engines = {"serial": {"env_steps_per_s": serial_rate, "n_envs": 1,
                          "speedup_vs_serial": 1.0}}
    print(f"{'path':>12}  {'env steps/s':>12}  {'speedup':>8}")
    print(f"{'serial':>12}  {serial_rate:>12.1f}  {1.0:>7.2f}x")
    for n_envs in VECTOR_SIZES:
        collector = _make_collector(n_envs)
        rate = _measure(
            lambda: _vector_round(collector, rng),
            n_envs * EPISODE_LIMIT,
        )
        engines[f"vector_n{n_envs}"] = {
            "env_steps_per_s": rate,
            "n_envs": n_envs,
            "speedup_vs_serial": rate / serial_rate,
        }
        print(
            f"{f'vector N={n_envs}':>12}  {rate:>12.1f}  "
            f"{rate / serial_rate:>7.2f}x"
        )
    path = write_bench_json(
        "BENCH_vector_rollout.json",
        {
            "benchmark": "vector_rollout",
            "framework": "proposed",
            "episode_limit": EPISODE_LIMIT,
            "cpu_count": os.cpu_count(),
            "engines": engines,
        },
        args.json_dir,
    )
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
