"""Shared helpers for machine-readable benchmark artifacts.

Every throughput benchmark writes its results as a ``BENCH_<name>.json``
document through :func:`write_bench_json` so the format (directory
resolution, indentation, trailing newline) stays uniform across benches and
the perf trajectory can be diffed across PRs.  Every artifact is stamped
with a ``host`` block (cpu count, platform, python version) so numbers from
different machines are never compared blind.  Not a ``bench_*`` module on
purpose — the pytest-benchmark harness only collects explicitly named bench
files, and this one holds no benchmarks.
"""

from __future__ import annotations

import json
import os
import platform

__all__ = ["host_metadata", "write_bench_json"]


def _active_array_backend():
    """Name of the quantum kernels' active array backend (``None`` if the
    quantum substrate isn't importable in this environment)."""
    try:
        from repro.quantum.backend import default_array_backend

        return default_array_backend().name
    except Exception:
        return None


def host_metadata():
    """The machine identity block stamped into every bench artifact."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "array_backend": _active_array_backend(),
    }


def write_bench_json(name, document, directory=None):
    """Write one benchmark's JSON artifact; returns its path.

    Args:
        name: Artifact file name (``BENCH_<bench>.json``).
        document: JSON-serialisable result document.  A ``host`` metadata
            block is added unless the document already carries one.
        directory: Target directory; defaults to ``$REPRO_BENCH_DIR`` or the
            current working directory.
    """
    directory = (
        directory
        if directory is not None
        else os.environ.get("REPRO_BENCH_DIR", ".")
    )
    document = dict(document)
    document.setdefault("host", host_metadata())
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
