"""Shared helpers for machine-readable benchmark artifacts.

Every throughput benchmark writes its results as a ``BENCH_<name>.json``
document through :func:`write_bench_json` so the format (directory
resolution, indentation, trailing newline) stays uniform across benches and
the perf trajectory can be diffed across PRs.  Not a ``bench_*`` module on
purpose — the pytest-benchmark harness only collects explicitly named bench
files, and this one holds no benchmarks.
"""

from __future__ import annotations

import json
import os

__all__ = ["write_bench_json"]


def write_bench_json(name, document, directory=None):
    """Write one benchmark's JSON artifact; returns its path.

    Args:
        name: Artifact file name (``BENCH_<bench>.json``).
        document: JSON-serialisable result document.
        directory: Target directory; defaults to ``$REPRO_BENCH_DIR`` or the
            current working directory.
    """
    directory = (
        directory
        if directory is not None
        else os.environ.get("REPRO_BENCH_DIR", ".")
    )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
