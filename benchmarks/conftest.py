"""Shared fixtures for the benchmark harness.

Every paper table/figure has one bench module.  Training-based figures share
one smoke-scale Fig. 3 run (session-scoped) so the suite regenerates every
panel without retraining four frameworks per panel; the headline bench
(`bench_fig3a`) additionally times a real training run of the proposed
framework.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated figure/table content; JSON artifacts are
written to ``$REPRO_RESULTS_DIR`` (default ``./results``).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.io import results_dir, save_json

BENCH_SEED = 7
BENCH_PRESET = os.environ.get("REPRO_BENCH_PRESET", "smoke")


@pytest.fixture(scope="session")
def fig3_result():
    """One shared Fig. 3 training run (all four frameworks + random walk)."""
    result = run_fig3(preset=BENCH_PRESET, seed=BENCH_SEED)
    save_json(result, os.path.join(results_dir(), "bench_fig3.json"))
    return result


@pytest.fixture(scope="session")
def artifact_dir():
    """Directory collecting the regenerated series/tables."""
    return results_dir()


def emit(title, body):
    """Print a regenerated table/figure body under a banner."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)
