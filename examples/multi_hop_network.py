"""Beyond the paper: quantum MARL on a multi-hop queue network.

The paper evaluates a single-hop topology (4 edges -> 2 clouds).  This
example builds a three-layer network (edges -> relays -> clouds) with the
same queue mechanics, wires the paper's quantum actors and centralised
quantum critic to it unchanged (the CTDE stack is environment-agnostic),
and trains for a while — demonstrating that the library generalises past
the paper's scenario.

Run:  python examples/multi_hop_network.py [--epochs 40]
"""

import argparse

import numpy as np

from repro.config import TrainingConfig
from repro.envs import MultiHopOffloadEnv, layered_topology
from repro.marl.actors import QuantumActor, QuantumActorGroup
from repro.marl.critics import QuantumCentralCritic
from repro.marl.trainer import CTDETrainer, rollout_episode
from repro.quantum.vqc import build_vqc
from repro.seeding import SeedSequenceFactory
from repro.viz.ascii_plots import sparkline


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--episode-limit", type=int, default=30)
    parser.add_argument("--layers", type=int, nargs="+", default=[4, 3, 2],
                        help="layer sizes, e.g. --layers 4 3 2")
    parser.add_argument("--seed", type=int, default=19)
    args = parser.parse_args()

    seeds = SeedSequenceFactory(args.seed)
    topology = layered_topology(tuple(args.layers))
    env = MultiHopOffloadEnv(
        topology, episode_limit=args.episode_limit, rng=seeds.rng("env")
    )
    print(f"environment: {env!r}")
    print(f"  {env.n_agents} agents, |A|={env.action_space.n}, "
          f"|o|={env.observation_space.size}, |s|={env.state_size}")

    # The action count must fit on the measured qubits; widen if needed.
    from repro.quantum.observables import all_z_observables

    n_qubits = max(4, env.action_space.n)
    actor_vqc = build_vqc(
        n_qubits,
        env.observation_space.size,
        50,
        seed=1001,
        observables=all_z_observables(n_qubits)[: env.action_space.n],
    )

    actors = QuantumActorGroup(
        [
            QuantumActor(actor_vqc, seeds.rng(f"actor/{i}"))
            for i in range(env.n_agents)
        ]
    )
    critic_vqc = build_vqc(4, env.state_size, 50, seed=2002)
    critic = QuantumCentralCritic(
        critic_vqc, seeds.rng("critic"), value_scale=10.0
    )
    target = QuantumCentralCritic(
        critic_vqc, seeds.rng("target"), value_scale=10.0
    )
    trainer = CTDETrainer(
        env,
        actors,
        critic,
        target,
        TrainingConfig(
            n_epochs=args.epochs,
            episodes_per_epoch=4,
            gamma=0.95,
            actor_lr=2e-3,
            critic_lr=1e-3,
            entropy_coef=0.01,
        ),
        seeds.rng("rollouts"),
    )
    print(f"  quantum actors: {actors.n_parameters()} weights total; "
          f"critic: {critic.n_parameters()}")

    print(f"\ntraining for {args.epochs} epochs ...")
    history = trainer.train(callback=lambda rec: (
        print(f"  epoch {rec['epoch']:>4}  reward {rec['total_reward']:>8.2f}")
        if rec["epoch"] % max(1, args.epochs // 8) == 0 else None
    ))
    rewards = history.series("total_reward")
    print(f"reward curve: {sparkline(rewards)}")

    greedy = []
    rng = seeds.rng("evaluation")
    for _ in range(8):
        _, stats = rollout_episode(env, actors, rng, greedy=True)
        greedy.append(stats["total_reward"])
    print(f"\ngreedy evaluation over 8 episodes: {np.mean(greedy):.2f}")

    print("\nfinal queue snapshot after one greedy episode:")
    _, stats = rollout_episode(env, actors, rng, greedy=True)
    print(f"  mean queue {stats['mean_queue']:.3f}, "
          f"empty ratio {stats['empty_ratio']:.3f}, "
          f"overflow ratio {stats['overflow_ratio']:.3f}")


if __name__ == "__main__":
    main()
