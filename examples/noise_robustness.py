"""NISQ robustness study: gate noise and finite measurement shots.

The paper's future-work axis (Section V): how does the trained QMARL policy
behave on noisy hardware?  This example trains the proposed framework
noiselessly (the paper's regime), then re-executes the *same trained
weights* on

- the density-matrix backend with per-gate depolarising error, and
- the shot-sampled statevector backend with finite measurement budgets,

reporting greedy total reward at each noise/shot level.

Run:  python examples/noise_robustness.py [--epochs 40]
"""

import argparse

from repro.experiments.ablations import (
    _train_proposed,
    run_noise_robustness,
    run_shot_budget,
)
from repro.viz.ascii_plots import sparkline


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--episodes", type=int, default=6,
                        help="evaluation episodes per level")
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    print(f"training the proposed framework ({args.epochs} epochs) ...")
    framework = _train_proposed(
        train_epochs=args.epochs, episode_limit=30, seed=args.seed
    )

    print("\nevaluating under depolarising gate error ...")
    noise = run_noise_robustness(
        noise_levels=(0.0, 0.005, 0.01, 0.02, 0.05, 0.1),
        n_episodes=args.episodes,
        seed=args.seed,
        framework=framework,
    )
    print(f"\n{'gate error p':>13} {'greedy reward':>14}")
    for level, reward in zip(noise["noise_levels"], noise["greedy_rewards"]):
        print(f"{level:>13.3f} {reward:>14.3f}")
    print(f"trend: {sparkline(noise['greedy_rewards'])} "
          "(reward degrades as gate error grows)")

    print("\nevaluating under finite measurement shots ...")
    shots = run_shot_budget(
        shot_counts=(8, 32, 128, 512, None),
        n_episodes=args.episodes,
        seed=args.seed,
        framework=framework,
    )
    print(f"\n{'shots':>8} {'greedy reward':>14}")
    for count, reward in zip(shots["shot_counts"], shots["greedy_rewards"]):
        print(f"{str(count):>8} {reward:>14.3f}")
    print(f"trend: {sparkline(shots['greedy_rewards'])} "
          "(more shots -> closer to the exact-expectation policy)")


if __name__ == "__main__":
    main()
