"""Parameter-budget sweep: the paper's central constraint, made a dial.

Section IV compares frameworks at a fixed ~50-trainable-parameter budget.
This example sweeps the variational gate budget of the quantum framework
and also trains the paper's random ansatz against the structured
alternatives, showing how expressiveness and final reward scale.

Run:  python examples/parameter_budget_sweep.py [--epochs 30]
"""

import argparse

from repro.experiments.ablations import (
    run_parameter_budget,
    run_template_comparison,
)
from repro.viz.ascii_plots import sparkline


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--episode-limit", type=int, default=25)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()

    print("sweeping variational gate budgets ...")
    budget = run_parameter_budget(
        budgets=(10, 25, 50, 100),
        train_epochs=args.epochs,
        episode_limit=args.episode_limit,
        seed=args.seed,
    )
    print(f"\n{'gate budget':>12} {'final reward':>13}")
    for b, reward in zip(budget["budgets"], budget["final_rewards"]):
        print(f"{b:>12} {reward:>13.3f}")
    print(f"random walk: {budget['random_walk_return']:.3f}")
    print(f"trend: {sparkline(budget['final_rewards'])}")

    print("\ncomparing ansatz templates at the ~50-weight budget ...")
    templates = run_template_comparison(
        train_epochs=args.epochs,
        episode_limit=args.episode_limit,
        seed=args.seed,
    )
    print(f"\n{'template':<22} {'weights':>8} {'final reward':>13}")
    for name in templates["templates"]:
        print(f"{name:<22} {templates['actor_parameters'][name]:>8} "
              f"{templates['final_rewards'][name]:>13.3f}")


if __name__ == "__main__":
    main()
