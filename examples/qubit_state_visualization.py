"""Fig. 4 demonstration: watch the trained quantum actor's qubit states.

Trains the proposed framework briefly, then replays 12 unit-steps of the
trained team, printing at every step the queue levels of all edges and
clouds plus the first edge agent's 4-qubit state as a 4x4 amplitude heatmap
(hue = phase, lightness = magnitude — the paper's HLS colour system).

Run:  python examples/qubit_state_visualization.py            (ANSI colour)
      python examples/qubit_state_visualization.py --no-color (text tables)
      python examples/qubit_state_visualization.py --epochs 100
"""

import argparse
import sys

from repro.experiments.fig4 import format_fig4_report, run_fig4


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40,
                        help="pre-training epochs before the demonstration")
    parser.add_argument("--steps", type=int, default=12,
                        help="demonstration length (the paper shows 12)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--no-color", action="store_true",
                        help="plain-text heatmaps instead of ANSI colour")
    args = parser.parse_args()

    use_ansi = not args.no_color and sys.stdout.isatty()

    print(f"training the proposed framework for {args.epochs} epochs ...")
    result = run_fig4(
        train_epochs=args.epochs, n_steps=args.steps, seed=args.seed
    )
    print()
    print(format_fig4_report(result, ansi=use_ansi))
    print()
    print("legend: each 4x4 grid shows the 16 amplitudes of the first edge")
    print("agent's actor state; rows index qubits q1q2, columns q3q4.")


if __name__ == "__main__":
    main()
