"""Quickstart: the library in five minutes.

Walks through the paper's building blocks bottom-up:

1. build the 4-qubit VQC of Fig. 1 (state encoder + random layers + Z's),
2. run and differentiate it on the exact statevector backend,
3. assemble the single-hop offloading environment of Tables I & II,
4. train the proposed QMARL framework for a few epochs,
5. evaluate greedily and compare against the random-walk reference.

Run:  python examples/quickstart.py [--epochs N]
"""

import argparse

import numpy as np

from repro import (
    SingleHopConfig,
    StatevectorBackend,
    TrainingConfig,
    VQCConfig,
    build_framework,
    build_vqc,
    evaluate_random_walk,
)
from repro.marl.metrics import progress_printer
from repro.quantum.gradients import backward
from repro.viz.ascii_plots import sparkline


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--seed", type=int, default=7)
    # Choosing rollout_envs / rollout_workers (full guide:
    # docs/parallel_rollouts.md):
    #   - rollout_envs=N batches N lockstep env copies into one circuit
    #     evaluation per step; nearly free, so raise it first and keep it a
    #     divisor of episodes_per_epoch (non-divisors are clamped down).
    #     Changing N changes which RNG streams feed which episodes, so pick
    #     it once per study (runs stay seed-deterministic either way).
    #   - rollout_workers=W shards those copies across W worker processes,
    #     each evaluating its shard's circuits locally.  W is result-neutral:
    #     any worker count reproduces the in-process N-copy run bit for bit.
    #     Worth it only with idle cores: try W = cores - 1 with at least ~4
    #     env rows per worker; on a single-core machine leave it at 1.
    #   - rollout_transport picks how sharded workers ship transitions back:
    #     "pipe" pickles them, "shm" uses zero-copy shared-memory rings,
    #     "auto" (default) switches to shm once episode blocks grow large.
    #     Bit-identical either way; only applies when a pool actually runs.
    parser.add_argument("--rollout-envs", type=int, default=4)
    parser.add_argument("--rollout-workers", type=int, default=1)
    parser.add_argument("--rollout-transport", default="auto",
                        choices=("auto", "pipe", "shm"))
    #   - trainer picks the training engine: "mapg" is the paper's
    #     gradient-based CTDE actor-critic; "es" is the gradient-free
    #     evolutionary-strategies engine (docs/evolutionary_training.md) —
    #     a population of perturbed actor teams evaluated through one
    #     stacked circuit call per env step, no critic, no backprop.
    parser.add_argument("--trainer", default="mapg", choices=("mapg", "es"))
    parser.add_argument("--es-population", type=int, default=None,
                        help="ES population size (only with --trainer es; "
                             "default 8)")
    args = parser.parse_args()
    if args.es_population is not None and args.trainer != "es":
        parser.error("--es-population only affects --trainer es")

    # -- 1. the VQC of Fig. 1 ------------------------------------------------
    print("=" * 72)
    print("1. A 4-qubit VQC: multi-layer state encoding + 50 random gates")
    print("=" * 72)
    vqc = build_vqc(n_qubits=4, n_features=16, n_weights=50, seed=args.seed)
    print(vqc)
    print(vqc.circuit.draw(max_ops=8))
    print(f"gate histogram: {vqc.circuit.gate_counts()}")

    # -- 2. run + differentiate ----------------------------------------------
    print()
    print("=" * 72)
    print("2. Forward evaluation and adjoint gradients")
    print("=" * 72)
    rng = np.random.default_rng(args.seed)
    weights = vqc.initial_weights(rng)
    states = rng.uniform(0.0, 1.0, size=(3, 16))
    expectations = vqc.run(StatevectorBackend(), states, weights)
    print(f"<Z_j> for 3 random states:\n{np.round(expectations, 4)}")
    upstream = np.ones_like(expectations)
    _, weight_grads = backward(
        vqc.circuit, vqc.observables, states, weights, upstream
    )
    print(f"adjoint dL/dw: |g| = {np.linalg.norm(weight_grads):.4f} "
          f"({weight_grads.shape[0]} trainable angles)")

    # -- 3. the environment ----------------------------------------------------
    print()
    print("=" * 72)
    print("3. Single-hop offloading environment (Tables I & II)")
    print("=" * 72)
    env_config = SingleHopConfig(episode_limit=30)
    print(f"K={env_config.n_clouds} clouds, N={env_config.n_agents} edges, "
          f"|A|={env_config.n_actions} (= destination x packet amount), "
          f"|o|={env_config.observation_size}, |s|={env_config.state_size}")
    print(f"arrivals ~ U(0, {env_config.w_p} * {env_config.queue_capacity}), "
          f"cloud service {env_config.cloud_service_rate}/step, "
          f"w_R={env_config.w_r}")

    # -- 4. train the proposed QMARL framework --------------------------------
    if args.trainer == "es":
        # Gradient-free engine: every generation evaluates a population of
        # perturbed actor teams through a single stacked circuit call per
        # env step (population members ride the per-sample-weight axis).
        train_config = TrainingConfig(
            trainer="es",
            n_epochs=args.epochs,
            episodes_per_epoch=2,
            es_population=(
                args.es_population if args.es_population is not None else 8
            ),
            es_sigma=0.15,
            es_lr=0.12,
            rollout_envs=args.rollout_envs,
            rollout_workers=args.rollout_workers,
            rollout_transport=args.rollout_transport,
        )
    else:
        train_config = TrainingConfig(
            n_epochs=args.epochs,
            episodes_per_epoch=4,
            gamma=0.95,
            actor_lr=2e-3,
            critic_lr=1e-3,
            entropy_coef=0.01,
            # Collect all episodes of an epoch in parallel: batched env
            # stepping + one circuit evaluation per step for the whole team
            # across every copy (see repro.envs.vector), optionally sharded
            # across worker processes (see repro.marl.parallel).
            rollout_envs=args.rollout_envs,
            rollout_workers=args.rollout_workers,
            rollout_transport=args.rollout_transport,
        )
    framework = build_framework(
        "proposed",
        seed=args.seed,
        env_config=env_config,
        vqc_config=VQCConfig(critic_value_scale=10.0),
        train_config=train_config,
    )
    print()
    print("=" * 72)
    if args.trainer == "es":
        print(f"4. Training the proposed framework with ES ({args.epochs} "
              f"generations, population {framework.trainer.population}, "
              f"{framework.trainer.n_envs} lockstep rollout envs, "
              f"{framework.trainer.rollout_workers} worker process(es))")
    else:
        print(f"4. Training the proposed framework ({args.epochs} epochs, "
              f"{framework.trainer.rollout_envs} lockstep rollout envs, "
              f"{framework.trainer.rollout_workers} worker process(es))")
    print("=" * 72)
    print(f"parameter budget: actor {framework.metadata['actor_parameters']} "
          f"x {env_config.n_agents} agents, "
          f"critic {framework.metadata['critic_parameters']}")

    # One uniform progress line per engine (losses + entropy for MAPG,
    # fitness dispersion for ES) — the same schema telemetry publishes.
    progress = progress_printer(every=max(1, args.epochs // 10))
    history = framework.train(callback=progress)
    rewards = history.series("total_reward")
    print(f"reward curve: {sparkline(rewards)}")

    # -- 5. evaluate -------------------------------------------------------------
    print()
    print("=" * 72)
    print("5. Greedy evaluation vs the random walk")
    print("=" * 72)
    greedy = framework.evaluate(n_episodes=10)
    random_walk = evaluate_random_walk(
        seed=args.seed + 1, env_config=env_config, n_episodes=20
    )
    achievability = (greedy["total_reward"] - random_walk) / (0.0 - random_walk)
    print(f"greedy total reward : {greedy['total_reward']:.2f}")
    print(f"random-walk return  : {random_walk:.2f}")
    print(f"achievability       : {achievability:.1%} "
          f"(paper reports 90.9% after 1000 epochs)")

    # Releases the sharded rollout worker pool, if one was started
    # (rollout_workers > 1); harmless otherwise.
    framework.close()


if __name__ == "__main__":
    main()
