"""Full Fig. 3 reproduction: train all four frameworks and plot the curves.

Reproduces the paper's evaluation (Section IV-D): Proposed (fully quantum),
Comp1 (hybrid), Comp2 (equal-budget classical) and Comp3 (40k-parameter
classical) trained with CTDE MAPG, reported on four metrics with ASCII
training curves and the achievability table.

Run:  python examples/train_offloading.py --preset quick
      python examples/train_offloading.py --preset medium --out results/
(presets: smoke ~1 min, quick ~5 min, medium ~25 min, full: hours)
"""

import argparse
import os
import time

from repro.experiments.fig3 import (
    FIG3_METRICS,
    PRESETS,
    format_fig3_report,
    run_fig3,
)
from repro.experiments.io import results_dir, save_json
from repro.marl.metrics import progress_printer
from repro.experiments.section4d import format_section4d_report, run_section4d
from repro.viz.ascii_plots import line_plot

_TITLES = {
    "total_reward": "Fig. 3(a) total reward",
    "mean_queue": "Fig. 3(b) average queue",
    "empty_ratio": "Fig. 3(c) queue-empty ratio",
    "overflow_ratio": "Fig. 3(d) queue-overflow ratio",
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="quick")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None, help="save JSON results here")
    parser.add_argument(
        "--rollout-envs", type=int, default=1,
        help="lockstep env copies for vectorized episode collection "
             "(1 = serial reference; 4 = one copy per episode of the "
             "presets' 4-episode epochs, cutting collection wall-clock "
             "several-fold; values above episodes_per_epoch are clamped)",
    )
    args = parser.parse_args()

    start = time.time()
    last_banner = [None]
    print_epoch = progress_printer(every=10, print_fn=lambda line: print(f"  {line}"))

    def progress(name, record):
        if last_banner[0] != name:
            print(f"\n--- training {name} ---")
            last_banner[0] = name
        print_epoch(record)

    result = run_fig3(
        preset=args.preset, seed=args.seed, callback=progress,
        rollout_envs=args.rollout_envs,
    )
    print(f"\ntotal training time: {time.time() - start:.0f}s\n")

    for metric in FIG3_METRICS:
        series = {
            name: result["series"][name][metric] for name in result["series"]
        }
        print(line_plot(series, title=_TITLES[metric]))
        print()

    print(format_fig3_report(result))
    print()
    print(format_section4d_report(run_section4d(fig3_result=result)))

    if args.out is not None:
        path = os.path.join(results_dir(args.out), "fig3_result.json")
        save_json(result, path)
        print(f"\nresults written to {path}")


if __name__ == "__main__":
    main()
