"""repro — reproduction of "Quantum Multi-Agent Reinforcement Learning via
Variational Quantum Circuit Design" (Yun et al., IEEE ICDCS 2022).

The library is organised as four substrates plus an experiment harness:

- :mod:`repro.quantum` — a numpy-only VQC simulator (statevector + noisy
  density matrix), circuit IR, ansatz templates, the paper's multi-layer
  angle state encoding, and three differentiation methods (adjoint,
  parameter-shift, finite differences);
- :mod:`repro.nn` — a reverse-mode autodiff engine with MLP layers, Adam,
  and the hybrid :class:`~repro.nn.quantum_layer.QuantumLayer`;
- :mod:`repro.envs` — the single-hop edge-to-cloud offloading environment
  (Tables I & II) on a reusable queueing substrate;
- :mod:`repro.marl` — the CTDE actor-critic (Algorithm 1), quantum /
  classical / random actors and critics, and the four framework presets
  (Proposed, Comp1, Comp2, Comp3) of Section IV;
- :mod:`repro.experiments` — runners regenerating every table and figure.

Quickstart::

    from repro import build_framework
    framework = build_framework("proposed", seed=7)
    history = framework.train(n_epochs=50)
    print(history.last("total_reward", window=10))
"""

from repro.config import (
    ClassicalNetConfig,
    SingleHopConfig,
    TrainingConfig,
    VQCConfig,
)
from repro.envs import SingleHopOffloadEnv
from repro.marl import (
    CTDETrainer,
    ESTrainer,
    Framework,
    achievability,
    build_framework,
    evaluate_random_walk,
)
from repro.quantum import (
    DensityMatrixBackend,
    NoiseModel,
    QuantumCircuit,
    StatevectorBackend,
    VQC,
    build_vqc,
)
from repro.seeding import SeedSequenceFactory, make_rng, spawn_rngs

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SingleHopConfig",
    "VQCConfig",
    "TrainingConfig",
    "ClassicalNetConfig",
    "SingleHopOffloadEnv",
    "CTDETrainer",
    "ESTrainer",
    "Framework",
    "build_framework",
    "evaluate_random_walk",
    "achievability",
    "QuantumCircuit",
    "VQC",
    "build_vqc",
    "StatevectorBackend",
    "DensityMatrixBackend",
    "NoiseModel",
    "SeedSequenceFactory",
    "make_rng",
    "spawn_rngs",
]
