"""Experiment configuration dataclasses.

Defaults reproduce Table II of the paper.  Quantities the paper leaves
unspecified (marked below) use documented, overridable defaults; DESIGN.md
section 2 lists them all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "SingleHopConfig",
    "VQCConfig",
    "ClassicalNetConfig",
    "TrainingConfig",
    "ServingConfig",
    "replace",
]


@dataclass(frozen=True)
class SingleHopConfig:
    """Single-hop offloading environment (Tables I & II).

    Attributes:
        n_clouds: ``K`` — number of cloud queues (Table II: 2).
        n_agents: ``N`` — number of edge agents (Table II: 4).
        packet_amounts: The action's packet-amount space ``P``
            (Table II: {0.1, 0.2}).
        w_p: Edge arrival hyper-parameter; arrivals are
            ``U(0, w_p * q_max)`` (Table II: 0.3).
        w_r: Overflow penalty weight in Eq. (1) (Table II: 4).
        cloud_service_rate: Per-step packet volume each cloud transmits
            onward (Table II: 0.3).
        queue_capacity: ``q_max`` (Table II: 1).
        episode_limit: Steps per episode (unspecified; default 100).  Total
            reward scales linearly with this: with T=100 a random walk
            averages about -9.4 here versus the paper's -33.2 (matching
            would need T around 350); the scale-free *achievability*
            comparison is unaffected.
        initial_queue_level: Starting level of every queue as a fraction of
            capacity, or ``"uniform"`` (unspecified; default 0.5).
        conserve_packets: Paper-literal mode when False (an edge may
            schedule more outflow than it holds, and the cloud receives the
            scheduled amount); physically-conservative extension when True.
        terminate_on_overflow: When True the episode also ends the moment
            any *cloud* queue overflows (a lost-packet event), making
            episode length data-dependent: ``episode_limit`` becomes a
            horizon *cap* instead of the exact length.  Off by default —
            the paper's MDP terminates on the fixed horizon only.
    """

    n_clouds: int = 2
    n_agents: int = 4
    packet_amounts: tuple = (0.1, 0.2)
    w_p: float = 0.3
    w_r: float = 4.0
    cloud_service_rate: float = 0.3
    queue_capacity: float = 1.0
    episode_limit: int = 100
    initial_queue_level: object = 0.5
    conserve_packets: bool = False
    terminate_on_overflow: bool = False

    def __post_init__(self):
        if self.n_clouds < 1 or self.n_agents < 1:
            raise ValueError("need at least one cloud and one agent")
        if not self.packet_amounts:
            raise ValueError("packet_amounts must be non-empty")
        if any(p < 0 for p in self.packet_amounts):
            raise ValueError("packet amounts must be non-negative")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.episode_limit < 1:
            raise ValueError("episode_limit must be >= 1")

    @property
    def n_actions(self):
        """``|A| = |I| * |P|`` — destination cloud x packet amount."""
        return self.n_clouds * len(self.packet_amounts)

    @property
    def observation_size(self):
        """Per Table I: own queue now & previous, plus every cloud queue."""
        return 2 + self.n_clouds

    @property
    def state_size(self):
        """Global state: the union of all agent observations."""
        return self.n_agents * self.observation_size


@dataclass(frozen=True)
class VQCConfig:
    """Variational-quantum-circuit hyper-parameters (Table II).

    Attributes:
        n_qubits: Register width for actors and critic (Table II: 4).
        n_variational_gates: Gates in ``U_var`` = trainable parameters
            (Table II: 50).
        template: Ansatz family (paper: torchquantum-style ``"random"``).
        encoding_scale: Feature-to-angle multiplier (unspecified; pi).
        two_qubit_ratio: Fraction of entangling gates the random template
            samples (unspecified; 0.25).
        critic_value_scale: Fixed output scale mapping the critic's mean
            ``<Z>`` in [-1, 1] onto the return range (unspecified; 30.0,
            roughly the magnitude of the worst observed returns).
        actor_logit_scale: Fixed multiplier on the actor's measured
            expectations before the softmax (1.0 = the paper's plain
            softmax; swept in ablations).
        actor_policy_head: ``"softmax"`` — the paper's Section III-A1
            equation ``pi = softmax(f(o))`` (bounded logits; the policy
            retains a stochasticity floor) — or ``"born"`` — Fig. 2's
            ``P(a_i)`` reading, where the policy is the measurement
            distribution of the action qubits and can become deterministic.
        gradient_method: ``"adjoint"`` (simulator-exact default) or
            ``"parameter_shift"`` (hardware-faithful, required with noise).
        array_backend: Array backend the exact statevector kernels run on:
            ``None`` (process default — numpy unless
            ``REPRO_QUANTUM_BACKEND`` overrides it), ``"numpy"``,
            ``"cupy"``/``"torch"`` when installed, or ``"mock"`` (the
            transfer-counting CI backend).  See
            :mod:`repro.quantum.backend`.
        actor_ansatz_seed / critic_ansatz_seed: Seeds fixing the *structure*
            of the random ansatz.  These are architecture choices (part of
            the configuration), deliberately independent of the framework's
            run seed so that differently-seeded runs — and checkpoints —
            share one circuit design, as the paper's fixed VQC does.
    """

    n_qubits: int = 4
    n_variational_gates: int = 50
    template: str = "random"
    encoding_scale: float = float(np.pi)
    two_qubit_ratio: float = 0.25
    critic_value_scale: float = 30.0
    actor_logit_scale: float = 1.0
    actor_policy_head: str = "softmax"
    gradient_method: str = "adjoint"
    array_backend: str = None
    actor_ansatz_seed: int = 1001
    critic_ansatz_seed: int = 2002

    def __post_init__(self):
        if self.n_qubits < 1:
            raise ValueError("n_qubits must be >= 1")
        if self.n_variational_gates < 1:
            raise ValueError("n_variational_gates must be >= 1")


@dataclass(frozen=True)
class ClassicalNetConfig:
    """Classical MLP shapes for the baselines.

    ``Comp2`` mirrors the quantum models' ~50-parameter budget; ``Comp3``
    is the >40k-parameter reference (Section IV-C).
    """

    actor_hidden: tuple = ()
    critic_hidden: tuple = ()
    activation: str = "tanh"


@dataclass(frozen=True)
class TrainingConfig:
    """CTDE training loop hyper-parameters (Algorithm 1 + Table II).

    Attributes:
        n_epochs: Training epochs (paper: 1000).
        episodes_per_epoch: Episodes collected per epoch before one update
            (unspecified; 4).
        gamma: Discount factor (unspecified; 0.95).
        actor_lr: Actor learning rate (Table II: 1e-4).
        critic_lr: Critic learning rate (Table II: 1e-5).
        target_update_period: Epochs between target-critic syncs
            (unspecified; 10).
        grad_clip: Optional global-norm gradient clip (unspecified; 10.0).
        entropy_coef: Optional entropy bonus on the actor loss (0 = paper's
            plain MAPG).
        evaluation_episodes: Greedy-policy episodes used when evaluating.
        rollout_envs: Lockstep environment copies used for vectorized /
            sharded episode collection (clamped to ``episodes_per_epoch``).
            With 1 copy the vectorized path consumes RNG streams
            bit-identically to the serial reference rollout.
        rollout_workers: Worker processes the sharded engine splits the
            lockstep copies across (clamped to the effective copy count).
            Any worker count is bit-identical to the in-process vectorized
            path under a fixed seed; 1 keeps collection in-process unless
            ``rollout_mode="sharded"`` forces the pool.
        rollout_mode: ``"auto"`` — shard collection across processes when
            ``rollout_workers > 1``, else vectorize in-process when
            ``rollout_envs > 1`` — or force ``"serial"`` (the reference
            ``rollout_episode`` loop) / ``"vector"`` (the in-process batched
            engine, any copy count) / ``"sharded"`` (the worker-pool engine,
            any worker count).
        rollout_transport: How the sharded engine's workers ship transition
            blocks back — ``"pipe"`` (pickle over the command pipe),
            ``"shm"`` (per-worker shared-memory ring buffers; zero pickling
            on episode arrays), or ``"auto"`` (shm once estimated episode
            blocks outgrow the pickling regime).  Bit-identical either way;
            purely a throughput knob.  Only meaningful for sharded
            collection: setting it explicitly alongside settings that can
            never shard is rejected at construction.
        trainer: ``"mapg"`` — the paper's gradient-based CTDE actor-critic
            (:class:`~repro.marl.trainer.CTDETrainer`) — or ``"es"`` — the
            gradient-free evolutionary-strategies engine
            (:class:`~repro.marl.evolution.ESTrainer`), which trains the
            actor team by population search and uses no critic at all.
            Under ES, ``episodes_per_epoch`` means episodes *per population
            member* per generation and ``rollout_envs`` means lockstep env
            copies per member.
        es_population: ES population size ``P`` (candidate teams evaluated
            per generation; antithetic pairs, so even values waste
            nothing).  Only valid with ``trainer="es"``; ``None`` resolves
            to 8.
        es_sigma: Gaussian perturbation scale applied to the flat team
            weight vector.  Must be positive, except that ``0.0`` is
            allowed together with ``es_population=1`` — the documented
            evaluation-only mode that reproduces plain unperturbed
            collection bit-for-bit.  ``None`` resolves to 0.1.
        es_lr: ES learning rate (step size on the rank-shaped gradient
            estimate).  ``None`` resolves to 0.05.
        es_weight_decay: Weight decay applied inside the ES update
            (OpenAI-ES style).  ``None`` resolves to 0.0.
    """

    n_epochs: int = 1000
    episodes_per_epoch: int = 4
    gamma: float = 0.95
    actor_lr: float = 1e-4
    critic_lr: float = 1e-5
    target_update_period: int = 10
    grad_clip: float = 10.0
    entropy_coef: float = 0.0
    evaluation_episodes: int = 8
    rollout_envs: int = 1
    rollout_workers: int = 1
    rollout_mode: str = "auto"
    rollout_transport: str = "auto"
    trainer: str = "mapg"
    es_population: int = None
    es_sigma: float = None
    es_lr: float = None
    es_weight_decay: float = None

    _ROLLOUT_MODES = ("auto", "serial", "vector", "sharded")
    _ROLLOUT_TRANSPORTS = ("auto", "pipe", "shm")
    _TRAINERS = ("mapg", "es")

    # Documented defaults the None-valued es_* knobs resolve to under
    # trainer="es" (kept as sentinels so trainer="mapg" can reject any
    # explicitly set — and therefore inert — ES knob).
    _ES_DEFAULTS = {
        "es_population": 8,
        "es_sigma": 0.1,
        "es_lr": 0.05,
        "es_weight_decay": 0.0,
    }

    def __post_init__(self):
        if self.n_epochs < 1 or self.episodes_per_epoch < 1:
            raise ValueError("epochs and episodes_per_epoch must be >= 1")
        if not 0.0 <= self.gamma < 1.0:
            raise ValueError("gamma must be in [0, 1)")
        if self.actor_lr <= 0 or self.critic_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.target_update_period < 1:
            raise ValueError("target_update_period must be >= 1")
        if not isinstance(self.rollout_envs, (int, np.integer)) or self.rollout_envs < 1:
            raise ValueError(
                f"rollout_envs must be a positive integer, "
                f"got {self.rollout_envs!r}"
            )
        if (
            not isinstance(self.rollout_workers, (int, np.integer))
            or self.rollout_workers < 1
        ):
            raise ValueError(
                f"rollout_workers must be a positive integer, "
                f"got {self.rollout_workers!r}"
            )
        if self.rollout_mode not in self._ROLLOUT_MODES:
            raise ValueError(
                f"rollout_mode must be one of {self._ROLLOUT_MODES}, "
                f"got {self.rollout_mode!r}"
            )
        if self.rollout_transport not in self._ROLLOUT_TRANSPORTS:
            raise ValueError(
                f"rollout_transport must be one of "
                f"{self._ROLLOUT_TRANSPORTS}, got {self.rollout_transport!r}"
            )
        if self.trainer not in self._TRAINERS:
            raise ValueError(
                f"trainer must be one of {self._TRAINERS}, "
                f"got {self.trainer!r}"
            )
        if self.trainer == "mapg":
            # Any explicitly set ES knob is inert under the gradient
            # trainer; silently ignoring it would hide a misconfiguration
            # (same policy as rollout_transport below).
            for knob in self._ES_DEFAULTS:
                if getattr(self, knob) is not None:
                    raise ValueError(
                        f"{knob}={getattr(self, knob)!r} only affects the "
                        f"evolutionary-strategies engine, but trainer="
                        f"'mapg' never reads it; set trainer='es' or leave "
                        f"{knob}=None"
                    )
        else:  # trainer == "es"
            if self.entropy_coef != 0.0:
                raise ValueError(
                    f"entropy_coef={self.entropy_coef!r} is a MAPG-only "
                    f"knob (the ES update has no policy-gradient loss to "
                    f"add an entropy bonus to); leave it at 0.0 with "
                    f"trainer='es'"
                )
            population = self.effective_es_population
            if (
                not isinstance(population, (int, np.integer))
                or isinstance(population, bool)
                or population < 1
            ):
                raise ValueError(
                    f"es_population must be a positive integer, "
                    f"got {self.es_population!r}"
                )
            sigma = self.effective_es_sigma
            if sigma < 0 or (sigma == 0 and population != 1):
                raise ValueError(
                    f"es_sigma must be positive (es_sigma=0 is only valid "
                    f"with es_population=1, the unperturbed evaluation "
                    f"mode), got es_sigma={self.es_sigma!r} with "
                    f"es_population={population}"
                )
            if population == 1 and sigma != 0:
                # The mirror inert combination: a lone member gives rank
                # shaping nothing to compare, so no update ever happens —
                # yet every generation would evaluate a *perturbed* policy.
                raise ValueError(
                    f"es_population=1 with es_sigma={sigma!r} trains "
                    f"nothing (a single member cannot be rank-shaped); "
                    f"use es_population>=2 to search, or es_sigma=0.0 for "
                    f"the unperturbed evaluation mode"
                )
            if self.effective_es_lr <= 0:
                raise ValueError(
                    f"es_lr must be positive, got {self.es_lr!r}"
                )
            if self.effective_es_weight_decay < 0:
                raise ValueError(
                    f"es_weight_decay must be non-negative, "
                    f"got {self.es_weight_decay!r}"
                )
        if self.rollout_transport != "auto":
            # A transport choice is inert unless the sharded engine can run;
            # silently ignoring the knob would hide a misconfiguration.  The
            # *effective* worker count is what decides — e.g. many workers
            # over one effective env copy still collapse to in-process.
            can_shard = self.rollout_mode == "sharded" or (
                self.rollout_mode == "auto"
                and self.effective_rollout_workers > 1
            )
            if not can_shard:
                raise ValueError(
                    f"rollout_transport={self.rollout_transport!r} only "
                    f"affects process-sharded collection, but "
                    f"rollout_mode={self.rollout_mode!r} with "
                    f"rollout_workers={self.rollout_workers} over "
                    f"{self.effective_rollout_envs} effective env copies "
                    f"(rollout_envs={self.rollout_envs}, episodes_per_epoch="
                    f"{self.episodes_per_epoch}) never starts a worker pool; "
                    f"set rollout_mode='sharded' (or enough envs/workers "
                    f"with mode 'auto'), or leave rollout_transport='auto'"
                )

    @property
    def effective_rollout_envs(self):
        """Lockstep env copies epoch collection actually uses.

        Clamped to the largest divisor of ``episodes_per_epoch`` not above
        the configured count: with fixed-length episodes all copies finish
        in lockstep, so a non-divisor count would fully collect — then
        silently discard — up to ``n_envs - 1`` surplus episodes every
        epoch.  A divisor wastes nothing.  For ragged envs
        (data-dependent termination) completion is no longer lockstep and
        some discard is unavoidable in the final round; the divisor clamp
        stays because it is still the right choice for the fixed-length
        family and harmless for the ragged one.
        """
        configured = min(self.rollout_envs, self.episodes_per_epoch)
        while self.episodes_per_epoch % configured:
            configured -= 1
        return configured

    @property
    def effective_rollout_workers(self):
        """Effective worker process count for sharded collection.

        Clamped to the total lockstep row count — a worker without at least
        one env row would idle while still costing a process.  Under the
        gradient trainer that is the effective env copy count; under ES the
        population multiplies it (each member owns its own rows, so a
        population of P over k copies per member gives ``k * P`` shardable
        rows).
        """
        return min(self.rollout_workers, self.total_rollout_rows)

    @property
    def total_rollout_rows(self):
        """Total lockstep env rows epoch collection steps at once.

        ``effective_rollout_envs`` for the gradient trainer;
        ``effective_rollout_envs * es_population`` for ES, where every
        population member owns ``effective_rollout_envs`` rows.
        """
        if self.trainer == "es":
            return self.effective_rollout_envs * self.effective_es_population
        return self.effective_rollout_envs

    # -- ES knob resolution ---------------------------------------------------

    def _effective_es(self, knob):
        """A None-defaulted ES knob with its documented default applied."""
        value = getattr(self, knob)
        return self._ES_DEFAULTS[knob] if value is None else value

    @property
    def effective_es_population(self):
        """ES population size with the documented default applied."""
        return self._effective_es("es_population")

    @property
    def effective_es_sigma(self):
        """ES perturbation scale with the documented default applied."""
        return self._effective_es("es_sigma")

    @property
    def effective_es_lr(self):
        """ES learning rate with the documented default applied."""
        return self._effective_es("es_lr")

    @property
    def effective_es_weight_decay(self):
        """ES weight decay with the documented default applied."""
        return self._effective_es("es_weight_decay")


@dataclass(frozen=True)
class ServingConfig:
    """Policy-serving tier knobs (see ``docs/serving.md``).

    Args:
        max_batch: Most decision rows coalesced into one stacked circuit
            call.  Raising it trades per-request latency for throughput;
            the frontier is measured by ``benchmarks/bench_serving.py``.
        max_wait_us: Adaptive batching window in microseconds — how long
            the oldest queued request may wait for companions before the
            batch is flushed regardless of size.  0 flushes immediately
            (batch size is then whatever arrived during the previous
            evaluation).
        max_pending: Upper bound on queued decision rows before new
            requests are rejected with an overload error (HTTP 503).
            0 means unbounded.
        workers: Inference shard processes.  1 evaluates in-process; more
            fan each micro-batch across processes over the rollout
            transport seam.
        transport: How sharded workers ship probability blocks back —
            ``"pipe"`` (pickle pipes) or ``"shm"`` (shared-memory ring);
            ``"auto"`` resolves to ``"pipe"``, which wins for the small
            blocks typical of serving.  Only meaningful with
            ``workers > 1``.
        reload_poll_ms: Hot-reload watcher poll interval in milliseconds;
            0 disables checkpoint watching.
        sample_seed: Seed for the server-owned action-sampling stream
            (sampling happens in the parent even in sharded mode, so
            responses are reproducible for any worker count).
        host: Bind address for the HTTP server.
        port: Bind port (0 picks an ephemeral port; useful for tests).
        log_requests: Emit one structured JSON access-log line per request
            at flush time (request id, batch id, queue wait, flush reason).
            Off by default — the log writes from the event loop, so leave
            it off when benchmarking latency.
    """

    max_batch: int = 32
    max_wait_us: int = 2000
    max_pending: int = 0
    workers: int = 1
    transport: str = "auto"
    reload_poll_ms: int = 200
    sample_seed: int = 0
    host: str = "127.0.0.1"
    port: int = 8123
    log_requests: bool = False

    _TRANSPORTS = ("auto", "pipe", "shm")

    def __post_init__(self):
        if not isinstance(self.max_batch, (int, np.integer)) or self.max_batch < 1:
            raise ValueError(
                f"max_batch must be a positive integer, got {self.max_batch!r}"
            )
        if self.max_wait_us < 0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {self.max_wait_us!r}"
            )
        if self.max_pending < 0:
            raise ValueError(
                f"max_pending must be >= 0, got {self.max_pending!r}"
            )
        if not isinstance(self.workers, (int, np.integer)) or self.workers < 1:
            raise ValueError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if self.transport not in self._TRANSPORTS:
            raise ValueError(
                f"transport must be one of {self._TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.workers == 1 and self.transport != "auto":
            # Same inert-knob policy as TrainingConfig.rollout_transport:
            # with one worker there is no transport, so an explicit setting
            # would silently do nothing.
            raise ValueError(
                f"transport={self.transport!r} only affects sharded serving, "
                f"but workers=1 evaluates in-process; set workers > 1 or "
                f"leave transport='auto'"
            )
        if self.reload_poll_ms < 0:
            raise ValueError(
                f"reload_poll_ms must be >= 0, got {self.reload_poll_ms!r}"
            )
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port!r}")

    @property
    def effective_transport(self):
        """The transport the sharded tier actually uses (auto -> pipe)."""
        return "pipe" if self.transport == "auto" else self.transport


# Classical baseline shapes used by the paper's comparison (Section IV-C).
# Comp2: ~50 trainable parameters per network (actor 4-5-4 = 49,
# critic 16-3-1 = 55, bracketing the quantum models' exact 50);
# Comp3: > 40k parameters overall (4x actor 4-64-64-4 plus critic
# 16-160-160-1 = 47,601 total).
COMP2_NET = ClassicalNetConfig(actor_hidden=(5,), critic_hidden=(3,))
COMP3_NET = ClassicalNetConfig(actor_hidden=(64, 64), critic_hidden=(160, 160))
