"""Environment substrate: multi-agent API, queueing dynamics, offloading env."""

from repro.envs.arrivals import (
    BernoulliBurstArrivals,
    DeterministicArrivals,
    TruncatedPoissonArrivals,
    UniformArrivals,
)
from repro.envs.base import Discrete, FeatureSpace, MultiAgentEnv, StepResult
from repro.envs.queues import QueueBank, QueueUpdate, clip
from repro.envs.multi_hop import MultiHopOffloadEnv, layered_topology
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.wrappers import EpisodeStatsWrapper, RewardScaleWrapper, Wrapper

__all__ = [
    "Discrete",
    "FeatureSpace",
    "MultiAgentEnv",
    "StepResult",
    "QueueBank",
    "QueueUpdate",
    "clip",
    "UniformArrivals",
    "BernoulliBurstArrivals",
    "TruncatedPoissonArrivals",
    "DeterministicArrivals",
    "SingleHopOffloadEnv",
    "MultiHopOffloadEnv",
    "layered_topology",
    "EpisodeStatsWrapper",
    "RewardScaleWrapper",
    "Wrapper",
]
