"""Environment substrate: multi-agent API, queueing dynamics, offloading env."""

from repro.envs.arrivals import (
    ArrivalProcess,
    BernoulliBurstArrivals,
    DeterministicArrivals,
    TruncatedPoissonArrivals,
    UniformArrivals,
)
from repro.envs.base import Discrete, FeatureSpace, MultiAgentEnv, StepResult
from repro.envs.queues import QueueBank, QueueUpdate, clip
from repro.envs.multi_hop import MultiHopOffloadEnv, layered_topology
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.envs.vector import (
    MultiHopVectorEnv,
    SingleHopVectorEnv,
    VectorEnv,
    VectorStepResult,
    make_vector_env,
)
from repro.envs.wrappers import EpisodeStatsWrapper, RewardScaleWrapper, Wrapper

__all__ = [
    "Discrete",
    "FeatureSpace",
    "MultiAgentEnv",
    "StepResult",
    "QueueBank",
    "QueueUpdate",
    "clip",
    "ArrivalProcess",
    "UniformArrivals",
    "BernoulliBurstArrivals",
    "TruncatedPoissonArrivals",
    "DeterministicArrivals",
    "SingleHopOffloadEnv",
    "MultiHopOffloadEnv",
    "layered_topology",
    "VectorEnv",
    "VectorStepResult",
    "SingleHopVectorEnv",
    "MultiHopVectorEnv",
    "make_vector_env",
    "EpisodeStatsWrapper",
    "RewardScaleWrapper",
    "Wrapper",
]
