"""Packet arrival processes feeding the edge queues.

The paper draws edge arrivals uniformly: ``b ~ U(0, w_P * q_max)``.  The
additional processes here exercise the environment under burstier traffic in
the robustness ablations and provide deterministic streams for tests.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "UniformArrivals",
    "BernoulliBurstArrivals",
    "TruncatedPoissonArrivals",
    "DeterministicArrivals",
]


class UniformArrivals:
    """The paper's process: i.i.d. ``U(0, w_p * q_max)`` per edge per step."""

    def __init__(self, w_p, q_max):
        if w_p < 0:
            raise ValueError("w_p must be non-negative")
        self.high = float(w_p) * float(q_max)

    @property
    def mean(self):
        """Expected arrival volume per step."""
        return self.high / 2.0

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues."""
        return rng.uniform(0.0, self.high, size=n)

    def __repr__(self):
        return f"UniformArrivals(high={self.high})"


class BernoulliBurstArrivals:
    """Bursty traffic: with probability ``p`` a burst of fixed size arrives."""

    def __init__(self, burst_probability, burst_size):
        if not 0.0 <= burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        if burst_size < 0:
            raise ValueError("burst_size must be non-negative")
        self.burst_probability = float(burst_probability)
        self.burst_size = float(burst_size)

    @property
    def mean(self):
        """Expected arrival volume per step."""
        return self.burst_probability * self.burst_size

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues."""
        bursts = rng.random(n) < self.burst_probability
        return np.where(bursts, self.burst_size, 0.0)

    def __repr__(self):
        return (
            f"BernoulliBurstArrivals(p={self.burst_probability}, "
            f"size={self.burst_size})"
        )


class TruncatedPoissonArrivals:
    """Poisson packet counts of fixed size, truncated at a volume cap."""

    def __init__(self, rate, packet_size, cap):
        if rate < 0 or packet_size < 0 or cap < 0:
            raise ValueError("rate, packet_size and cap must be non-negative")
        self.rate = float(rate)
        self.packet_size = float(packet_size)
        self.cap = float(cap)

    @property
    def mean(self):
        """Expected arrival volume per step (ignoring truncation)."""
        return min(self.rate * self.packet_size, self.cap)

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues."""
        counts = rng.poisson(self.rate, size=n)
        return np.minimum(counts * self.packet_size, self.cap)

    def __repr__(self):
        return (
            f"TruncatedPoissonArrivals(rate={self.rate}, "
            f"packet_size={self.packet_size}, cap={self.cap})"
        )


class DeterministicArrivals:
    """Fixed arrival volume every step (testing aid)."""

    def __init__(self, volume):
        if volume < 0:
            raise ValueError("volume must be non-negative")
        self.volume = float(volume)

    @property
    def mean(self):
        """Expected (= exact) arrival volume per step."""
        return self.volume

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues."""
        return np.full(n, self.volume)

    def __repr__(self):
        return f"DeterministicArrivals(volume={self.volume})"
