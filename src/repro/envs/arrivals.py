"""Packet arrival processes feeding the edge queues.

The paper draws edge arrivals uniformly: ``b ~ U(0, w_P * q_max)``.  The
additional processes here exercise the environment under burstier traffic in
the robustness ablations and provide deterministic streams for tests.

Every process also exposes :meth:`ArrivalProcess.sample_batch`, the leading-
batch-axis kernel used by the lockstep vector environments: one row per
environment copy, each drawn from that copy's *own* generator so a batched
rollout consumes RNG streams exactly like independent serial environments.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ArrivalProcess",
    "UniformArrivals",
    "BernoulliBurstArrivals",
    "TruncatedPoissonArrivals",
    "DeterministicArrivals",
]


class ArrivalProcess:
    """Base class: per-step arrival sampling, serial or batched over envs.

    Subclasses implement ``sample(rng, n)``; the batched kernel stacks one
    per-environment draw per row.  Keeping one ``rng`` per row (rather than
    one generator for the whole block) is deliberate: it makes row ``i`` of
    a vectorised environment bit-identical to a serial environment seeded
    with the same stream, which is what the step-for-step equivalence tests
    pin down.
    """

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues of one environment."""
        raise NotImplementedError

    def sample_batch(self, rngs, n):
        """Arrival volumes ``(len(rngs), n)`` — row ``i`` from ``rngs[i]``."""
        return np.stack([self.sample(rng, n) for rng in rngs])


class UniformArrivals(ArrivalProcess):
    """The paper's process: i.i.d. ``U(0, w_p * q_max)`` per edge per step."""

    def __init__(self, w_p, q_max):
        if w_p < 0:
            raise ValueError("w_p must be non-negative")
        self.high = float(w_p) * float(q_max)

    @property
    def mean(self):
        """Expected arrival volume per step."""
        return self.high / 2.0

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues."""
        return rng.uniform(0.0, self.high, size=n)

    def __repr__(self):
        return f"UniformArrivals(high={self.high})"


class BernoulliBurstArrivals(ArrivalProcess):
    """Bursty traffic: with probability ``p`` a burst of fixed size arrives."""

    def __init__(self, burst_probability, burst_size):
        if not 0.0 <= burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        if burst_size < 0:
            raise ValueError("burst_size must be non-negative")
        self.burst_probability = float(burst_probability)
        self.burst_size = float(burst_size)

    @property
    def mean(self):
        """Expected arrival volume per step."""
        return self.burst_probability * self.burst_size

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues."""
        bursts = rng.random(n) < self.burst_probability
        return np.where(bursts, self.burst_size, 0.0)

    def __repr__(self):
        return (
            f"BernoulliBurstArrivals(p={self.burst_probability}, "
            f"size={self.burst_size})"
        )


class TruncatedPoissonArrivals(ArrivalProcess):
    """Poisson packet counts of fixed size, truncated at a volume cap."""

    def __init__(self, rate, packet_size, cap):
        if rate < 0 or packet_size < 0 or cap < 0:
            raise ValueError("rate, packet_size and cap must be non-negative")
        self.rate = float(rate)
        self.packet_size = float(packet_size)
        self.cap = float(cap)

    @property
    def mean(self):
        """Expected arrival volume per step (ignoring truncation)."""
        return min(self.rate * self.packet_size, self.cap)

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues."""
        counts = rng.poisson(self.rate, size=n)
        return np.minimum(counts * self.packet_size, self.cap)

    def __repr__(self):
        return (
            f"TruncatedPoissonArrivals(rate={self.rate}, "
            f"packet_size={self.packet_size}, cap={self.cap})"
        )


class DeterministicArrivals(ArrivalProcess):
    """Fixed arrival volume every step (testing aid)."""

    def __init__(self, volume):
        if volume < 0:
            raise ValueError("volume must be non-negative")
        self.volume = float(volume)

    @property
    def mean(self):
        """Expected (= exact) arrival volume per step."""
        return self.volume

    def sample(self, rng, n):
        """Arrival volume for ``n`` queues."""
        return np.full(n, self.volume)

    def __repr__(self):
        return f"DeterministicArrivals(volume={self.volume})"
