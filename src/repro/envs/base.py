"""Multi-agent environment API.

A deliberately small, explicit protocol in the CTDE mould: agents receive
*local observations* for decentralised execution, while the trainer receives
the *global state* (the ground truth ``s_t`` of the paper) for centralised
criticism.  Rewards are team rewards shared by all agents, matching the
cooperative setting of the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Discrete", "FeatureSpace", "MultiAgentEnv", "StepResult"]


class Discrete:
    """A finite action set ``{0, ..., n-1}``."""

    def __init__(self, n):
        if n < 1:
            raise ValueError("Discrete space needs n >= 1")
        self.n = int(n)

    def sample(self, rng):
        """Uniformly random action index."""
        return int(rng.integers(self.n))

    def contains(self, value):
        """Whether ``value`` is a valid action index."""
        return isinstance(value, (int, np.integer)) and 0 <= int(value) < self.n

    def __eq__(self, other):
        return isinstance(other, Discrete) and other.n == self.n

    def __repr__(self):
        return f"Discrete({self.n})"


class FeatureSpace:
    """A box of real features with elementwise bounds."""

    def __init__(self, low, high, size):
        self.low = float(low)
        self.high = float(high)
        self.size = int(size)
        if self.low >= self.high:
            raise ValueError("low must be < high")

    def contains(self, value, atol=1e-9):
        """Whether a vector lies inside the box (within tolerance)."""
        value = np.asarray(value)
        return (
            value.shape == (self.size,)
            and bool(np.all(value >= self.low - atol))
            and bool(np.all(value <= self.high + atol))
        )

    def __repr__(self):
        return f"FeatureSpace(low={self.low}, high={self.high}, size={self.size})"


class StepResult:
    """The outcome of one environment step.

    Attributes:
        observations: List of per-agent observation vectors.
        state: Global state vector (concatenated observations in the paper).
        reward: Shared team reward.
        done: Episode-termination flag.
        info: Dict of diagnostic statistics for metrics collection.
    """

    __slots__ = ("observations", "state", "reward", "done", "info")

    def __init__(self, observations, state, reward, done, info):
        self.observations = observations
        self.state = state
        self.reward = float(reward)
        self.done = bool(done)
        self.info = info

    def __iter__(self):
        """Allow tuple unpacking: ``obs, state, reward, done, info = result``."""
        return iter(
            (self.observations, self.state, self.reward, self.done, self.info)
        )


class MultiAgentEnv:
    """Protocol for cooperative multi-agent environments.

    Subclasses must set ``n_agents``, ``observation_space``, ``action_space``
    and ``state_size``, and implement :meth:`reset` and :meth:`step`.
    """

    n_agents = 0
    observation_space = None
    action_space = None
    state_size = 0

    #: Whether episodes can end *before* the horizon on a data-dependent
    #: event (e.g. a queue overflow).  The vectorized and sharded rollout
    #: engines consult this flag: fixed-length envs keep the lockstep fast
    #: path, ragged envs get per-row episode boundaries.  Subclasses with
    #: data-dependent termination must override this (attribute or
    #: property) to return True.
    has_data_dependent_termination = False

    def reset(self):
        """Start a new episode; returns ``(observations, state)``."""
        raise NotImplementedError

    def step(self, actions):
        """Advance one step; returns a :class:`StepResult`."""
        raise NotImplementedError

    @property
    def observation_size(self):
        """Per-agent observation dimensionality."""
        return self.observation_space.size

    @property
    def n_actions(self):
        """Per-agent action count."""
        return self.action_space.n

    def validate_actions(self, actions):
        """Raise with a clear message when an action vector is malformed."""
        if len(actions) != self.n_agents:
            raise ValueError(
                f"expected {self.n_agents} actions, got {len(actions)}"
            )
        for i, action in enumerate(actions):
            if not self.action_space.contains(action):
                raise ValueError(
                    f"agent {i} action {action!r} outside {self.action_space}"
                )
