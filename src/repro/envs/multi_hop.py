"""Multi-hop offloading: the natural extension of the paper's environment.

The paper evaluates a *single-hop* topology (edges -> clouds) and motivates
the setting with general edge computing.  This module generalises the queue
network to an arbitrary layered DAG — e.g. edges -> relays -> clouds —
while preserving the paper's mechanics exactly in the single-hop special
case:

- every node owns a clipped queue ``q_{t+1} = clip(q - u + b, 0, q_max)``;
- *agent* nodes (the first layer) pick ``(next-hop, packet amount)``
  actions from their learned policies;
- *relay* nodes forward a fixed service volume along their out-edges
  (split equally);
- *sink* nodes (clouds) transmit a fixed volume out of the network, and
  contribute the Eq. (1)-style underflow/overflow penalties;
- the team reward is the sum of penalty terms over every non-agent queue
  (for the single-hop topology this reduces to the paper's reward).

Topologies are ``networkx.DiGraph`` objects; :func:`layered_topology`
builds the standard layered graphs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.envs.arrivals import UniformArrivals
from repro.envs.base import Discrete, FeatureSpace, MultiAgentEnv, StepResult
from repro.envs.queues import QueueBank

__all__ = ["layered_topology", "MultiHopOffloadEnv"]


def layered_topology(layer_sizes, full_mesh=True):
    """A layered DAG: ``layer_sizes = (n_agents, n_relays, ..., n_sinks)``.

    Nodes are named ``"L{layer}/{index}"``.  With ``full_mesh`` every node
    connects to every node of the next layer; otherwise node ``i`` connects
    to node ``i % next_size`` (a thin chain).
    """
    if len(layer_sizes) < 2:
        raise ValueError("need at least an agent layer and a sink layer")
    if any(s < 1 for s in layer_sizes):
        raise ValueError("every layer needs at least one node")
    graph = nx.DiGraph()
    for layer, size in enumerate(layer_sizes):
        for i in range(size):
            graph.add_node(f"L{layer}/{i}", layer=layer)
    for layer in range(len(layer_sizes) - 1):
        for i in range(layer_sizes[layer]):
            if full_mesh:
                targets = range(layer_sizes[layer + 1])
            else:
                targets = [i % layer_sizes[layer + 1]]
            for j in targets:
                graph.add_edge(f"L{layer}/{i}", f"L{layer + 1}/{j}")
    return graph


class MultiHopOffloadEnv(MultiAgentEnv):
    """Cooperative offloading over a layered queue network.

    Args:
        topology: A layered DAG from :func:`layered_topology` (or any
            DiGraph whose nodes carry a ``layer`` attribute, where layer 0
            nodes are the agents and the deepest layer the sinks).
        packet_amounts: The agents' packet-amount space ``P``.
        w_p: Edge arrival parameter (arrivals ~ ``U(0, w_p * q_max)``).
        w_r: Overflow penalty weight (Eq. 1).
        service_rate: Outflow volume per step for relays and sinks.
        queue_capacity: ``q_max`` shared by every node.
        episode_limit: Steps per episode (a hard cap when
            ``terminate_on_overflow`` is set).
        initial_queue_level: Starting level (fraction of capacity).
        rng: Arrival generator.
        terminate_on_overflow: End the episode the moment any non-agent
            (relay or sink) queue overflows, making episode length
            data-dependent instead of fixed at ``episode_limit``.

    Observations: each agent sees its own queue level (now and previous)
    plus the queue levels of its direct successors — the multi-hop
    analogue of Table I's observation.
    """

    def __init__(
        self,
        topology,
        packet_amounts=(0.1, 0.2),
        w_p=0.3,
        w_r=4.0,
        service_rate=0.3,
        queue_capacity=1.0,
        episode_limit=50,
        initial_queue_level=0.5,
        rng=None,
        terminate_on_overflow=False,
    ):
        if not nx.is_directed_acyclic_graph(topology):
            raise ValueError("topology must be a DAG")
        self.topology = topology
        layers = nx.get_node_attributes(topology, "layer")
        if not layers:
            raise ValueError("topology nodes need a 'layer' attribute")
        self.n_layers = max(layers.values()) + 1
        if self.n_layers < 2:
            raise ValueError("need at least two layers")

        self._nodes_by_layer = [
            sorted(n for n, l in layers.items() if l == layer)
            for layer in range(self.n_layers)
        ]
        self.agent_nodes = self._nodes_by_layer[0]
        self.sink_nodes = self._nodes_by_layer[-1]
        self._non_agent_nodes = [
            node
            for layer_nodes in self._nodes_by_layer[1:]
            for node in layer_nodes
        ]
        self._successors = {
            node: sorted(topology.successors(node)) for node in topology.nodes
        }
        for node in self.agent_nodes:
            if not self._successors[node]:
                raise ValueError(f"agent node {node} has no successors")
        out_degrees = {len(self._successors[n]) for n in self.agent_nodes}
        if len(out_degrees) != 1:
            raise ValueError(
                "all agents must share one out-degree so they share an "
                f"action space; got degrees {sorted(out_degrees)}"
            )
        self._agent_out_degree = out_degrees.pop()

        self.packet_amounts = tuple(float(p) for p in packet_amounts)
        self.w_p = float(w_p)
        self.w_r = float(w_r)
        self.service_rate = float(service_rate)
        self.queue_capacity = float(queue_capacity)
        self.episode_limit = int(episode_limit)
        self.terminate_on_overflow = bool(terminate_on_overflow)
        self.has_data_dependent_termination = self.terminate_on_overflow
        self.rng = rng if rng is not None else np.random.default_rng()
        self.arrivals = UniformArrivals(self.w_p, self.queue_capacity)

        self.n_agents = len(self.agent_nodes)
        self.action_space = Discrete(
            self._agent_out_degree * len(self.packet_amounts)
        )
        obs_size = 2 + self._agent_out_degree
        self.observation_space = FeatureSpace(0.0, self.queue_capacity, obs_size)
        self.state_size = self.n_agents * obs_size

        self._agent_queues = QueueBank(
            self.n_agents, self.queue_capacity, initial_queue_level
        )
        self._network_queues = QueueBank(
            len(self._non_agent_nodes), self.queue_capacity, initial_queue_level
        )
        self._network_index = {
            node: i for i, node in enumerate(self._non_agent_nodes)
        }
        self._prev_agent_levels = None
        self._t = 0

    # -- action coding --------------------------------------------------------

    def decode_action(self, action):
        """Map an action index to ``(successor_index, packet_amount)``."""
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r}")
        action = int(action)
        n_amounts = len(self.packet_amounts)
        return action // n_amounts, self.packet_amounts[action % n_amounts]

    # -- observations -----------------------------------------------------------

    def _observations(self):
        q_max = self.queue_capacity
        network = self._network_queues.levels
        observations = []
        for i, node in enumerate(self.agent_nodes):
            successor_levels = [
                network[self._network_index[s]] / q_max
                for s in self._successors[node]
            ]
            observations.append(
                np.concatenate(
                    (
                        [
                            self._agent_queues.levels[i] / q_max,
                            self._prev_agent_levels[i] / q_max,
                        ],
                        successor_levels,
                    )
                )
            )
        return observations

    def _state(self, observations):
        return np.concatenate(observations)

    # -- dynamics -----------------------------------------------------------------

    def reset(self):
        """Start a new episode; returns ``(observations, state)``."""
        self._t = 0
        self._agent_queues.reset(self.rng)
        self._network_queues.reset(self.rng)
        self._prev_agent_levels = self._agent_queues.levels.copy()
        observations = self._observations()
        return observations, self._state(observations)

    def step(self, actions):
        """Advance one step given one action index per agent."""
        self.validate_actions(actions)

        inflow = np.zeros(len(self._non_agent_nodes))
        scheduled = np.empty(self.n_agents)
        for i, (node, action) in enumerate(zip(self.agent_nodes, actions)):
            successor_index, amount = self.decode_action(action)
            target = self._successors[node][successor_index]
            inflow[self._network_index[target]] += amount
            scheduled[i] = amount

        # Relays forward their service volume split over out-edges; sinks
        # transmit it out of the network.
        outflow = np.full(len(self._non_agent_nodes), self.service_rate)
        for node in self._non_agent_nodes:
            forwarded = self.service_rate
            successors = self._successors[node]
            if successors:
                per_edge = forwarded / len(successors)
                for target in successors:
                    inflow[self._network_index[target]] += per_edge

        prev_agent_levels = self._agent_queues.levels.copy()
        network_update = self._network_queues.step(outflow=outflow, inflow=inflow)
        agent_update = self._agent_queues.step(
            outflow=scheduled,
            inflow=self.arrivals.sample(self.rng, self.n_agents),
        )
        self._prev_agent_levels = prev_agent_levels

        empty_penalty = np.where(
            network_update.empty, network_update.q_tilde, 0.0
        )
        overflow_penalty = np.where(
            network_update.overflow, network_update.q_hat * self.w_r, 0.0
        )
        reward = -float(np.sum(empty_penalty + overflow_penalty))

        self._t += 1
        done = self._t >= self.episode_limit
        if self.terminate_on_overflow and bool(network_update.overflow.any()):
            done = True
        observations = self._observations()

        all_levels = np.concatenate(
            [agent_update.levels, network_update.levels]
        )
        n_slots = all_levels.size
        info = {
            "t": self._t,
            "agent_levels": agent_update.levels.copy(),
            "network_levels": network_update.levels.copy(),
            "mean_queue": float(all_levels.mean()),
            "empty_ratio": float(
                (agent_update.empty.sum() + network_update.empty.sum()) / n_slots
            ),
            "overflow_ratio": float(
                (agent_update.overflow.sum() + network_update.overflow.sum())
                / n_slots
            ),
            "overflow_amount": agent_update.overflow_amount
            + network_update.overflow_amount,
        }
        return StepResult(
            observations, self._state(observations), reward, done, info
        )

    def __repr__(self):
        sizes = "-".join(str(len(nodes)) for nodes in self._nodes_by_layer)
        return (
            f"MultiHopOffloadEnv(layers={sizes}, |A|={self.action_space.n}, "
            f"T={self.episode_limit})"
        )
