"""Clipped queue dynamics with under/overflow accounting.

Implements the paper's queue update

    q_{t+1} = clip(q_t - u_t + b_t, 0, q_max)

for a bank of queues at once, while recording exactly the quantities the
reward (Eq. 1) and the Fig. 3 metrics need: the *pre-clip* value
``raw = q_t - u_t + b_t``, whether the queue bottomed out (``raw <= 0``),
whether it overflowed (``raw >= q_max``), and the magnitudes
``q_tilde = |raw|`` and ``q_hat = |q_max - q_tilde|``.

Every kernel accepts an optional leading batch axis: a bank constructed
with ``n_envs=N`` holds ``(N, n_queues)`` levels and updates all ``N``
environment copies in one vectorised call, which is what the lockstep
:mod:`repro.envs.vector` environments build on.  All arithmetic is
elementwise, so a batched update is bit-identical per row to ``N``
independent serial updates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["clip", "QueueUpdate", "QueueBank"]

_EVENT_ATOL = 1e-12


def clip(value, low, high):
    """The paper's clip: ``min(high, max(value, low))`` (vectorised)."""
    return np.minimum(high, np.maximum(np.asarray(value, dtype=np.float64), low))


class QueueUpdate:
    """Full accounting of one queue-bank transition.

    Attributes:
        previous: Queue levels before the update.
        raw: Pre-clip values ``q - u + b``.
        levels: Post-clip queue levels.
        empty: Boolean mask of underflow events (``raw <= 0``).
        overflow: Boolean mask of overflow events (``raw >= q_max``).
        q_tilde: ``|raw|`` — the underflow penalty magnitude of Eq. (1).
        q_hat: ``|q_max - q_tilde|`` — the overflow penalty magnitude.
    """

    __slots__ = (
        "previous",
        "raw",
        "levels",
        "empty",
        "overflow",
        "q_tilde",
        "q_hat",
    )

    def __init__(self, previous, raw, q_max):
        self.previous = previous
        self.raw = raw
        self.levels = clip(raw, 0.0, q_max)
        self.empty = raw <= _EVENT_ATOL
        self.overflow = raw >= q_max - _EVENT_ATOL
        self.q_tilde = np.abs(raw)
        self.q_hat = np.abs(q_max - self.q_tilde)

    @property
    def overflow_excess(self):
        """Elementwise packet mass lost to overflow (same shape as levels)."""
        excess = np.where(self.overflow, self.raw - self.levels, 0.0)
        return np.maximum(excess, 0.0)

    @property
    def overflow_amount(self):
        """Total packet mass lost to overflow this step (summed over all axes)."""
        return float(self.overflow_excess.sum())


class QueueBank:
    """A vector of queues sharing one capacity, optionally batched over envs.

    Args:
        n_queues: Number of queues in the bank.
        capacity: ``q_max`` shared by every queue.
        initial_level: Starting level for :meth:`reset`, either a scalar in
            ``[0, capacity]`` or ``"uniform"`` for random initialisation.
        n_envs: ``None`` for a single environment (levels ``(n_queues,)``) or
            the number of lockstep environment copies (levels
            ``(n_envs, n_queues)``).
    """

    def __init__(self, n_queues, capacity, initial_level=0.5, n_envs=None):
        if n_queues < 1:
            raise ValueError("n_queues must be >= 1")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if n_envs is not None and n_envs < 1:
            raise ValueError("n_envs must be None or >= 1")
        self.n_queues = int(n_queues)
        self.capacity = float(capacity)
        self.n_envs = None if n_envs is None else int(n_envs)
        if not isinstance(initial_level, str):
            initial_level = float(initial_level)
            if not 0.0 <= initial_level <= self.capacity:
                raise ValueError(
                    f"initial level {initial_level} outside [0, {self.capacity}]"
                )
        elif initial_level != "uniform":
            raise ValueError(f"unknown initial level mode {initial_level!r}")
        self.initial_level = initial_level
        self.levels = np.zeros(self.shape)

    @property
    def shape(self):
        """Level-array shape: ``(n_queues,)`` or ``(n_envs, n_queues)``."""
        if self.n_envs is None:
            return (self.n_queues,)
        return (self.n_envs, self.n_queues)

    def reset(self, rng=None):
        """Re-initialise every level; returns the starting level array.

        In batched mode one ``rng`` draws the whole block at once; use
        :meth:`reset_row` when each environment copy must consume its own
        stream (the serial-equivalence contract of the vector envs).
        """
        if isinstance(self.initial_level, str):
            if rng is None:
                raise ValueError("uniform initialisation needs an rng")
            self.levels = rng.uniform(0.0, self.capacity, size=self.shape)
        else:
            self.levels = np.full(self.shape, self.initial_level)
        return self.levels.copy()

    def reset_row(self, row, rng=None):
        """Re-initialise one environment row from its own generator.

        Draws exactly what a serial bank's :meth:`reset` would draw from
        ``rng``, so row ``i`` of a batched bank stays stream-identical to an
        independent serial environment.
        """
        if self.n_envs is None:
            raise ValueError("reset_row needs a batched bank (n_envs set)")
        if isinstance(self.initial_level, str):
            if rng is None:
                raise ValueError("uniform initialisation needs an rng")
            self.levels[row] = rng.uniform(
                0.0, self.capacity, size=self.n_queues
            )
        else:
            self.levels[row] = self.initial_level
        return self.levels[row].copy()

    def step(self, outflow, inflow):
        """Apply one clipped update; returns a :class:`QueueUpdate`.

        Args:
            outflow: ``u_t`` per queue (scalar or array broadcastable to
                the bank's shape).
            inflow: ``b_t`` per queue (scalar or broadcastable array).
        """
        outflow = np.broadcast_to(
            np.asarray(outflow, dtype=np.float64), self.shape
        )
        inflow = np.broadcast_to(
            np.asarray(inflow, dtype=np.float64), self.shape
        )
        if np.any(outflow < 0) or np.any(inflow < 0):
            raise ValueError("outflow and inflow must be non-negative")
        previous = self.levels.copy()
        raw = previous - outflow + inflow
        update = QueueUpdate(previous, raw, self.capacity)
        self.levels = update.levels.copy()
        return update

    def __repr__(self):
        return (
            f"QueueBank(n_queues={self.n_queues}, capacity={self.capacity}, "
            f"n_envs={self.n_envs}, levels={np.round(self.levels, 3)})"
        )
