"""The paper's single-hop packet-offloading environment (Section IV-A).

``K`` clouds and ``N`` edge agents each own a clipped queue.  Every step,
each edge agent picks an action ``(destination cloud, packet amount)`` from
``A = I x P``; the chosen volume leaves its edge queue and arrives at the
chosen cloud queue; clouds transmit a fixed volume onward; fresh packets
arrive at the edges uniformly at random.  The shared team reward (Eq. 1)
penalises cloud-queue underflow (idle cloud) and overflow (lost packets,
weighted by ``w_R``).

MDP (Table I):
    observation  o_n = {q_e_n(t), q_e_n(t-1)} U {q_c_k(t)}_k
    action       u_n in I x P
    state        s = union of all observations
    reward       Eq. (1), always <= 0
"""

from __future__ import annotations

import numpy as np

from repro.config import SingleHopConfig
from repro.envs.arrivals import UniformArrivals
from repro.envs.base import Discrete, FeatureSpace, MultiAgentEnv, StepResult
from repro.envs.queues import QueueBank

__all__ = ["SingleHopOffloadEnv"]


class SingleHopOffloadEnv(MultiAgentEnv):
    """Edge-to-cloud offloading with clipped queues and Eq. (1) reward.

    Args:
        config: Environment parameters (defaults = Table II).
        rng: Generator driving arrivals (and uniform queue initialisation).
        arrivals: Arrival process for edge queues; defaults to the paper's
            ``U(0, w_p * q_max)``.
    """

    def __init__(self, config=None, rng=None, arrivals=None):
        self.config = config if config is not None else SingleHopConfig()
        self.rng = rng if rng is not None else np.random.default_rng()
        cfg = self.config
        self.arrivals = (
            arrivals
            if arrivals is not None
            else UniformArrivals(cfg.w_p, cfg.queue_capacity)
        )

        self.n_agents = cfg.n_agents
        self.n_clouds = cfg.n_clouds
        self.action_space = Discrete(cfg.n_actions)
        self.observation_space = FeatureSpace(
            0.0, cfg.queue_capacity, cfg.observation_size
        )
        self.state_size = cfg.state_size

        self.edge_queues = QueueBank(
            cfg.n_agents, cfg.queue_capacity, cfg.initial_queue_level
        )
        self.cloud_queues = QueueBank(
            cfg.n_clouds, cfg.queue_capacity, cfg.initial_queue_level
        )
        self._prev_edge_levels = None
        self._t = 0

    @property
    def has_data_dependent_termination(self):
        """True when ``terminate_on_overflow`` makes episode length ragged."""
        return self.config.terminate_on_overflow

    # -- action coding --------------------------------------------------------

    def decode_action(self, action):
        """Map an action index to ``(destination_cloud, packet_amount)``."""
        amounts = self.config.packet_amounts
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r}")
        action = int(action)
        return action // len(amounts), amounts[action % len(amounts)]

    def encode_action(self, destination, amount_index):
        """Inverse of :meth:`decode_action` (by amount index)."""
        n_amounts = len(self.config.packet_amounts)
        if not 0 <= destination < self.n_clouds:
            raise ValueError(f"destination {destination} out of range")
        if not 0 <= amount_index < n_amounts:
            raise ValueError(f"amount index {amount_index} out of range")
        return destination * n_amounts + amount_index

    # -- observations ------------------------------------------------------------

    def _observations(self):
        """Per-agent views per Table I, normalised to [0, 1] by q_max."""
        q_max = self.config.queue_capacity
        cloud = self.cloud_queues.levels / q_max
        edge = self.edge_queues.levels / q_max
        prev = self._prev_edge_levels / q_max
        observations = []
        for n in range(self.n_agents):
            observations.append(
                np.concatenate(([edge[n], prev[n]], cloud))
            )
        return observations

    def _state(self, observations):
        """Global state = concatenation of every agent's observation."""
        return np.concatenate(observations)

    # -- environment protocol -----------------------------------------------------

    def reset(self):
        """Start a new episode; returns ``(observations, state)``."""
        self._t = 0
        self.edge_queues.reset(self.rng)
        self.cloud_queues.reset(self.rng)
        self._prev_edge_levels = self.edge_queues.levels.copy()
        observations = self._observations()
        return observations, self._state(observations)

    def step(self, actions):
        """Advance one step given one action index per agent."""
        self.validate_actions(actions)
        cfg = self.config

        destinations = np.empty(self.n_agents, dtype=np.int64)
        scheduled = np.empty(self.n_agents)
        for n, action in enumerate(actions):
            destinations[n], scheduled[n] = self.decode_action(action)

        if cfg.conserve_packets:
            sent = np.minimum(scheduled, self.edge_queues.levels)
        else:
            sent = scheduled

        cloud_inflow = np.zeros(self.n_clouds)
        np.add.at(cloud_inflow, destinations, sent)

        prev_edge_levels = self.edge_queues.levels.copy()
        cloud_update = self.cloud_queues.step(
            outflow=cfg.cloud_service_rate, inflow=cloud_inflow
        )
        edge_update = self.edge_queues.step(
            outflow=scheduled if not cfg.conserve_packets else sent,
            inflow=self.arrivals.sample(self.rng, self.n_agents),
        )
        self._prev_edge_levels = prev_edge_levels

        reward = self._reward(cloud_update)
        self._t += 1
        done = self._t >= cfg.episode_limit
        if cfg.terminate_on_overflow and bool(cloud_update.overflow.any()):
            done = True

        observations = self._observations()
        info = self._info(cloud_update, edge_update, destinations, sent)
        return StepResult(
            observations, self._state(observations), reward, done, info
        )

    def _reward(self, cloud_update):
        """Eq. (1): negative penalties on cloud underflow and overflow."""
        cfg = self.config
        empty_penalty = np.where(cloud_update.empty, cloud_update.q_tilde, 0.0)
        overflow_penalty = np.where(
            cloud_update.overflow, cloud_update.q_hat * cfg.w_r, 0.0
        )
        return -float(np.sum(empty_penalty + overflow_penalty))

    def _info(self, cloud_update, edge_update, destinations, sent):
        """Diagnostics for the Fig. 3 metrics and the Fig. 4 demonstration."""
        all_levels = np.concatenate([edge_update.levels, cloud_update.levels])
        n_slots = self.n_agents + self.n_clouds
        return {
            "t": self._t,
            "cloud_levels": cloud_update.levels.copy(),
            "edge_levels": edge_update.levels.copy(),
            "cloud_empty": cloud_update.empty.copy(),
            "cloud_overflow": cloud_update.overflow.copy(),
            "edge_empty": edge_update.empty.copy(),
            "edge_overflow": edge_update.overflow.copy(),
            "mean_queue": float(all_levels.mean()),
            "empty_ratio": float(
                (cloud_update.empty.sum() + edge_update.empty.sum()) / n_slots
            ),
            "overflow_ratio": float(
                (cloud_update.overflow.sum() + edge_update.overflow.sum())
                / n_slots
            ),
            "overflow_amount": cloud_update.overflow_amount
            + edge_update.overflow_amount,
            "destinations": destinations.copy(),
            "sent": sent.copy(),
        }

    def __repr__(self):
        cfg = self.config
        return (
            f"SingleHopOffloadEnv(K={cfg.n_clouds}, N={cfg.n_agents}, "
            f"|A|={cfg.n_actions}, T={cfg.episode_limit})"
        )
