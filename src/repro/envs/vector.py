"""Vectorized environments: N lockstep copies over stacked numpy state.

The serial environments (:mod:`repro.envs.single_hop`,
:mod:`repro.envs.multi_hop`) step one episode at a time, which leaves the
batched statevector simulator running at batch size ``n_agents`` during data
collection.  A :class:`VectorEnv` instead holds the state of ``N``
environment copies as stacked arrays — queue levels ``(N, n_queues)``,
observations ``(N, n_agents, obs_size)``, global states ``(N, state_size)``
— and advances all copies with one batched kernel call per step.  Combined
with :meth:`repro.marl.actors.ActorGroup.act_batch` this turns each rollout
step into a single ``(N * n_agents)``-row circuit evaluation.

Design contract (pinned by ``tests/test_vector_env.py``):

- **The serial envs are ground truth.**  Each environment copy owns its own
  ``numpy.random.Generator``; arrivals and uniform queue initialisation are
  drawn per copy in the same order a serial env would draw them, and all
  queue arithmetic is elementwise.  Row ``i`` of a ``VectorEnv`` is
  therefore *bit-identical*, step for step, to an independent serial env
  seeded with the same stream.
- **Auto-reset.**  With ``auto_reset=True`` (the default) a copy that
  finishes its episode is immediately re-initialised from its own
  generator; the :class:`VectorStepResult` carries both the terminal
  (``final_observations`` / ``final_states``) and the freshly reset
  (``observations`` / ``states``) views so rollout collectors can store the
  true terminal transition while continuing without a pause.  The terminal
  views are snapshotted *before* the reset runs, so they stay valid even if
  a subclass hands out views into reused stacked buffers.
- **Ragged episodes.**  Termination is per row: :meth:`VectorEnv.step`
  asks the :meth:`VectorEnv._row_done` hook for an ``(N,)`` mask after
  advancing the step counters.  The default is the fixed-horizon check
  (bit-identical to the historical behaviour); subclasses with
  data-dependent termination (e.g. ``terminate_on_overflow``) OR extra
  per-row conditions in and advertise it via
  ``has_data_dependent_termination`` so the rollout engines can switch
  from lockstep to ragged accounting.  Every row keeps stepping every
  round (finished rows restart immediately under auto-reset), which keeps
  the one-batched-call-per-step shape and the per-row RNG streams intact
  regardless of how lengths vary.

Use :func:`make_vector_env` to vectorize an existing serial env: row 0
reuses the serial env's generator (so an ``N=1`` vector rollout consumes
the exact stream the serial rollout would), and rows ``1..N-1`` get
independent child streams spawned from it.
"""

from __future__ import annotations

import numpy as np

from repro.config import SingleHopConfig
from repro.envs.arrivals import UniformArrivals
from repro.envs.multi_hop import MultiHopOffloadEnv
from repro.envs.queues import QueueBank
from repro.envs.single_hop import SingleHopOffloadEnv

__all__ = [
    "VectorStepResult",
    "VectorEnv",
    "SingleHopVectorEnv",
    "MultiHopVectorEnv",
    "make_vector_env",
]


class VectorStepResult:
    """The outcome of one lockstep vector step.

    Attributes:
        observations: ``(N, n_agents, obs_size)`` — the observations to act
            on next (rows finished this step are already reset).
        states: ``(N, state_size)`` global states matching ``observations``.
        rewards: ``(N,)`` shared team rewards.
        dones: ``(N,)`` episode-termination flags.
        mean_queues / empty_ratios / overflow_ratios: ``(N,)`` vectorized
            Fig. 3 stat scalars (the hot-path subset of ``infos``, computed
            without any per-env python work).
        infos: List of ``N`` per-env diagnostic dicts (identical keys and
            values to the serial env's ``StepResult.info``).  Built lazily
            on first access — rollout collection never pays for them.
        final_observations: ``(N, n_agents, obs_size)`` pre-reset terminal
            observations (equal to ``observations`` on rows that did not
            finish).
        final_states: ``(N, state_size)`` pre-reset global states.
    """

    __slots__ = (
        "observations",
        "states",
        "rewards",
        "dones",
        "mean_queues",
        "empty_ratios",
        "overflow_ratios",
        "final_observations",
        "final_states",
        "_infos",
        "_info_builder",
    )

    def __init__(self, observations, states, rewards, dones, stats,
                 info_builder, final_observations, final_states):
        self.observations = observations
        self.states = states
        self.rewards = rewards
        self.dones = dones
        self.mean_queues, self.empty_ratios, self.overflow_ratios = stats
        self.final_observations = final_observations
        self.final_states = final_states
        self._infos = None
        self._info_builder = info_builder

    @property
    def infos(self):
        """Per-env serial-parity info dicts (materialised on demand).

        The builder's inputs are snapshotted at step time (the
        ``_apply_actions`` contract), so reading ``infos`` after further
        ``step()`` / ``reset_rows()`` calls still returns *this* step's
        values.  The builder reference is dropped after the first access so
        the captured per-step arrays can be freed once materialised.
        """
        if self._infos is None:
            builder, self._info_builder = self._info_builder, None
            self._infos = builder()
        return self._infos

    def __iter__(self):
        """Allow ``obs, states, rewards, dones, infos = result`` unpacking."""
        return iter(
            (self.observations, self.states, self.rewards, self.dones,
             self.infos)
        )


class VectorEnv:
    """N lockstep environment copies sharing one configuration.

    Subclasses own the stacked dynamics and implement three hooks:
    ``_reset_rows(rows)`` (re-initialise the given copies, drawing from
    each copy's own generator), ``_apply_actions(actions)`` (advance the
    stacked state one step; returns ``(rewards, stats, info_builder)``
    where ``stats`` is the vectorized ``(mean_queues, empty_ratios,
    overflow_ratios)`` triple and ``info_builder`` lazily materialises the
    serial-parity per-env info dicts — the builder must close over
    *snapshots* taken during the step, never over live stacked state, so
    ``VectorStepResult.infos`` stays correct after later steps or resets)
    and ``_observations()`` (stacked ``(N, n_agents, obs_size)`` views).
    Subclasses with data-dependent termination additionally override
    :meth:`_row_done` (typically OR-ing a mask stashed by
    ``_apply_actions`` into the horizon check) and advertise themselves
    via ``has_data_dependent_termination``.

    Args:
        n_envs: Number of lockstep copies.
        rngs: One ``numpy.random.Generator`` per copy (fresh unseeded
            generators when omitted).
        auto_reset: Re-initialise a copy the moment its episode ends.
    """

    n_agents = 0
    n_actions = 0
    observation_size = 0
    state_size = 0
    episode_limit = 0
    #: Mirrors :attr:`repro.envs.base.MultiAgentEnv.has_data_dependent_termination`.
    has_data_dependent_termination = False

    def __init__(self, n_envs, rngs=None, auto_reset=True):
        if n_envs < 1:
            raise ValueError("n_envs must be >= 1")
        self.n_envs = int(n_envs)
        if rngs is None:
            rngs = [np.random.default_rng() for _ in range(self.n_envs)]
        rngs = list(rngs)
        if len(rngs) != self.n_envs:
            raise ValueError(
                f"need {self.n_envs} generators, got {len(rngs)}"
            )
        self.rngs = rngs
        self.auto_reset = bool(auto_reset)
        self._t = np.zeros(self.n_envs, dtype=np.int64)

    # -- subclass hooks -------------------------------------------------------

    def _reset_rows(self, rows):
        raise NotImplementedError

    def _apply_actions(self, actions):
        raise NotImplementedError

    def _observations(self):
        raise NotImplementedError

    def _states(self, observations):
        """Global state per copy = concatenated agent observations."""
        return observations.reshape(self.n_envs, -1)

    def _row_done(self):
        """``(N,)`` termination mask for the step just applied.

        Called by :meth:`step` after the step counters were advanced.  The
        default is the fixed-horizon check — bit-identical to the
        pre-ragged behaviour for every existing env.  Overrides must return
        a *fresh* boolean array each step (never a view into reused
        storage): the mask outlives the step inside its
        :class:`VectorStepResult`.
        """
        return self._t >= self.episode_limit

    # -- protocol -------------------------------------------------------------

    def reset(self):
        """Re-initialise every copy; returns ``(observations, states)``."""
        return self.reset_rows(np.arange(self.n_envs))

    def reset_rows(self, rows):
        """Re-initialise selected copies; returns full ``(observations, states)``."""
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        self._reset_rows(rows)
        self._t[rows] = 0
        observations = self._observations()
        return observations, self._states(observations)

    def step(self, actions):
        """Advance all copies one step; returns a :class:`VectorStepResult`.

        Args:
            actions: ``(N, n_agents)`` integer action indices.
        """
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (self.n_envs, self.n_agents):
            raise ValueError(
                f"expected actions of shape {(self.n_envs, self.n_agents)}, "
                f"got {actions.shape}"
            )
        if np.any(actions < 0) or np.any(actions >= self.n_actions):
            raise ValueError(
                f"action indices must lie in [0, {self.n_actions})"
            )
        rewards, stats, info_builder = self._apply_actions(actions)
        self._t += 1
        dones = self._row_done()
        observations = self._observations()
        states = self._states(observations)
        final_observations, final_states = observations, states
        if self.auto_reset and dones.any():
            # Snapshot the terminal views before the reset runs: a subclass
            # may hand out views into reused stacked buffers, and the done
            # rows' pre-reset values must survive the re-initialisation.
            final_observations = observations.copy()
            final_states = states.copy()
            observations, states = self.reset_rows(np.flatnonzero(dones))
        return VectorStepResult(
            observations, states, rewards, dones, stats, info_builder,
            final_observations, final_states,
        )


class SingleHopVectorEnv(VectorEnv):
    """N lockstep copies of the paper's single-hop offloading environment.

    Stacked-state mirror of :class:`~repro.envs.single_hop.SingleHopOffloadEnv`
    — same Table I observations, Eq. (1) reward and Fig. 3 ``info``
    accounting, computed for all copies with batched queue kernels.

    Args:
        n_envs: Number of lockstep copies.
        config: Environment parameters (defaults = Table II).
        rngs: One generator per copy (see :class:`VectorEnv`).
        arrivals: Arrival process shared by all copies (stateless; each
            copy samples from its own generator).
        auto_reset: Re-initialise finished copies immediately.
    """

    def __init__(self, n_envs, config=None, rngs=None, arrivals=None,
                 auto_reset=True):
        super().__init__(n_envs, rngs=rngs, auto_reset=auto_reset)
        self.config = config if config is not None else SingleHopConfig()
        cfg = self.config
        self.arrivals = (
            arrivals
            if arrivals is not None
            else UniformArrivals(cfg.w_p, cfg.queue_capacity)
        )
        self.n_agents = cfg.n_agents
        self.n_clouds = cfg.n_clouds
        self.n_actions = cfg.n_actions
        self.observation_size = cfg.observation_size
        self.state_size = cfg.state_size
        self.episode_limit = cfg.episode_limit

        self.edge_queues = QueueBank(
            cfg.n_agents, cfg.queue_capacity, cfg.initial_queue_level,
            n_envs=self.n_envs,
        )
        self.cloud_queues = QueueBank(
            cfg.n_clouds, cfg.queue_capacity, cfg.initial_queue_level,
            n_envs=self.n_envs,
        )
        self._prev_edge_levels = np.zeros((self.n_envs, self.n_agents))
        self._amounts = np.asarray(cfg.packet_amounts, dtype=np.float64)
        self._env_index = np.arange(self.n_envs)
        self._overflow_terminated = None

    @property
    def has_data_dependent_termination(self):
        """True when ``terminate_on_overflow`` makes episode length ragged."""
        return self.config.terminate_on_overflow

    def _row_done(self):
        dones = super()._row_done()
        if self.config.terminate_on_overflow:
            dones |= self._overflow_terminated
        return dones

    def _reset_rows(self, rows):
        # Same draw order as the serial env's reset: edge bank, then clouds.
        for row in rows:
            rng = self.rngs[row]
            self.edge_queues.reset_row(row, rng)
            self.cloud_queues.reset_row(row, rng)
        self._prev_edge_levels[rows] = self.edge_queues.levels[rows]

    def _observations(self):
        q_max = self.config.queue_capacity
        obs = np.empty(
            (self.n_envs, self.n_agents, self.observation_size)
        )
        obs[:, :, 0] = self.edge_queues.levels / q_max
        obs[:, :, 1] = self._prev_edge_levels / q_max
        obs[:, :, 2:] = (self.cloud_queues.levels / q_max)[:, None, :]
        return obs

    def _apply_actions(self, actions):
        cfg = self.config
        n_amounts = len(self._amounts)
        destinations = actions // n_amounts
        scheduled = self._amounts[actions % n_amounts]
        if cfg.conserve_packets:
            sent = np.minimum(scheduled, self.edge_queues.levels)
        else:
            sent = scheduled

        cloud_inflow = np.zeros((self.n_envs, self.n_clouds))
        np.add.at(
            cloud_inflow, (self._env_index[:, None], destinations), sent
        )

        prev_edge_levels = self.edge_queues.levels.copy()
        cloud_update = self.cloud_queues.step(
            outflow=cfg.cloud_service_rate, inflow=cloud_inflow
        )
        edge_update = self.edge_queues.step(
            outflow=scheduled if not cfg.conserve_packets else sent,
            inflow=self.arrivals.sample_batch(self.rngs, self.n_agents),
        )
        self._prev_edge_levels = prev_edge_levels

        empty_penalty = np.where(cloud_update.empty, cloud_update.q_tilde, 0.0)
        overflow_penalty = np.where(
            cloud_update.overflow, cloud_update.q_hat * cfg.w_r, 0.0
        )
        rewards = -np.sum(empty_penalty + overflow_penalty, axis=1)
        if cfg.terminate_on_overflow:
            # Stash for _row_done; .any(axis=1) allocates a fresh mask, so
            # the step result never aliases reused storage.
            self._overflow_terminated = cloud_update.overflow.any(axis=1)

        n_slots = self.n_agents + self.n_clouds
        stats = (
            np.concatenate(
                [edge_update.levels, cloud_update.levels], axis=1
            ).mean(axis=1),
            (cloud_update.empty.sum(axis=1) + edge_update.empty.sum(axis=1))
            / n_slots,
            (cloud_update.overflow.sum(axis=1)
             + edge_update.overflow.sum(axis=1)) / n_slots,
        )
        t_next = self._t + 1
        return rewards, stats, (
            lambda: self._build_infos(
                t_next, cloud_update, edge_update, destinations, sent
            )
        )

    def _build_infos(self, t_next, cloud_update, edge_update, destinations,
                     sent):
        n_slots = self.n_agents + self.n_clouds
        cloud_excess = cloud_update.overflow_excess.sum(axis=1)
        edge_excess = edge_update.overflow_excess.sum(axis=1)
        infos = []
        for i in range(self.n_envs):
            all_levels = np.concatenate(
                [edge_update.levels[i], cloud_update.levels[i]]
            )
            infos.append({
                "t": int(t_next[i]),
                "cloud_levels": cloud_update.levels[i].copy(),
                "edge_levels": edge_update.levels[i].copy(),
                "cloud_empty": cloud_update.empty[i].copy(),
                "cloud_overflow": cloud_update.overflow[i].copy(),
                "edge_empty": edge_update.empty[i].copy(),
                "edge_overflow": edge_update.overflow[i].copy(),
                "mean_queue": float(all_levels.mean()),
                "empty_ratio": float(
                    (cloud_update.empty[i].sum() + edge_update.empty[i].sum())
                    / n_slots
                ),
                "overflow_ratio": float(
                    (cloud_update.overflow[i].sum()
                     + edge_update.overflow[i].sum())
                    / n_slots
                ),
                "overflow_amount": float(cloud_excess[i] + edge_excess[i]),
                "destinations": destinations[i].copy(),
                "sent": sent[i].copy(),
            })
        return infos

    def __repr__(self):
        cfg = self.config
        return (
            f"SingleHopVectorEnv(n_envs={self.n_envs}, K={cfg.n_clouds}, "
            f"N={cfg.n_agents}, |A|={cfg.n_actions}, T={cfg.episode_limit})"
        )


class MultiHopVectorEnv(VectorEnv):
    """N lockstep copies of the layered multi-hop offloading environment.

    Builds one serial :class:`~repro.envs.multi_hop.MultiHopOffloadEnv` as a
    template (reusing its topology validation and node ordering), then runs
    the dynamics over stacked state.  Routing is precomputed into index
    tables so a step is a handful of fancy-indexed array ops; the relay
    forwarding constants are replayed in the serial env's exact edge order
    to keep the floating-point accumulation bit-identical.

    Args:
        n_envs: Number of lockstep copies.
        topology: Layered DAG (see :func:`repro.envs.multi_hop.layered_topology`).
        rngs: One generator per copy.
        auto_reset: Re-initialise finished copies immediately.
        **env_kwargs: Forwarded to :class:`MultiHopOffloadEnv` (packet
            amounts, rates, capacities, episode limit, ...).
    """

    def __init__(self, n_envs, topology, rngs=None, auto_reset=True,
                 **env_kwargs):
        super().__init__(n_envs, rngs=rngs, auto_reset=auto_reset)
        template = MultiHopOffloadEnv(
            topology, rng=np.random.default_rng(0), **env_kwargs
        )
        self._template = template
        self.n_agents = template.n_agents
        self.n_actions = template.action_space.n
        self.observation_size = template.observation_size
        self.state_size = template.state_size
        self.episode_limit = template.episode_limit
        self.arrivals = template.arrivals

        self._amounts = np.asarray(template.packet_amounts, dtype=np.float64)
        self._n_network = len(template._non_agent_nodes)
        self._succ_table = np.array(
            [
                [
                    template._network_index[s]
                    for s in template._successors[node]
                ]
                for node in template.agent_nodes
            ],
            dtype=np.int64,
        )
        # Relay forwarding replayed in the serial env's per-edge order.
        relay_targets, relay_amounts = [], []
        for node in template._non_agent_nodes:
            successors = template._successors[node]
            if successors:
                per_edge = template.service_rate / len(successors)
                for target in successors:
                    relay_targets.append(template._network_index[target])
                    relay_amounts.append(per_edge)
        self._relay_targets = np.asarray(relay_targets, dtype=np.int64)
        self._relay_amounts = np.asarray(relay_amounts, dtype=np.float64)

        initial_level = template._agent_queues.initial_level
        self._agent_queues = QueueBank(
            self.n_agents, template.queue_capacity, initial_level,
            n_envs=self.n_envs,
        )
        self._network_queues = QueueBank(
            self._n_network, template.queue_capacity, initial_level,
            n_envs=self.n_envs,
        )
        self._prev_agent_levels = np.zeros((self.n_envs, self.n_agents))
        self._env_index = np.arange(self.n_envs)
        self._agent_index = np.arange(self.n_agents)
        self._overflow_terminated = None

    @property
    def has_data_dependent_termination(self):
        """True when the template env terminates on network overflow."""
        return self._template.terminate_on_overflow

    def _row_done(self):
        dones = super()._row_done()
        if self._template.terminate_on_overflow:
            dones |= self._overflow_terminated
        return dones

    def _reset_rows(self, rows):
        # Same draw order as the serial env: agent bank, then network bank.
        for row in rows:
            rng = self.rngs[row]
            self._agent_queues.reset_row(row, rng)
            self._network_queues.reset_row(row, rng)
        self._prev_agent_levels[rows] = self._agent_queues.levels[rows]

    def _observations(self):
        q_max = self._template.queue_capacity
        obs = np.empty(
            (self.n_envs, self.n_agents, self.observation_size)
        )
        obs[:, :, 0] = self._agent_queues.levels / q_max
        obs[:, :, 1] = self._prev_agent_levels / q_max
        obs[:, :, 2:] = (
            self._network_queues.levels[:, self._succ_table] / q_max
        )
        return obs

    def _apply_actions(self, actions):
        template = self._template
        n_amounts = len(self._amounts)
        successor_index = actions // n_amounts
        scheduled = self._amounts[actions % n_amounts]
        targets = self._succ_table[self._agent_index, successor_index]

        # Match the serial accumulation order exactly: agent contributions
        # first (agent-major), then the relay constants edge by edge.
        inflow = np.zeros((self.n_envs, self._n_network))
        np.add.at(inflow, (self._env_index[:, None], targets), scheduled)
        np.add.at(
            inflow,
            (
                self._env_index[:, None],
                np.broadcast_to(
                    self._relay_targets,
                    (self.n_envs, self._relay_targets.size),
                ),
            ),
            self._relay_amounts,
        )

        prev_agent_levels = self._agent_queues.levels.copy()
        network_update = self._network_queues.step(
            outflow=template.service_rate, inflow=inflow
        )
        agent_update = self._agent_queues.step(
            outflow=scheduled,
            inflow=self.arrivals.sample_batch(self.rngs, self.n_agents),
        )
        self._prev_agent_levels = prev_agent_levels

        empty_penalty = np.where(
            network_update.empty, network_update.q_tilde, 0.0
        )
        overflow_penalty = np.where(
            network_update.overflow, network_update.q_hat * template.w_r, 0.0
        )
        rewards = -np.sum(empty_penalty + overflow_penalty, axis=1)
        if template.terminate_on_overflow:
            self._overflow_terminated = network_update.overflow.any(axis=1)

        n_slots = self.n_agents + self._n_network
        stats = (
            np.concatenate(
                [agent_update.levels, network_update.levels], axis=1
            ).mean(axis=1),
            (agent_update.empty.sum(axis=1) + network_update.empty.sum(axis=1))
            / n_slots,
            (agent_update.overflow.sum(axis=1)
             + network_update.overflow.sum(axis=1)) / n_slots,
        )
        t_next = self._t + 1
        return rewards, stats, (
            lambda: self._build_infos(t_next, agent_update, network_update)
        )

    def _build_infos(self, t_next, agent_update, network_update):
        n_slots = self.n_agents + self._n_network
        agent_excess = agent_update.overflow_excess.sum(axis=1)
        network_excess = network_update.overflow_excess.sum(axis=1)
        infos = []
        for i in range(self.n_envs):
            all_levels = np.concatenate(
                [agent_update.levels[i], network_update.levels[i]]
            )
            infos.append({
                "t": int(t_next[i]),
                "agent_levels": agent_update.levels[i].copy(),
                "network_levels": network_update.levels[i].copy(),
                "mean_queue": float(all_levels.mean()),
                "empty_ratio": float(
                    (agent_update.empty[i].sum()
                     + network_update.empty[i].sum()) / n_slots
                ),
                "overflow_ratio": float(
                    (agent_update.overflow[i].sum()
                     + network_update.overflow[i].sum()) / n_slots
                ),
                "overflow_amount": float(agent_excess[i] + network_excess[i]),
            })
        return infos

    def __repr__(self):
        return (
            f"MultiHopVectorEnv(n_envs={self.n_envs}, "
            f"template={self._template!r})"
        )


def _spawn_row_rngs(env_rng, n_envs):
    """Row generators: row 0 shares the serial env's stream, rows 1.. spawn.

    Sharing the serial generator on row 0 makes an ``N=1`` vector rollout
    consume exactly the stream a serial rollout would — the property the
    trainer's serial/vectorized determinism test pins down.
    """
    rngs = [env_rng]
    if n_envs > 1:
        rngs.extend(env_rng.spawn(n_envs - 1))
    return rngs


def make_vector_env(env, n_envs, rngs=None, auto_reset=True):
    """Vectorize a serial environment into ``n_envs`` lockstep copies.

    Args:
        env: A :class:`SingleHopOffloadEnv` or :class:`MultiHopOffloadEnv`
            whose configuration (and arrival process) the copies share.
        n_envs: Number of lockstep copies.
        rngs: Optional per-copy generators.  By default row 0 reuses
            ``env.rng`` (stepping the vector env advances the serial env's
            stream — deliberate, see :func:`_spawn_row_rngs`) and the rest
            are independent children spawned from it.
        auto_reset: Re-initialise finished copies immediately.
    """
    if not isinstance(env, (SingleHopOffloadEnv, MultiHopOffloadEnv)):
        raise TypeError(
            f"cannot vectorize environment of type {type(env).__name__}"
        )
    if rngs is None:
        rngs = _spawn_row_rngs(env.rng, n_envs)
    if isinstance(env, SingleHopOffloadEnv):
        return SingleHopVectorEnv(
            n_envs,
            config=env.config,
            rngs=rngs,
            arrivals=env.arrivals,
            auto_reset=auto_reset,
        )
    return MultiHopVectorEnv(
        n_envs,
        env.topology,
        rngs=rngs,
        auto_reset=auto_reset,
        packet_amounts=env.packet_amounts,
        w_p=env.w_p,
        w_r=env.w_r,
        service_rate=env.service_rate,
        queue_capacity=env.queue_capacity,
        episode_limit=env.episode_limit,
        initial_queue_level=env._agent_queues.initial_level,
        terminate_on_overflow=env.terminate_on_overflow,
    )
