"""Environment wrappers: episode statistics and reward shaping hooks."""

from __future__ import annotations

import numpy as np

from repro.envs.base import MultiAgentEnv, StepResult

__all__ = ["Wrapper", "EpisodeStatsWrapper", "RewardScaleWrapper"]


class Wrapper(MultiAgentEnv):
    """Transparent pass-through base for environment wrappers."""

    def __init__(self, env):
        self.env = env
        self.n_agents = env.n_agents
        self.observation_space = env.observation_space
        self.action_space = env.action_space
        self.state_size = env.state_size

    def reset(self):
        """Delegate to the wrapped environment."""
        return self.env.reset()

    def step(self, actions):
        """Delegate to the wrapped environment."""
        return self.env.step(actions)

    def __getattr__(self, name):
        return getattr(self.env, name)

    def __repr__(self):
        return f"{type(self).__name__}({self.env!r})"


class EpisodeStatsWrapper(Wrapper):
    """Accumulates per-episode totals of the Fig. 3 metrics.

    After each completed episode, a summary dict is appended to
    ``episode_summaries``: total reward, episode length, and time-averaged
    queue level / empty ratio / overflow ratio.
    """

    def __init__(self, env):
        super().__init__(env)
        self.episode_summaries = []
        self._reset_accumulators()

    def _reset_accumulators(self):
        self._reward_total = 0.0
        self._steps = 0
        self._queue_sum = 0.0
        self._empty_sum = 0.0
        self._overflow_sum = 0.0

    def reset(self):
        """Reset env and accumulators."""
        self._reset_accumulators()
        return self.env.reset()

    def step(self, actions):
        """Step and accumulate; finalises a summary at episode end."""
        result = self.env.step(actions)
        self._reward_total += result.reward
        self._steps += 1
        self._queue_sum += result.info["mean_queue"]
        self._empty_sum += result.info["empty_ratio"]
        self._overflow_sum += result.info["overflow_ratio"]
        if result.done:
            steps = max(self._steps, 1)
            self.episode_summaries.append(
                {
                    "total_reward": self._reward_total,
                    "length": self._steps,
                    "mean_queue": self._queue_sum / steps,
                    "empty_ratio": self._empty_sum / steps,
                    "overflow_ratio": self._overflow_sum / steps,
                }
            )
        return result

    def last_summary(self):
        """The most recent completed episode's summary (or ``None``)."""
        return self.episode_summaries[-1] if self.episode_summaries else None


class RewardScaleWrapper(Wrapper):
    """Multiplies rewards by a constant (ablation aid; paper uses 1.0)."""

    def __init__(self, env, scale):
        super().__init__(env)
        self.scale = float(scale)

    def step(self, actions):
        """Step with the reward scaled."""
        result = self.env.step(actions)
        return StepResult(
            result.observations,
            result.state,
            result.reward * self.scale,
            result.done,
            result.info,
        )
