"""Experiment harness: runners for every paper table/figure + ablations."""

from repro.experiments.fig3 import FIG3_METRICS, format_fig3_report, run_fig3
from repro.experiments.fig4 import format_fig4_report, run_fig4
from repro.experiments.io import load_json, results_dir, save_csv, save_json
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.section4d import (
    PAPER_REFERENCE,
    format_section4d_report,
    run_section4d,
)

__all__ = [
    "FIG3_METRICS",
    "run_fig3",
    "format_fig3_report",
    "run_fig4",
    "format_fig4_report",
    "run_section4d",
    "format_section4d_report",
    "PAPER_REFERENCE",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "save_json",
    "load_json",
    "save_csv",
    "results_dir",
]
