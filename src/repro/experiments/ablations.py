"""Ablation studies backing the paper's design choices.

- ``encoding_attenuation`` — the NISQ-scalability motivation (Section I):
  a critic whose qubit count grows with the number of agents loses output
  signal under per-gate noise faster than the paper's compact multi-layer
  encoding at matched feature count and gate budget.
- ``gradient_methods`` — adjoint vs parameter-shift vs finite differences:
  numerical agreement and wall-clock cost.
- ``noise_robustness`` — a noiselessly-trained Proposed policy evaluated
  under increasing depolarising gate error (the paper's future-work axis).
- ``shot_budget`` — the same policy under finite measurement shots.
- ``parameter_budget`` — final reward vs trainable-parameter budget for
  quantum and classical actors (the paper's central constraint).
- ``template_comparison`` — the paper's random ansatz vs structured
  entangler templates at the same weight budget.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
from repro.marl.frameworks import build_framework, evaluate_random_walk
from repro.marl.trainer import rollout_episode
from repro.quantum.backends import DensityMatrixBackend, StatevectorBackend
from repro.quantum.channels import NoiseModel
from repro.quantum.gradients import backward
from repro.quantum.vqc import build_vqc

__all__ = [
    "run_encoding_attenuation",
    "run_gradient_methods",
    "run_noise_robustness",
    "run_shot_budget",
    "run_parameter_budget",
    "run_template_comparison",
    "run_barren_plateau",
]


# ---------------------------------------------------------------------------
# ABL-ENC: compact multi-layer encoding vs naive one-qubit-per-feature
# ---------------------------------------------------------------------------


def run_encoding_attenuation(
    n_features=8,
    n_weights=30,
    noise_levels=(0.0, 0.002, 0.005, 0.01, 0.02, 0.05),
    n_states=24,
    seed=5,
):
    """Output-signal attenuation under gate noise, compact vs naive encoding.

    Both circuits consume the same ``n_features`` (the joint state of a
    2-agent system by default) with the same variational gate budget; the
    compact circuit folds features onto ``n_features // 2`` qubits via the
    paper's multi-layer encoder, the naive circuit uses one qubit per
    feature (the qubit count that grows with the number of agents).

    Signal is the standard deviation of the first observable across random
    input states — when noise wipes it out, the critic can no longer
    distinguish states and training stalls, which is precisely the paper's
    argument for compact state encoding.
    """
    rng = np.random.default_rng(seed)
    compact_qubits = max(2, n_features // 2)
    arms = {
        "compact": build_vqc(
            compact_qubits, n_features, n_weights, seed=seed
        ),
        "naive": build_vqc(n_features, n_features, n_weights, seed=seed),
    }
    states = rng.uniform(0.0, 1.0, size=(n_states, n_features))
    weights = {name: vqc.initial_weights(rng) for name, vqc in arms.items()}

    signal = {name: [] for name in arms}
    for level in noise_levels:
        for name, vqc in arms.items():
            if level == 0.0:
                backend = StatevectorBackend()
            else:
                backend = DensityMatrixBackend(NoiseModel(level))
            outputs = vqc.run(backend, states, weights[name])
            signal[name].append(float(outputs[:, 0].std()))

    return {
        "experiment": "ablation_encoding_attenuation",
        "n_features": n_features,
        "qubits": {"compact": compact_qubits, "naive": n_features},
        "n_weights": n_weights,
        "noise_levels": list(noise_levels),
        "signal_std": signal,
        "relative_signal": {
            name: [v / max(values[0], 1e-12) for v in values]
            for name, values in signal.items()
        },
    }


# ---------------------------------------------------------------------------
# ABL-GRAD: differentiation methods
# ---------------------------------------------------------------------------


def run_gradient_methods(n_qubits=4, n_features=16, n_weights=50, batch=16,
                         seed=3, repeats=3):
    """Agreement and timing of the three gradient methods on one circuit."""
    rng = np.random.default_rng(seed)
    vqc = build_vqc(n_qubits, n_features, n_weights, seed=seed)
    inputs = rng.uniform(0.0, 1.0, size=(batch, n_features))
    weights = vqc.initial_weights(rng)
    upstream = rng.normal(size=(batch, vqc.n_outputs))

    grads = {}
    timings = {}
    for method in ("adjoint", "parameter_shift", "finite_diff"):
        start = time.perf_counter()
        for _ in range(repeats):
            gi, gw = backward(
                vqc.circuit, vqc.observables, inputs, weights, upstream,
                method=method,
            )
        timings[method] = (time.perf_counter() - start) / repeats
        grads[method] = (gi, gw)

    reference = grads["adjoint"][1]
    deviations = {
        method: float(np.max(np.abs(grads[method][1] - reference)))
        for method in grads
    }
    return {
        "experiment": "ablation_gradient_methods",
        "n_weights": n_weights,
        "batch": batch,
        "seconds_per_backward": timings,
        "max_weight_grad_deviation_vs_adjoint": deviations,
        "speedup_adjoint_over_shift": timings["parameter_shift"]
        / max(timings["adjoint"], 1e-12),
    }


# ---------------------------------------------------------------------------
# ABL-NOISE / ABL-SHOTS: robustness of a trained policy
# ---------------------------------------------------------------------------


def _train_proposed(train_epochs, episode_limit, seed):
    framework = build_framework(
        "proposed",
        seed=seed,
        env_config=SingleHopConfig(episode_limit=episode_limit),
        vqc_config=VQCConfig(critic_value_scale=10.0),
        train_config=TrainingConfig(
            n_epochs=train_epochs,
            episodes_per_epoch=4,
            gamma=0.95,
            actor_lr=2e-3,
            critic_lr=1e-3,
            entropy_coef=0.01,
        ),
    )
    framework.train(n_epochs=train_epochs)
    return framework


def _evaluate_with_backend(framework, backend_factory, n_episodes, seed):
    """Evaluate the trained actors with a swapped-in execution backend."""
    from repro.marl.actors import QuantumActorGroup

    rebuilt = [
        actor.with_backend(backend_factory())
        for actor in framework.actors.actors
    ]
    group = QuantumActorGroup(rebuilt)
    rng = np.random.default_rng(seed)
    rewards = []
    for _ in range(n_episodes):
        _, stats = rollout_episode(framework.env, group, rng, greedy=True)
        rewards.append(stats["total_reward"])
    return float(np.mean(rewards))


def run_noise_robustness(
    noise_levels=(0.0, 0.005, 0.01, 0.02, 0.05, 0.1),
    train_epochs=40,
    episode_limit=30,
    n_episodes=6,
    seed=13,
    framework=None,
):
    """Evaluate a noiselessly-trained Proposed policy under gate noise."""
    if framework is None:
        framework = _train_proposed(train_epochs, episode_limit, seed)
    rewards = []
    for level in noise_levels:
        if level == 0.0:
            factory = StatevectorBackend
        else:
            def factory(_level=level):
                return DensityMatrixBackend(NoiseModel(_level))
        rewards.append(
            _evaluate_with_backend(framework, factory, n_episodes, seed + 1)
        )
    return {
        "experiment": "ablation_noise_robustness",
        "noise_levels": list(noise_levels),
        "greedy_rewards": rewards,
        "train_epochs": train_epochs,
    }


def run_shot_budget(
    shot_counts=(8, 32, 128, 512, None),
    train_epochs=40,
    episode_limit=30,
    n_episodes=6,
    seed=13,
    framework=None,
):
    """Evaluate the trained policy with finite measurement shots.

    ``None`` denotes exact expectations (infinite shots).
    """
    if framework is None:
        framework = _train_proposed(train_epochs, episode_limit, seed)
    rewards = []
    for shots in shot_counts:
        def factory(_shots=shots):
            return StatevectorBackend(
                shots=_shots, rng=np.random.default_rng(seed + 23)
            )
        rewards.append(
            _evaluate_with_backend(framework, factory, n_episodes, seed + 1)
        )
    return {
        "experiment": "ablation_shot_budget",
        "shot_counts": [s if s is not None else "exact" for s in shot_counts],
        "greedy_rewards": rewards,
        "train_epochs": train_epochs,
    }


# ---------------------------------------------------------------------------
# ABL-BUDGET: reward vs parameter budget
# ---------------------------------------------------------------------------


def run_parameter_budget(
    budgets=(10, 25, 50, 100),
    train_epochs=30,
    episode_limit=25,
    seed=17,
):
    """Final reward vs trainable-gate budget for the quantum framework."""
    env_config = SingleHopConfig(episode_limit=episode_limit)
    random_walk = evaluate_random_walk(
        seed=seed + 1, env_config=env_config, n_episodes=20
    )
    rewards = []
    for budget in budgets:
        framework = build_framework(
            "proposed",
            seed=seed,
            env_config=env_config,
            vqc_config=VQCConfig(
                n_variational_gates=budget, critic_value_scale=10.0
            ),
            train_config=TrainingConfig(
                n_epochs=train_epochs,
                episodes_per_epoch=4,
                gamma=0.95,
                actor_lr=2e-3,
                critic_lr=1e-3,
                entropy_coef=0.01,
            ),
        )
        history = framework.train(n_epochs=train_epochs)
        window = max(1, train_epochs // 5)
        rewards.append(float(history.last("total_reward", window=window)))
    return {
        "experiment": "ablation_parameter_budget",
        "budgets": list(budgets),
        "final_rewards": rewards,
        "random_walk_return": random_walk,
        "train_epochs": train_epochs,
    }


# ---------------------------------------------------------------------------
# ABL-TEMPLATE: ansatz families
# ---------------------------------------------------------------------------


def run_template_comparison(
    templates=("random", "basic_entangler", "strongly_entangling"),
    train_epochs=30,
    episode_limit=25,
    seed=19,
):
    """Final reward per ansatz family at the same ~50-weight budget."""
    env_config = SingleHopConfig(episode_limit=episode_limit)
    rewards = {}
    weights_used = {}
    for template in templates:
        framework = build_framework(
            "proposed",
            seed=seed,
            env_config=env_config,
            vqc_config=VQCConfig(
                template=template, critic_value_scale=10.0
            ),
            train_config=TrainingConfig(
                n_epochs=train_epochs,
                episodes_per_epoch=4,
                gamma=0.95,
                actor_lr=2e-3,
                critic_lr=1e-3,
                entropy_coef=0.01,
            ),
        )
        history = framework.train(n_epochs=train_epochs)
        window = max(1, train_epochs // 5)
        rewards[template] = float(history.last("total_reward", window=window))
        weights_used[template] = framework.metadata["actor_parameters"]
    return {
        "experiment": "ablation_template_comparison",
        "templates": list(templates),
        "final_rewards": rewards,
        "actor_parameters": weights_used,
        "train_epochs": train_epochs,
    }


# ---------------------------------------------------------------------------
# ABL-PLATEAU: gradient variance vs register width (trainability)
# ---------------------------------------------------------------------------


def run_barren_plateau(
    qubit_counts=(2, 4, 6, 8),
    n_gates=40,
    n_samples=24,
    seed=23,
):
    """Gradient variance of random circuits as the register widens.

    Barren plateaus (McClean et al. 2018): for random parameterised
    circuits, the variance of any single parameter's gradient decays
    exponentially with qubit count, making wide registers untrainable.
    Together with gate-error accumulation (ABL-ENC) this is the paper's
    second reason to keep the critic on a *fixed, small* register and
    compress the joint state into it rather than widening with the number
    of agents.

    For each register width, ``n_samples`` random weight draws of a fixed
    random ansatz are differentiated (adjoint) with respect to the first
    variational angle, measuring ``Var[dE/dw_0]`` of ``E = <Z_0>``.
    """
    from repro.quantum.gradients import adjoint_backward
    from repro.quantum.observables import PauliString

    rng = np.random.default_rng(seed)
    variances = []
    mean_abs = []
    for n_qubits in qubit_counts:
        vqc = build_vqc(
            n_qubits,
            n_qubits,
            n_gates,
            seed=seed + n_qubits,
            observables=[PauliString.z(0)],
        )
        inputs = rng.uniform(0.0, 1.0, size=(1, n_qubits))
        grads = []
        for _ in range(n_samples):
            weights = rng.uniform(0.0, 2.0 * np.pi, size=vqc.n_weights)
            _, gw = adjoint_backward(
                vqc.circuit, vqc.observables, inputs, weights,
                np.ones((1, 1)),
            )
            grads.append(gw[0])
        grads = np.asarray(grads)
        variances.append(float(grads.var()))
        mean_abs.append(float(np.abs(grads).mean()))
    return {
        "experiment": "ablation_barren_plateau",
        "qubit_counts": list(qubit_counts),
        "n_gates": n_gates,
        "n_samples": n_samples,
        "gradient_variance": variances,
        "gradient_mean_abs": mean_abs,
    }
