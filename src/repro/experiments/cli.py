"""Command-line entry point: ``repro-experiment <id> [options]``.

Examples::

    repro-experiment list
    repro-experiment fig3 --preset quick --seed 7 --out results/
    repro-experiment fig4 --ansi
    repro-experiment ablation-noise
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import io as _io
from repro.experiments.fig3 import format_fig3_report
from repro.experiments.fig4 import format_fig4_report
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.section4d import format_section4d_report

__all__ = ["main", "build_parser"]

_FORMATTERS = {
    "fig3": format_fig3_report,
    "fig4": format_fig4_report,
    "section4d": format_section4d_report,
}


def build_parser():
    """The argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce tables/figures of the QMARL paper (ICDCS 2022)",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, or 'list' to enumerate available experiments",
    )
    parser.add_argument("--preset", default=None, help="fig3/section4d preset")
    parser.add_argument("--seed", type=int, default=None, help="root seed")
    parser.add_argument(
        "--out", default=None, help="directory to write the JSON result into"
    )
    parser.add_argument(
        "--ansi", action="store_true", help="colour output for fig4"
    )
    return parser


def _experiment_kwargs(args):
    kwargs = {}
    if args.preset is not None:
        kwargs["preset"] = args.preset
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return kwargs


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        for experiment_id, spec in sorted(EXPERIMENTS.items()):
            print(f"{experiment_id:<22} {spec.paper_ref:<38} {spec.description}")
        return 0

    try:
        spec = get_experiment(args.experiment)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2

    result = spec.run(**_experiment_kwargs(args))

    formatter = _FORMATTERS.get(args.experiment)
    if formatter is not None:
        if args.experiment == "fig4":
            print(formatter(result, ansi=args.ansi))
        else:
            print(formatter(result))
    else:
        import json

        print(json.dumps(_io._sanitise(result), indent=2))

    if args.out is not None:
        path = os.path.join(
            _io.results_dir(args.out),
            f"{args.experiment.replace('-', '_')}_{_io.timestamp()}.json",
        )
        _io.save_json(result, path)
        print(f"\nresult written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
