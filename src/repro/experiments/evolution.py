"""Evolutionary-strategies training experiment: gradient-free vs gradient.

Trains the proposed quantum framework with the ES engine
(:class:`~repro.marl.evolution.ESTrainer`) — the extension motivated by the
quantum-MARL ES line (Kölle et al. 2023, "Multi-Agent Quantum Reinforcement
Learning using Evolutionary Optimization"; Kölle et al. 2024 on
architectural influence under ES), which found population search matches or
beats analytic gradients on VQC multi-agent policies while sidestepping
barren plateaus.  Optionally trains the gradient (MAPG) arm under a matched
episode budget for a side-by-side curve.

Registered as ``es-train`` in the experiment registry.
"""

from __future__ import annotations

from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
from repro.marl.frameworks import build_framework, evaluate_random_walk
from repro.marl.metrics import achievability

__all__ = ["PRESETS", "preset_settings", "run_es_training"]

ES_METRICS = ("total_reward", "fitness_mean", "fitness_max", "grad_norm")

# ES hyper-parameters roughly follow the Kölle et al. small-population
# regime scaled to this environment; the MAPG reference arm reuses the
# fig3 calibration.
_ES_KW = {
    "es_population": 8,
    "es_sigma": 0.15,
    "es_lr": 0.12,
    "es_weight_decay": 0.0,
}
_MAPG_KW = {
    "actor_lr": 2e-3,
    "critic_lr": 1e-3,
    "entropy_coef": 0.01,
}

PRESETS = {
    # name: (generations, episode_limit, episodes per member per generation)
    "smoke": (4, 10, 1),
    "quick": (30, 25, 2),
    "medium": (120, 40, 4),
    "full": (400, 50, 4),
}


def preset_settings(preset):
    """Resolve a preset to ``(generations, env_config, train_config)``."""
    if preset not in PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
        )
    generations, episode_limit, episodes = PRESETS[preset]
    env_config = SingleHopConfig(episode_limit=episode_limit)
    train_config = TrainingConfig(
        trainer="es",
        n_epochs=generations,
        episodes_per_epoch=episodes,
        **_ES_KW,
    )
    return generations, env_config, train_config


def run_es_training(preset="quick", seed=11, framework="proposed",
                    compare_mapg=False, rollout_workers=1, callback=None):
    """Train a framework with ES; returns the result document.

    Args:
        preset: One of :data:`PRESETS`.
        seed: Root seed.
        framework: Which arm to train (any trainable framework; the
            quantum arms exercise the stacked per-sample-weight circuit
            path, the classical arms the per-member loop).
        compare_mapg: Also train the gradient engine for the same number
            of epochs and episode budget, for a side-by-side series.
        rollout_workers: Shard the population across worker processes
            (1 = in-process stacked evaluation).
        callback: Optional ``fn(engine_name, epoch_record)`` hook.

    Returns:
        A dict with the ES generation series (mean/max fitness, returns,
        gradient norms), greedy evaluation, achievability vs the random
        walk, and — with ``compare_mapg`` — the gradient arm's series.
    """
    generations, env_config, train_config = preset_settings(preset)
    random_walk = evaluate_random_walk(
        seed=seed + 1000, env_config=env_config, n_episodes=20
    )

    def train_engine(engine_config, label):
        fw = build_framework(
            framework,
            seed=seed,
            env_config=env_config,
            train_config=engine_config,
            rollout_workers=rollout_workers,
        )
        with fw:
            hook = (
                (lambda rec, _l=label: callback(_l, rec)) if callback else None
            )
            history = fw.train(n_epochs=generations, callback=hook)
            series = {
                m: history.series(m).tolist()
                for m in ES_METRICS
                if m in history.records[0]
            }
            evaluation = fw.evaluate(n_episodes=8)
        return fw, series, evaluation

    es_framework, es_series, es_eval = train_engine(train_config, "es")
    document = {
        "experiment": "es-train",
        "preset": preset,
        "seed": seed,
        "framework": framework,
        "generations": generations,
        "population": train_config.effective_es_population,
        "sigma": train_config.effective_es_sigma,
        "lr": train_config.effective_es_lr,
        "episode_limit": env_config.episode_limit,
        "random_walk_return": random_walk,
        "series": {"es": es_series},
        "evaluation": {"es": es_eval},
        "achievability": {
            "es": achievability(es_eval["total_reward"], random_walk)
        },
        "parameters": es_framework.metadata,
    }
    if compare_mapg:
        mapg_config = TrainingConfig(
            n_epochs=generations,
            episodes_per_epoch=(
                train_config.episodes_per_epoch
                * train_config.effective_es_population
            ),
            **_MAPG_KW,
        )
        _, mapg_series, mapg_eval = train_engine(mapg_config, "mapg")
        document["series"]["mapg"] = mapg_series
        document["evaluation"]["mapg"] = mapg_eval
        document["achievability"]["mapg"] = achievability(
            mapg_eval["total_reward"], random_walk
        )
    return document
