"""Figure 3: training curves of the four frameworks on four metrics.

Reproduces the evaluation of Section IV-D — total reward (a), average
queue (b), queue-empty ratio (c) and queue-overflow ratio (d) as a function
of training epoch — for Proposed, Comp1, Comp2 and Comp3, plus the
random-walk reference used for achievability normalisation.

Scaled presets keep benchmark runtime sane; the ``full`` preset mirrors the
paper's 1000-epoch runs.
"""

from __future__ import annotations

import numpy as np

from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
from repro.marl.frameworks import build_framework, evaluate_random_walk
from repro.marl.metrics import achievability

__all__ = ["FIG3_METRICS", "PRESETS", "preset_settings", "run_fig3"]

FIG3_METRICS = ("total_reward", "mean_queue", "empty_ratio", "overflow_ratio")

# Calibrated training settings (the paper leaves gamma / batch / episode
# length unspecified; DESIGN.md section 2 documents these choices).
_TRAIN_KW = {
    "episodes_per_epoch": 4,
    "gamma": 0.95,
    "actor_lr": 2e-3,
    "critic_lr": 1e-3,
    "target_update_period": 10,
    "entropy_coef": 0.01,
}
_VQC_KW = {"critic_value_scale": 10.0}

PRESETS = {
    # name: (n_epochs, episode_limit, random-walk episodes)
    "smoke": (8, 15, 10),
    "quick": (60, 30, 30),
    "medium": (150, 50, 50),
    "full": (400, 50, 100),
}


def preset_settings(preset):
    """Resolve a preset name to ``(n_epochs, env_config, train_config, vqc_config)``."""
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(PRESETS)}")
    n_epochs, episode_limit, rw_episodes = PRESETS[preset]
    env_config = SingleHopConfig(episode_limit=episode_limit)
    train_config = TrainingConfig(n_epochs=n_epochs, **_TRAIN_KW)
    vqc_config = VQCConfig(**_VQC_KW)
    return n_epochs, env_config, train_config, vqc_config, rw_episodes


def run_fig3(preset="quick", seed=7, frameworks=("proposed", "comp1", "comp2", "comp3"),
             callback=None, rollout_envs=1):
    """Train every framework and collect the Fig. 3 series.

    Args:
        preset: One of :data:`PRESETS` (or pass explicit configs via
            :func:`run_fig3_custom`).
        seed: Root seed shared across frameworks (each also derives
            framework-specific child seeds via its name).
        frameworks: Which arms to run.
        callback: Optional ``fn(framework_name, epoch_record)`` progress hook.
        rollout_envs: Lockstep env copies for vectorized episode collection
            (1 = the serial reference path; >1 trades the serial RNG stream
            layout for wall-clock via batched rollouts — per-seed curves
            differ but the statistics reproduce the same figure).

    Returns:
        A result document (dict) with per-framework series for every metric,
        final (last-20-epoch) summaries, the random-walk reference and
        achievability scores — the full content of Fig. 3 plus the
        Section IV-D(1) numbers.
    """
    n_epochs, env_config, train_config, vqc_config, rw_episodes = preset_settings(
        preset
    )
    random_walk = evaluate_random_walk(
        seed=seed + 1000, env_config=env_config, n_episodes=rw_episodes
    )

    series = {}
    summaries = {}
    parameters = {}
    window = max(1, min(20, n_epochs // 5))
    for name in frameworks:
        framework = build_framework(
            name,
            seed=seed,
            env_config=env_config,
            vqc_config=vqc_config,
            train_config=train_config,
            rollout_envs=rollout_envs,
        )
        hook = (lambda rec, _n=name: callback(_n, rec)) if callback else None
        history = framework.train(n_epochs=n_epochs, callback=hook)
        series[name] = {m: history.series(m).tolist() for m in FIG3_METRICS}
        summaries[name] = {
            m: float(history.last(m, window=window)) for m in FIG3_METRICS
        }
        summaries[name]["achievability"] = achievability(
            summaries[name]["total_reward"], random_walk
        )
        parameters[name] = framework.metadata

    return {
        "experiment": "fig3",
        "preset": preset,
        "seed": seed,
        "n_epochs": n_epochs,
        "episode_limit": env_config.episode_limit,
        "random_walk_return": random_walk,
        "series": series,
        "summaries": summaries,
        "parameters": parameters,
    }


def format_fig3_report(result):
    """Human-readable summary table of a :func:`run_fig3` result."""
    lines = [
        f"Fig. 3 reproduction — preset={result['preset']}, "
        f"epochs={result['n_epochs']}, T={result['episode_limit']}",
        f"random-walk reference return: {result['random_walk_return']:.2f}",
        "",
        f"{'framework':<10} {'reward':>9} {'achiev.':>8} {'queue':>7} "
        f"{'empty':>7} {'overflow':>9} {'params':>8}",
    ]
    for name, summary in result["summaries"].items():
        params = result["parameters"][name]["total_parameters"]
        lines.append(
            f"{name:<10} {summary['total_reward']:>9.2f} "
            f"{summary['achievability']:>7.1%} {summary['mean_queue']:>7.3f} "
            f"{summary['empty_ratio']:>7.3f} {summary['overflow_ratio']:>9.3f} "
            f"{params:>8d}"
        )
    return "\n".join(lines)
