"""Figure 4: the QMARL workflow demonstration.

Rolls a trained Proposed policy for 12 unit-steps (as in the paper's
demonstration), recording at every step

- the queue levels of every edge and cloud (the stacked time series of
  Fig. 4's left panel), and
- the first edge agent's 4-qubit actor state, rendered as the 4x4
  magnitude/phase heatmap in the HLS colour system (the right panels).
"""

from __future__ import annotations

import numpy as np

from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
from repro.marl.frameworks import build_framework
from repro.quantum.backends import StatevectorBackend
from repro.viz.qubit_heatmap import QubitStateHeatmap, render_ansi, render_text

__all__ = ["run_fig4", "format_fig4_report"]


def _actor_statevector(actor, observation):
    """Final pure state of a quantum actor's circuit for one observation."""
    vqc = actor.layer.vqc
    backend = StatevectorBackend()
    psi = backend.evolve(
        vqc.circuit,
        np.asarray(observation, dtype=np.float64)[None, :],
        actor.layer.weights.data,
    )
    return psi[0]


def run_fig4(train_epochs=60, n_steps=12, seed=11, episode_limit=50,
             framework=None):
    """Train (or reuse) a Proposed framework and record the demonstration.

    Args:
        train_epochs: Epochs of pre-training when no framework is supplied.
        n_steps: Demonstration length (the paper shows 12 unit-steps).
        seed: Root seed.
        episode_limit: Episode length for both training and demonstration.
        framework: Optionally, an already-trained ``"proposed"`` framework.

    Returns:
        A result document with per-step queue levels, actions, and the first
        agent's amplitude heatmap (magnitude + phase grids).
    """
    if framework is None:
        framework = build_framework(
            "proposed",
            seed=seed,
            env_config=SingleHopConfig(episode_limit=max(episode_limit, n_steps)),
            vqc_config=VQCConfig(critic_value_scale=10.0),
            train_config=TrainingConfig(
                n_epochs=train_epochs,
                episodes_per_epoch=4,
                gamma=0.95,
                actor_lr=2e-3,
                critic_lr=1e-3,
                entropy_coef=0.01,
            ),
        )
        framework.train(n_epochs=train_epochs)
    elif framework.name != "proposed":
        raise ValueError("Fig. 4 demonstrates the proposed QMARL framework")

    env = framework.env
    rng = np.random.default_rng(seed + 17)
    observations, _state = env.reset()
    first_actor = framework.actors.actors[0]

    steps = []
    for t in range(n_steps):
        psi = _actor_statevector(first_actor, observations[0])
        heatmap = QubitStateHeatmap(psi)
        actions = framework.actors.act(observations, rng, greedy=True)
        result = env.step(actions)
        decoded = [env.decode_action(a) for a in actions]
        steps.append(
            {
                "t": t + 1,
                "edge_levels": result.info["edge_levels"].tolist(),
                "cloud_levels": result.info["cloud_levels"].tolist(),
                "actions": list(map(int, actions)),
                "destinations": [int(d) for d, _ in decoded],
                "amounts": [float(p) for _, p in decoded],
                "reward": result.reward,
                "heatmap_magnitude": heatmap.magnitude.tolist(),
                "heatmap_phase": heatmap.phase.tolist(),
            }
        )
        observations = result.observations
        if result.done:
            break

    return {
        "experiment": "fig4",
        "seed": seed,
        "n_steps": len(steps),
        "train_epochs": train_epochs,
        "steps": steps,
    }


def format_fig4_report(result, ansi=False):
    """Readable per-step report: queue levels + the agent-1 qubit heatmap."""
    lines = [f"Fig. 4 demonstration ({result['n_steps']} unit-steps)"]
    for step in result["steps"]:
        edges = " ".join(f"{q:.2f}" for q in step["edge_levels"])
        clouds = " ".join(f"{q:.2f}" for q in step["cloud_levels"])
        lines.append(
            f"t={step['t']:>2}  edges=[{edges}]  clouds=[{clouds}]  "
            f"reward={step['reward']:+.3f}  "
            f"actions={step['actions']}"
        )
        magnitude = np.asarray(step["heatmap_magnitude"])
        phase = np.asarray(step["heatmap_phase"])
        grid = magnitude * np.exp(1j * phase)
        heatmap = QubitStateHeatmap(grid.reshape(-1))
        renderer = render_ansi if ansi else render_text
        body = renderer(heatmap)
        lines.extend("    " + ln for ln in body.splitlines())
    return "\n".join(lines)
