"""Result persistence: JSON documents and CSV series for every experiment."""

from __future__ import annotations

import json
import os
import time

import numpy as np

__all__ = ["results_dir", "save_json", "load_json", "save_csv", "timestamp"]


def results_dir(base=None):
    """Resolve (and create) the results directory.

    Defaults to ``$REPRO_RESULTS_DIR`` or ``./results``.
    """
    if base is None:
        base = os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(base, exist_ok=True)
    return base


def _sanitise(value):
    """Make numpy types JSON-serialisable."""
    if isinstance(value, dict):
        return {str(k): _sanitise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitise(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def save_json(document, path):
    """Write a JSON document (numpy-safe); returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        json.dump(_sanitise(document), f, indent=2)
    return path


def load_json(path):
    """Read a JSON document."""
    with open(path) as f:
        return json.load(f)


def save_csv(columns, path):
    """Write a dict of equal-length columns as CSV; returns the path.

    Args:
        columns: Mapping ``name -> sequence``.
        path: Output file path.
    """
    names = list(columns)
    arrays = [list(columns[n]) for n in names]
    lengths = {len(a) for a in arrays}
    if len(lengths) != 1:
        raise ValueError(f"columns have unequal lengths: {sorted(lengths)}")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        f.write(",".join(names) + "\n")
        for row in zip(*arrays):
            f.write(",".join(str(v) for v in row) + "\n")
    return path


def timestamp():
    """Filesystem-friendly UTC timestamp."""
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
