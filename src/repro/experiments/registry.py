"""Experiment registry: one named entry per paper table/figure + ablations.

Maps experiment identifiers (as used in DESIGN.md's per-experiment index)
to runner callables, so the CLI, the benchmarks and the tests all launch
experiments through one front door.
"""

from __future__ import annotations

from repro.experiments import ablations
from repro.experiments.evolution import run_es_training
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.section4d import run_section4d
from repro.experiments.serving import run_serving_benchmark

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]


class ExperimentSpec:
    """A registered experiment: id, description, and runner."""

    def __init__(self, experiment_id, description, runner, paper_ref):
        self.experiment_id = experiment_id
        self.description = description
        self.runner = runner
        self.paper_ref = paper_ref

    def run(self, **kwargs):
        """Execute the experiment; returns its result document."""
        return self.runner(**kwargs)

    def __repr__(self):
        return f"ExperimentSpec({self.experiment_id!r}: {self.paper_ref})"


EXPERIMENTS = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig3",
            "Training curves for Proposed/Comp1/Comp2/Comp3 on four metrics",
            run_fig3,
            "Fig. 3(a-d)",
        ),
        ExperimentSpec(
            "fig4",
            "12-step demonstration with HLS qubit-state heatmaps",
            run_fig4,
            "Fig. 4",
        ),
        ExperimentSpec(
            "section4d",
            "Achievability and metric-ordering comparison vs the paper",
            run_section4d,
            "Section IV-D",
        ),
        ExperimentSpec(
            "es-train",
            "Gradient-free ES training of a framework (optionally vs MAPG)",
            run_es_training,
            "Extension: Kölle et al. 2023/2024 ES for quantum MARL",
        ),
        ExperimentSpec(
            "serving-load",
            "Policy-serving latency/throughput: micro-batching frontier",
            run_serving_benchmark,
            "Extension: ROADMAP serving tier (online offloading decisions)",
        ),
        ExperimentSpec(
            "ablation-encoding",
            "Signal attenuation: compact vs naive state encoding under noise",
            ablations.run_encoding_attenuation,
            "Section I motivation (NISQ scalability)",
        ),
        ExperimentSpec(
            "ablation-gradients",
            "Adjoint vs parameter-shift vs finite differences",
            ablations.run_gradient_methods,
            "Methodology (DESIGN.md ABL-GRAD)",
        ),
        ExperimentSpec(
            "ablation-noise",
            "Trained-policy robustness to depolarising gate noise",
            ablations.run_noise_robustness,
            "Section V future work",
        ),
        ExperimentSpec(
            "ablation-shots",
            "Trained-policy robustness to finite measurement shots",
            ablations.run_shot_budget,
            "Section V future work",
        ),
        ExperimentSpec(
            "ablation-budget",
            "Reward vs trainable-parameter budget",
            ablations.run_parameter_budget,
            "Section IV-C parameter constraint",
        ),
        ExperimentSpec(
            "ablation-template",
            "Ansatz families at a fixed weight budget",
            ablations.run_template_comparison,
            "Fig. 1 ansatz choice",
        ),
        ExperimentSpec(
            "ablation-plateau",
            "Barren-plateau gradient variance vs register width",
            ablations.run_barren_plateau,
            "Section I motivation (NISQ trainability)",
        ),
    )
}


def get_experiment(experiment_id):
    """Look up a registered experiment."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id, **kwargs):
    """Run a registered experiment by id."""
    return get_experiment(experiment_id).run(**kwargs)
