"""Section IV-D summary numbers: rewards, achievability, metric orderings.

The paper's quantitative claims (Section IV-D):

- total rewards: Proposed -3.0, Comp1 -16.6, Comp2 -22.5, Comp3 -2.8,
  random walk -33.2 (absolute values scale with episode length; the
  orderings and achievability are the reproduction targets);
- achievability: Proposed 90.9 %, Comp1 49.8 %, Comp2 33.2 %, Comp3 91.5 %;
- average queue: Proposed 0.460, Comp1 0.480, Comp2 0.510, Comp3 0.453;
- queue-empty ratio order (high -> low): Comp2, Comp1, Proposed, Comp3;
- overflow order (low -> high): Proposed, Comp3, Comp2, Comp1.
"""

from __future__ import annotations

from repro.experiments.fig3 import run_fig3

__all__ = ["PAPER_REFERENCE", "run_section4d", "format_section4d_report"]

PAPER_REFERENCE = {
    "total_reward": {
        "proposed": -3.0,
        "comp1": -16.6,
        "comp2": -22.5,
        "comp3": -2.8,
        "random": -33.2,
    },
    "achievability": {
        "proposed": 0.909,
        "comp1": 0.498,
        "comp2": 0.332,
        "comp3": 0.915,
    },
    "mean_queue": {
        "proposed": 0.460,
        "comp1": 0.480,
        "comp2": 0.510,
        "comp3": 0.453,
    },
    "empty_ratio_order_high_to_low": ["comp2", "comp1", "proposed", "comp3"],
    "overflow_order_low_to_high": ["proposed", "comp3", "comp2", "comp1"],
}


def _order(summaries, key, reverse):
    names = sorted(summaries, key=lambda n: summaries[n][key], reverse=reverse)
    return names


def run_section4d(preset="quick", seed=7, fig3_result=None):
    """Compute the Section IV-D comparison (reusing a Fig. 3 run if given)."""
    if fig3_result is None:
        fig3_result = run_fig3(preset=preset, seed=seed)
    summaries = fig3_result["summaries"]

    measured_orders = {
        "empty_ratio_order_high_to_low": _order(summaries, "empty_ratio", True),
        "overflow_order_low_to_high": _order(summaries, "overflow_ratio", False),
        "achievability_order_high_to_low": _order(summaries, "achievability", True),
    }
    return {
        "experiment": "section4d",
        "preset": fig3_result["preset"],
        "seed": fig3_result["seed"],
        "random_walk_return": fig3_result["random_walk_return"],
        "summaries": summaries,
        "orders": measured_orders,
        "paper_reference": PAPER_REFERENCE,
    }


def format_section4d_report(result):
    """Side-by-side paper-vs-measured table."""
    summaries = result["summaries"]
    paper = result["paper_reference"]
    lines = [
        "Section IV-D — paper vs measured",
        f"random-walk return: paper -33.2 (T~350) | measured "
        f"{result['random_walk_return']:.2f}",
        "",
        f"{'framework':<10} {'ach. paper':>11} {'ach. ours':>10} "
        f"{'queue paper':>12} {'queue ours':>11}",
    ]
    for name in ("proposed", "comp1", "comp2", "comp3"):
        if name not in summaries:
            continue
        lines.append(
            f"{name:<10} {paper['achievability'][name]:>10.1%} "
            f"{summaries[name]['achievability']:>9.1%} "
            f"{paper['mean_queue'][name]:>12.3f} "
            f"{summaries[name]['mean_queue']:>11.3f}"
        )
    lines.append("")
    for key in ("empty_ratio_order_high_to_low", "overflow_order_low_to_high"):
        lines.append(f"{key}:")
        lines.append(f"  paper:    {' > '.join(paper[key])}")
        lines.append(f"  measured: {' > '.join(result['orders'][key])}")
    return "\n".join(lines)
