"""Serving-tier load experiment: latency/throughput of batched inference.

A thin registry front for :func:`repro.serving.loadgen.run_serving_load`,
so the CLI and CI launch the serving benchmark through the same door as
the paper experiments.  The heavy lifting — checkpointing a trained
framework, standing servers up on ephemeral ports, closed/open-loop load
generation — lives in :mod:`repro.serving.loadgen`.
"""

from __future__ import annotations

from repro.serving.loadgen import run_serving_load

__all__ = ["run_serving_benchmark"]


def run_serving_benchmark(framework="proposed", smoke=False, **kwargs):
    """Run the serving load benchmark; returns the result document.

    Args:
        framework: Which arm's policies to serve.
        smoke: Short durations and small sweeps (CI-sized).
        **kwargs: Forwarded to
            :func:`repro.serving.loadgen.run_serving_load`
            (``duration``, ``concurrencies``, ``batch_sizes``,
            ``offered_rates``, ``max_wait_us``).
    """
    return run_serving_load(framework=framework, smoke=smoke, **kwargs)
