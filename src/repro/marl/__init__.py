"""Multi-agent RL: CTDE actor-critic, framework presets, metrics."""

from repro.marl.actors import (
    ActorGroup,
    ClassicalActor,
    QuantumActor,
    QuantumActorGroup,
    RandomActor,
)
from repro.marl.buffer import Episode, RolloutBuffer, TransitionBatch
from repro.marl.checkpoint import checkpoint_info, load_checkpoint, save_checkpoint
from repro.marl.critics import ClassicalCentralCritic, QuantumCentralCritic
from repro.marl.frameworks import (
    FRAMEWORK_NAMES,
    Framework,
    build_framework,
    evaluate_random_walk,
)
from repro.marl.evolution import (
    ESTrainer,
    PopulationActorGroup,
    PopulationRolloutCollector,
)
from repro.marl.parallel import ShardedRolloutCollector
from repro.marl.metrics import (
    MetricsHistory,
    achievability,
    exponential_moving_average,
    rolling_mean,
)
from repro.marl.trainer import CTDETrainer, rollout_episode

__all__ = [
    "ActorGroup",
    "QuantumActor",
    "QuantumActorGroup",
    "ClassicalActor",
    "RandomActor",
    "Episode",
    "TransitionBatch",
    "RolloutBuffer",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_info",
    "QuantumCentralCritic",
    "ClassicalCentralCritic",
    "Framework",
    "FRAMEWORK_NAMES",
    "build_framework",
    "evaluate_random_walk",
    "MetricsHistory",
    "achievability",
    "exponential_moving_average",
    "rolling_mean",
    "CTDETrainer",
    "ESTrainer",
    "rollout_episode",
    "ShardedRolloutCollector",
    "PopulationActorGroup",
    "PopulationRolloutCollector",
]
