"""Actors: decentralised policies over local observations.

Three families, matching the paper's comparison:

- :class:`QuantumActor` — the paper's VQC policy
  ``pi(u|o) = softmax(f(o; theta))`` (Proposed and Comp1);
- :class:`ClassicalActor` — an MLP policy under the same parameter budget
  (Comp2) or a much larger one (Comp3);
- :class:`RandomActor` — the uniform random-walk reference used for the
  achievability normalisation.

:class:`QuantumActorGroup` exploits that all agents' actors share one
circuit *structure* (they differ only in weights): during rollouts the whole
team's action distributions are computed with a single batched circuit
evaluation using per-sample weights.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Module, mlp
from repro.nn.quantum_layer import QuantumLayer
from repro.nn.tensor import Tensor, as_tensor
from repro.quantum.backends import StatevectorBackend
from repro.quantum.gradients import backward as _qbackward

__all__ = [
    "QuantumActor",
    "ClassicalActor",
    "RandomActor",
    "ActorGroup",
    "QuantumActorGroup",
    "categorical_from_draws",
]


def _stable_softmax_np(logits):
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=-1, keepdims=True)


def categorical_from_draws(probs, draws):
    """One categorical sample per row of ``(R, A)`` probabilities, from the
    given uniform draws.

    Replicates ``numpy.random.Generator.choice(A, p=row)`` exactly — the
    same normalised-cumsum inversion, one draw per row in row order.  Split
    from the draw step so process-sharded rollouts can consume a slice of a
    globally drawn block (each worker draws the full block from its stream
    replica and inverts only its shard's rows, keeping the stream bit-aligned
    with the in-process engine regardless of shard assignment).
    """
    probs = np.asarray(probs, dtype=np.float64)
    cdf = np.cumsum(probs, axis=1)
    cdf /= cdf[:, -1:]
    draws = np.asarray(draws, dtype=np.float64)
    actions = (cdf <= draws[:, None]).sum(axis=1)
    return np.minimum(actions, probs.shape[1] - 1)


def _sample_categorical_rows(probs, rng):
    """One categorical sample per row of a ``(R, A)`` probability matrix.

    Same semantics as per-observation serial ``choice`` sampling (see
    :func:`categorical_from_draws`), while avoiding ``R`` python-level
    ``choice`` calls per step.
    """
    probs = np.asarray(probs, dtype=np.float64)
    return categorical_from_draws(probs, rng.random(probs.shape[0]))


def born_observables(n_action_qubits):
    """The Pauli-Z correlation basis measured by the Born policy head.

    For ``k`` action qubits, the measurement probabilities of the ``2**k``
    outcomes are an exact linear function of the ``2**k - 1`` expectation
    values ``<Z_S> = <prod_{i in S} Z_i>`` over non-empty subsets ``S``:

        P(o) = 2**-k * (1 + sum_S (-1)**parity(o, S) <Z_S>)

    Returns ``(observables, sign_matrix)`` with ``sign_matrix`` of shape
    ``(2**k, 2**k - 1)``.
    """
    from repro.quantum.observables import PauliString

    if n_action_qubits < 1:
        raise ValueError("need at least one action qubit")
    subsets = [
        s for s in range(1, 2**n_action_qubits)
    ]  # bitmask over qubits, non-empty
    observables = [
        PauliString(
            {q: "Z" for q in range(n_action_qubits) if s >> q & 1}
        )
        for s in subsets
    ]
    n_outcomes = 2**n_action_qubits
    signs = np.empty((n_outcomes, len(subsets)))
    for outcome in range(n_outcomes):
        # Outcome bit for qubit q, matching the simulator's convention of
        # qubit 0 as the most-significant bit of the basis index.
        bits = [
            (outcome >> (n_action_qubits - 1 - q)) & 1
            for q in range(n_action_qubits)
        ]
        for j, s in enumerate(subsets):
            parity = sum(bits[q] for q in range(n_action_qubits) if s >> q & 1)
            signs[outcome, j] = (-1.0) ** parity
    return observables, signs


class QuantumActor(Module):
    """VQC policy: the paper's ``softmax(f(o))`` or a Born-measurement head.

    Two heads, both using the same circuit and weight budget:

    - ``policy_head="softmax"`` — the paper's Eq. in Section III-A1:
      ``pi = softmax(logit_scale * <Z_j>)``.  Note the expectations are
      bounded in [-1, 1], so with ``logit_scale=1`` the policy can never
      exceed ``e^2``:1 odds (max prob ~0.71 for 4 actions) — a built-in
      stochasticity floor.
    - ``policy_head="born"`` — reads Fig. 2's ``P(a_i)`` annotation
      literally: the policy *is* the measurement distribution of the first
      ``log2(A)`` qubits.  Computed exactly (and differentiably) from the
      Z-correlation expectations; this head can become deterministic.

    Args:
        vqc: Circuit bundle whose output count equals the action count
            (softmax head) — for the born head the observables are replaced
            by the correlation basis automatically.
        rng: Generator for weight initialisation.
        backend: Execution backend (exact statevector by default).
        gradient_method: Differentiation method for training.
        logit_scale: Softmax-head multiplier (1.0 = the paper's formula).
        policy_head: ``"softmax"`` (paper formula, default) or ``"born"``.
    """

    def __init__(self, vqc, rng, backend=None, gradient_method="adjoint",
                 logit_scale=1.0, policy_head="softmax"):
        if policy_head not in ("softmax", "born"):
            raise ValueError(f"unknown policy head {policy_head!r}")
        self.policy_head = policy_head
        self.n_actions = vqc.n_outputs
        self._born_signs = None
        if policy_head == "born":
            n_action_qubits = int(np.log2(self.n_actions))
            if 2**n_action_qubits != self.n_actions:
                raise ValueError(
                    "born head needs a power-of-two action count, got "
                    f"{self.n_actions}"
                )
            observables, signs = born_observables(n_action_qubits)
            from repro.quantum.vqc import VQC

            vqc = VQC(vqc.circuit, observables, vqc.template)
            self._born_signs = signs
        self.layer = QuantumLayer(
            vqc, rng, backend=backend, gradient_method=gradient_method
        )
        self.logit_scale = float(logit_scale)

    _BORN_EPSILON = 1e-8

    def _born_probs_np(self, expectations):
        n_outcomes = self._born_signs.shape[0]
        probs = (1.0 + expectations @ self._born_signs.T) / n_outcomes
        probs = np.clip(probs, self._BORN_EPSILON, None)
        return probs / probs.sum(axis=1, keepdims=True)

    def _born_probs(self, outputs):
        """Differentiable born probabilities from Z-correlation expectations.

        Shared by the per-actor forward and the group's stacked update path
        so the head's smoothing can never drift between them.  Clamps the
        (nonneg-by-construction) probabilities away from 0 so log-policy
        gradients stay finite under float round-off.
        """
        n_outcomes = self._born_signs.shape[0]
        probs = (outputs @ self._born_signs.T + 1.0) * (1.0 / n_outcomes)
        return (probs + self._BORN_EPSILON) * (
            1.0 / (1.0 + self.n_actions * self._BORN_EPSILON)
        )

    def forward(self, observations):
        """Action probabilities as a differentiable ``(B, A)`` tensor."""
        outputs = self.layer(as_tensor(observations))
        if self.policy_head == "born":
            return self._born_probs(outputs)
        return F.softmax(outputs * self.logit_scale, axis=-1)

    def log_policy(self, observations):
        """Log action probabilities, differentiable ``(B, A)``."""
        if self.policy_head == "born":
            return F.log(self.forward(observations))
        logits = self.layer(as_tensor(observations)) * self.logit_scale
        return F.log_softmax(logits, axis=-1)

    def probabilities(self, observations):
        """Non-differentiable fast path: numpy ``(B, A)`` probabilities."""
        observations = np.asarray(observations, dtype=np.float64)
        if observations.ndim == 1:
            observations = observations[None, :]
        vqc = self.layer.vqc
        outputs = self.layer.backend.run(
            vqc.circuit, vqc.observables, observations, self.layer.weights.data
        )
        if self.policy_head == "born":
            return self._born_probs_np(outputs)
        return _stable_softmax_np(outputs * self.logit_scale)

    def sample_action(self, observation, rng):
        """Sample one action from the policy for a single observation."""
        probs = self.probabilities(observation)[0]
        return int(rng.choice(len(probs), p=probs))

    def greedy_action(self, observation):
        """Arg-max action (decentralised execution, Section III-A1)."""
        return int(np.argmax(self.probabilities(observation)[0]))

    def with_backend(self, backend, gradient_method="parameter_shift"):
        """A clone sharing this actor's circuit and weights on another backend.

        Used to evaluate a trained policy under noise or finite shots
        without retraining (the weights tensor is shared, not copied).
        """
        clone = QuantumActor.__new__(QuantumActor)
        layer = QuantumLayer.__new__(QuantumLayer)
        layer.vqc = self.layer.vqc
        layer.backend = backend
        layer.gradient_method = gradient_method
        layer.weights = self.layer.weights
        clone.layer = layer
        clone.logit_scale = self.logit_scale
        clone.n_actions = self.n_actions
        clone.policy_head = self.policy_head
        clone._born_signs = self._born_signs
        return clone


class ClassicalActor(Module):
    """MLP policy under a configurable parameter budget (Comp2 / Comp3)."""

    def __init__(self, obs_size, n_actions, hidden, rng, activation="tanh"):
        sizes = (obs_size, *hidden, n_actions)
        self.net = mlp(sizes, rng, activation=activation)
        self.n_actions = int(n_actions)

    def forward(self, observations):
        """Action probabilities as a differentiable ``(B, A)`` tensor."""
        return F.softmax(self.net(as_tensor(observations)), axis=-1)

    def log_policy(self, observations):
        """Log action probabilities, differentiable ``(B, A)``."""
        return F.log_softmax(self.net(as_tensor(observations)), axis=-1)

    def probabilities(self, observations):
        """Numpy probabilities without touching gradients."""
        observations = np.asarray(observations, dtype=np.float64)
        if observations.ndim == 1:
            observations = observations[None, :]
        return self.forward(observations).data

    def sample_action(self, observation, rng):
        """Sample one action from the policy for a single observation."""
        probs = self.probabilities(observation)[0]
        return int(rng.choice(len(probs), p=probs))

    def greedy_action(self, observation):
        """Arg-max action."""
        return int(np.argmax(self.probabilities(observation)[0]))


class RandomActor:
    """Uniform policy — the paper's random-walk reference."""

    supports_greedy = False

    def __init__(self, n_actions):
        self.n_actions = int(n_actions)

    def probabilities(self, observations):
        """Uniform ``(B, A)`` probabilities."""
        observations = np.asarray(observations)
        batch = observations.shape[0] if observations.ndim > 1 else 1
        return np.full((batch, self.n_actions), 1.0 / self.n_actions)

    def sample_action(self, observation, rng):
        """Uniformly random action."""
        return int(rng.integers(self.n_actions))

    def greedy_action(self, observation):
        """Random actors have no greedy mode; still random by design."""
        raise RuntimeError(
            "RandomActor has no greedy action; evaluate it stochastically"
        )

    def parameters(self):
        """Random actors are parameterless."""
        return []

    def n_parameters(self):
        """Zero trainable parameters."""
        return 0


class ActorGroup:
    """A team of per-agent actors with a uniform act() interface."""

    def __init__(self, actors):
        self.actors = list(actors)
        if not self.actors:
            raise ValueError("need at least one actor")

    @property
    def n_agents(self):
        """Team size."""
        return len(self.actors)

    def act(self, observations, rng, greedy=False):
        """One action per agent given the per-agent observation list."""
        actions = []
        for actor, obs in zip(self.actors, observations):
            if greedy:
                actions.append(actor.greedy_action(obs))
            else:
                actions.append(actor.sample_action(obs, rng))
        return actions

    # -- vectorized inference -------------------------------------------------

    def batch_probabilities(self, observations):
        """``(N, n_agents, A)`` probabilities for stacked observations.

        ``observations`` is ``(N, n_agents, obs_size)`` — one row per
        lockstep environment copy.  The base implementation runs one batched
        forward per agent; :class:`QuantumActorGroup` overrides it with a
        single circuit evaluation over all ``N * n_agents`` rows.
        """
        observations = np.asarray(observations, dtype=np.float64)
        return np.stack(
            [
                actor.probabilities(observations[:, n, :])
                for n, actor in enumerate(self.actors)
            ],
            axis=1,
        )

    def _check_rows(self, observations, agent_indices):
        """Validate and normalise ragged-row inputs for rows_probabilities."""
        observations = np.asarray(observations, dtype=np.float64)
        agent_indices = np.asarray(agent_indices, dtype=np.int64)
        if observations.ndim != 2:
            raise ValueError(
                f"observations must be (R, obs_size), got {observations.shape}"
            )
        if agent_indices.shape != (observations.shape[0],):
            raise ValueError(
                f"{observations.shape[0]} observation rows but "
                f"{agent_indices.shape} agent indices"
            )
        if agent_indices.size and (
            agent_indices.min() < 0 or agent_indices.max() >= self.n_agents
        ):
            raise ValueError(
                f"agent indices must be in [0, {self.n_agents}), got "
                f"range [{agent_indices.min()}, {agent_indices.max()}]"
            )
        return observations, agent_indices

    def rows_probabilities(self, observations, agent_indices):
        """``(R, A)`` probabilities for ragged rows of (agent, observation).

        Row ``r`` is agent ``agent_indices[r]`` evaluated on
        ``observations[r]`` — the serving tier's shape, where one
        micro-batch mixes arbitrary agents in arbitrary order (unlike
        :meth:`batch_probabilities`, which wants every agent once per env
        copy).  The base implementation runs one batched forward per
        *distinct* agent; :class:`QuantumActorGroup` overrides it with a
        single stacked circuit evaluation.
        """
        observations, agent_indices = self._check_rows(
            observations, agent_indices
        )
        n_actions = self.actors[0].n_actions
        probs = np.empty((observations.shape[0], n_actions))
        for agent in np.unique(agent_indices):
            mask = agent_indices == agent
            probs[mask] = self.actors[int(agent)].probabilities(
                observations[mask]
            )
        return probs

    def act_batch(self, observations, rng, greedy=False):
        """``(N, n_agents)`` actions for ``(N, n_agents, obs_size)`` inputs.

        The batched counterpart of :meth:`act`: all environment copies'
        observations go through each policy in one forward pass.  For
        policy actors (quantum/classical), action sampling consumes ``rng``
        bit-identically to ``N`` successive serial :meth:`act` calls
        (row-major: copy 0's agents first).  :class:`RandomActor` is the
        exception: serial sampling draws bounded integers while this path
        samples its uniform distribution, so the random arm's streams
        differ between serial and batched rollouts (it is untrained, so
        only stream layout — not statistics — changes).
        """
        if greedy:
            for actor in self.actors:
                if not getattr(actor, "supports_greedy", True):
                    raise RuntimeError(
                        f"{type(actor).__name__} has no greedy action; "
                        "evaluate it stochastically"
                    )
        probs = self.batch_probabilities(observations)
        n_envs, n_agents, n_actions = probs.shape
        if greedy:
            return np.argmax(probs, axis=2)
        flat = _sample_categorical_rows(
            probs.reshape(n_envs * n_agents, n_actions), rng
        )
        return flat.reshape(n_envs, n_agents)

    # -- vectorized training --------------------------------------------------

    def stacked_log_policies(self, observations):
        """Differentiable ``(B, n_agents, A)`` log-policies for an update batch.

        ``observations`` is the transition batch's ``(B, n_agents, obs_size)``
        array.  The base implementation runs one forward per agent and stacks
        the results (gradients still flow into every actor);
        :class:`QuantumActorGroup` overrides it with a *single* batched
        circuit evaluation over all ``B * n_agents`` rows using per-sample
        weights — the update-path counterpart of :meth:`batch_probabilities`.
        """
        observations = np.asarray(observations, dtype=np.float64)
        return F.stack(
            [
                actor.log_policy(observations[:, n, :])
                for n, actor in enumerate(self.actors)
            ],
            axis=1,
        )

    def parameters(self):
        """All trainable parameters across the team."""
        params = []
        for actor in self.actors:
            params.extend(actor.parameters())
        return params

    def n_parameters(self):
        """Total trainable parameter count across the team."""
        return sum(actor.n_parameters() for actor in self.actors)

    def zero_grad(self):
        """Clear gradients on every actor."""
        for actor in self.actors:
            if hasattr(actor, "zero_grad"):
                actor.zero_grad()


class QuantumActorGroup(ActorGroup):
    """Quantum team with single-circuit batched, compiled rollouts.

    All actors must share one circuit structure (same ansatz seed); each
    keeps its own weight vector.  ``act`` stacks the team's observations
    ``(N, obs)`` and weights ``(N, n_weights)`` and evaluates the shared
    circuit once with per-sample weights — one simulator call per
    environment step instead of N.  On the exact statevector backend the
    frozen variational block is additionally *compiled* into per-agent
    unitaries that are cached between weight updates
    (:class:`~repro.quantum.compile.CompiledCircuit`), so a rollout step
    costs one encoding pass plus one small matmul.
    """

    def __init__(self, actors, compile_rollouts=True):
        super().__init__(actors)
        first = self.actors[0]
        if not all(
            a.layer.vqc.circuit is first.layer.vqc.circuit for a in self.actors
        ):
            raise ValueError(
                "QuantumActorGroup requires actors sharing one circuit object"
            )
        self._circuit = first.layer.vqc.circuit
        self._observables = first.layer.vqc.observables
        self._logit_scale = first.logit_scale
        self._head_actor = first
        if not all(a.policy_head == first.policy_head for a in self.actors):
            raise ValueError("all actors must share one policy head")
        # Batched evaluation is only exact when measurements are exact; with
        # shots or noise, fall back to per-actor calls.
        backend = first.layer.backend
        self._fast_backend = (
            backend
            if isinstance(backend, StatevectorBackend) and backend.shots is None
            else None
        )
        self._compiled = None
        if compile_rollouts and self._fast_backend is not None:
            from repro.quantum.compile import CompiledCircuit

            self._compiled = CompiledCircuit(
                self._circuit,
                self._observables,
                array_backend=getattr(self._fast_backend, "array_backend", None),
            )

    def team_probabilities(self, observations):
        """``(n_agents, A)`` action probabilities for the whole team at once.

        The one-copy case of :meth:`batch_probabilities` (same arrays, same
        floats) — kept as the serial rollout's entry point.
        """
        stacked_obs = np.stack(
            [np.asarray(o, dtype=np.float64) for o in observations]
        )
        return self.batch_probabilities(stacked_obs[None])[0]

    def act(self, observations, rng, greedy=False):
        """One action per agent, computed with one batched circuit call."""
        probs = self.team_probabilities(observations)
        if greedy:
            return [int(a) for a in np.argmax(probs, axis=1)]
        actions = []
        for row in probs:
            actions.append(int(rng.choice(len(row), p=row)))
        return actions

    def batch_probabilities(self, observations):
        """``(N, n_agents, A)`` probabilities via one circuit evaluation.

        Stacks all copies' observations into ``(N * n_agents)`` rows
        (copy-major) with the agents' weight rows cycled over the batch, so
        the whole fleet of policies is one batched simulator call.  On the
        compiled path only the ``n_agents`` distinct weight-only suffix
        unitaries are compiled, cached between weight updates with a key
        independent of ``N`` — a rollout step costs one encoding pass plus
        one batched matmul.  For ``N = 1`` this is exactly
        :meth:`team_probabilities` — same arrays, same floats.
        """
        observations = np.asarray(observations, dtype=np.float64)
        if self._fast_backend is None:
            # Shot/noise backends sample per actor; fall back to the
            # per-agent batched path (still one backend call per agent).
            return super().batch_probabilities(observations)
        n_envs, n_agents = observations.shape[0], observations.shape[1]
        flat_obs = observations.reshape(n_envs * n_agents, -1)
        weights = np.stack([a.layer.weights.data for a in self.actors])
        if self._compiled is not None:
            # Untiled weights: the compiled path cycles the n_agents weight
            # rows over the batch, caching only the distinct suffix
            # unitaries (key independent of n_envs).
            outputs = self._compiled.run(flat_obs, weights)
        else:
            outputs = self._fast_backend.run(
                self._circuit, self._observables, flat_obs,
                np.tile(weights, (n_envs, 1)),
            )
        if self._head_actor.policy_head == "born":
            probs = self._head_actor._born_probs_np(outputs)
        else:
            probs = _stable_softmax_np(outputs * self._logit_scale)
        return probs.reshape(n_envs, n_agents, -1)

    def rows_probabilities(self, observations, agent_indices):
        """``(R, A)`` ragged-row probabilities via one circuit evaluation.

        Gathers each row's weight vector (``weights[agent_indices]``) and
        runs the whole micro-batch as a single stacked simulator call.  On
        the compiled path only the ``n_agents`` distinct suffix unitaries
        are built — the same cache entry the rollout paths use, so serving
        and training never recompile each other's work.
        """
        observations, agent_indices = self._check_rows(
            observations, agent_indices
        )
        if self._fast_backend is None or observations.shape[0] == 0:
            return super().rows_probabilities(observations, agent_indices)
        weights = np.stack([a.layer.weights.data for a in self.actors])
        if self._compiled is not None:
            outputs = self._compiled.run_rows(
                observations, weights, agent_indices
            )
        else:
            outputs = self._fast_backend.run(
                self._circuit, self._observables, observations,
                weights[agent_indices],
            )
        if self._head_actor.policy_head == "born":
            return self._head_actor._born_probs_np(outputs)
        return _stable_softmax_np(outputs * self._logit_scale)

    def _stacked_expectations(self, observations):
        """Differentiable ``(B * n_agents, n_obs)`` team expectations.

        One batched circuit evaluation with per-sample weights (the agents'
        weight rows cycled over the batch) whose backward pass runs one
        adjoint sweep for the whole team and routes each agent's slice of
        the per-sample weight gradient back into that agent's own
        ``Parameter``.
        """
        b, n_agents = observations.shape[0], observations.shape[1]
        flat_obs = observations.reshape(b * n_agents, -1)
        weight_params = [actor.layer.weights for actor in self.actors]
        tiled = np.tile(np.stack([w.data for w in weight_params]), (b, 1))
        backend = self._fast_backend
        circuit, observables = self._circuit, self._observables

        out_data = backend.run(circuit, observables, flat_obs, tiled)

        def backward_fn(grad):
            _, weight_grads = _qbackward(
                circuit, observables, flat_obs, tiled, grad, method="adjoint"
            )
            per_agent = weight_grads.reshape(b, n_agents, -1).sum(axis=0)
            for n, param in enumerate(weight_params):
                param._accumulate(per_agent[n])

        return Tensor._from_op(out_data, tuple(weight_params), backward_fn)

    def stacked_log_policies(self, observations):
        """``(B, n_agents, A)`` log-policies from one circuit evaluation.

        Replaces the per-agent training forwards with a single batched call
        (and a single adjoint reverse sweep on backward).  Falls back to the
        per-agent path for inexact backends or non-adjoint gradient methods,
        where per-sample-weight batching is not available.
        """
        observations = np.asarray(observations, dtype=np.float64)
        if self._fast_backend is None or any(
            actor.layer.gradient_method != "adjoint" for actor in self.actors
        ):
            return super().stacked_log_policies(observations)
        b, n_agents = observations.shape[0], observations.shape[1]
        outputs = self._stacked_expectations(observations)
        if self._head_actor.policy_head == "born":
            log_flat = F.log(self._head_actor._born_probs(outputs))
        else:
            log_flat = F.log_softmax(outputs * self._logit_scale, axis=-1)
        return log_flat.reshape(b, n_agents, -1)
