"""Episode-structured experience storage (Algorithm 1's replay ``D``).

The trainer collects whole episodes, then updates from every transition of
the collected batch (Algorithm 1, line 12: "for each timestep t in each
episode in batch D").  Because MAPG's ``y_t log pi`` term is only unbiased
on-policy, the buffer is cleared after each update by default; a bounded
capacity with reuse is available for off-policy experimentation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Episode", "TransitionBatch", "RolloutBuffer"]


class Episode:
    """One complete episode's transitions, stored column-wise.

    Attributes (after :meth:`finish`):
        states: ``(T, state_size)``.
        observations: ``(T, n_agents, obs_size)``.
        actions: ``(T, n_agents)`` integer actions.
        rewards: ``(T,)`` shared team rewards.
        next_states: ``(T, state_size)``.
        next_observations: ``(T, n_agents, obs_size)``.
        dones: ``(T,)`` termination flags (True only at the final step for
            time-limited episodes).
    """

    def __init__(self):
        self._states = []
        self._observations = []
        self._actions = []
        self._rewards = []
        self._next_states = []
        self._next_observations = []
        self._dones = []
        self._finished = False

    def add(self, state, observations, actions, reward, next_state,
            next_observations, done):
        """Append one transition."""
        if self._finished:
            raise RuntimeError("cannot add to a finished episode")
        self._states.append(np.asarray(state, dtype=np.float64))
        self._observations.append(
            np.asarray(observations, dtype=np.float64)
        )
        self._actions.append(np.asarray(actions, dtype=np.int64))
        self._rewards.append(float(reward))
        self._next_states.append(np.asarray(next_state, dtype=np.float64))
        self._next_observations.append(
            np.asarray(next_observations, dtype=np.float64)
        )
        self._dones.append(bool(done))

    def finish(self):
        """Freeze the episode into stacked arrays; returns ``self``.

        The per-step staging lists are dropped afterwards so a finished
        episode carries (and pickles, for the process-sharded pipe
        transport) only the stacked arrays.
        """
        if self._finished:
            return self
        if not self._states:
            raise ValueError("cannot finish an empty episode")
        self.states = np.stack(self._states)
        self.observations = np.stack(self._observations)
        self.actions = np.stack(self._actions)
        self.rewards = np.asarray(self._rewards)
        self.next_states = np.stack(self._next_states)
        self.next_observations = np.stack(self._next_observations)
        self.dones = np.asarray(self._dones, dtype=bool)
        self._finished = True
        self._states = self._observations = self._actions = None
        self._rewards = self._next_states = self._next_observations = None
        self._dones = None
        return self

    @classmethod
    def from_arrays(cls, states, observations, actions, rewards, next_states,
                    next_observations, dones):
        """Rebuild a finished episode directly from its stacked columns.

        Used by the shared-memory transport to assemble episodes from ring
        payload views without replaying per-step ``add`` calls; the caller
        owns the arrays (copy views before the backing slots are released).
        """
        episode = cls()
        episode.states = np.asarray(states, dtype=np.float64)
        episode.observations = np.asarray(observations, dtype=np.float64)
        episode.actions = np.asarray(actions, dtype=np.int64)
        episode.rewards = np.asarray(rewards, dtype=np.float64)
        episode.next_states = np.asarray(next_states, dtype=np.float64)
        episode.next_observations = np.asarray(
            next_observations, dtype=np.float64
        )
        episode.dones = np.asarray(dones, dtype=bool)
        if episode.rewards.ndim != 1:
            raise ValueError("rewards must be one-dimensional (T,)")
        lengths = {
            array.shape[0] if array.ndim else -1
            for array in (
                episode.states, episode.observations, episode.actions,
                episode.rewards, episode.next_states,
                episode.next_observations, episode.dones,
            )
        }
        if len(lengths) != 1 or episode.rewards.shape[0] < 1:
            raise ValueError(
                f"episode columns disagree on transition count: {lengths}"
            )
        episode._finished = True
        episode._states = episode._observations = episode._actions = None
        episode._rewards = episode._next_states = None
        episode._next_observations = episode._dones = None
        return episode

    @property
    def length(self):
        """Number of transitions."""
        if self._finished:
            return int(self.rewards.shape[0])
        return len(self._rewards)

    @property
    def total_reward(self):
        """Sum of rewards over the episode."""
        if self._finished:
            return float(np.sum(self.rewards))
        return float(np.sum(self._rewards))

    def __len__(self):
        return self.length


class TransitionBatch:
    """All transitions of several episodes, concatenated along time.

    Provides exactly the views the CTDE update needs: the critic sees
    global states; actor ``n`` sees ``observations[:, n]`` and
    ``actions[:, n]``.
    """

    def __init__(self, episodes):
        episodes = list(episodes)
        if not episodes:
            raise ValueError("need at least one episode")
        self.states = np.concatenate([e.states for e in episodes])
        self.observations = np.concatenate([e.observations for e in episodes])
        self.actions = np.concatenate([e.actions for e in episodes])
        self.rewards = np.concatenate([e.rewards for e in episodes])
        self.next_states = np.concatenate([e.next_states for e in episodes])
        self.next_observations = np.concatenate(
            [e.next_observations for e in episodes]
        )
        self.dones = np.concatenate([e.dones for e in episodes])
        self.n_episodes = len(episodes)

    @property
    def size(self):
        """Total transition count."""
        return self.states.shape[0]

    @property
    def n_agents(self):
        """Number of agents per transition."""
        return self.observations.shape[1]

    def agent_observations(self, n):
        """Observations of agent ``n``: ``(size, obs_size)``."""
        return self.observations[:, n, :]

    def agent_actions(self, n):
        """Actions of agent ``n``: ``(size,)``."""
        return self.actions[:, n]

    def __len__(self):
        return self.size


class RolloutBuffer:
    """A bounded store of completed episodes.

    Capacity semantics — explicit because parallel collection lands many
    episodes at once:

    - ``capacity`` counts *episodes*, not transitions.
    - :meth:`add_episode` evicts the oldest stored episode once the cap is
      exceeded (FIFO), which is safe for one-at-a-time serial collection.
    - :meth:`add_episodes` stores a whole batch atomically and *refuses* a
      batch larger than the capacity: silently evicting episodes collected
      in the same epoch would bias the update batch, so that is an error,
      never an eviction.  The trainer sizes its buffer to
      ``max(64, episodes_per_epoch)`` so a full epoch always fits.

    The on-policy trainer clears the buffer each epoch; the cap only
    matters in off-policy experiments.
    """

    def __init__(self, capacity=64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.episodes = []

    def add_episode(self, episode):
        """Store a finished episode (evicting the oldest beyond capacity)."""
        if not getattr(episode, "_finished", False):
            raise ValueError("episode must be finished before storage")
        self.episodes.append(episode)
        if len(self.episodes) > self.capacity:
            self.episodes.pop(0)

    def add_episodes(self, episodes):
        """Store a batch of finished episodes, oldest-first, atomically.

        Raises ``ValueError`` when the batch alone exceeds the capacity —
        same-batch data must never be silently evicted (see the class
        docstring).  Pre-existing episodes may still rotate out FIFO.
        """
        episodes = list(episodes)
        if len(episodes) > self.capacity:
            raise ValueError(
                f"batch of {len(episodes)} episodes exceeds capacity "
                f"{self.capacity}; same-batch eviction is not allowed"
            )
        # Validate the whole batch before storing any of it, so a rejected
        # batch leaves the buffer untouched (atomicity promised above).
        for episode in episodes:
            if not getattr(episode, "_finished", False):
                raise ValueError("episode must be finished before storage")
        for episode in episodes:
            self.add_episode(episode)

    def batch(self):
        """Concatenate everything currently stored."""
        return TransitionBatch(self.episodes)

    def clear(self):
        """Drop all stored episodes (the on-policy reset)."""
        self.episodes.clear()

    @property
    def n_episodes(self):
        """Stored episode count."""
        return len(self.episodes)

    @property
    def n_transitions(self):
        """Total stored transition count."""
        return sum(e.length for e in self.episodes)

    def mean_episode_reward(self):
        """Average total reward across stored episodes."""
        if not self.episodes:
            raise ValueError("buffer is empty")
        return float(np.mean([e.total_reward for e in self.episodes]))

    def __len__(self):
        return len(self.episodes)
