"""Framework checkpointing: save and restore trained policies.

A checkpoint captures every trainable parameter of a framework (all actor
weights and both critics), its metadata, the training epoch, and — since
format version 2 — the trainer's resume state (optimizer moments, the
target-sync counter, and the action/env RNG stream positions), as a single
``.npz`` file plus a JSON header.  Restoring into a freshly built framework
with the same configuration reproduces the policy exactly and, for serial
collection, continues training bit-identically to a run that never stopped.

Writes are atomic and tear-proof: both files are written to temp paths and
``os.replace``d into place, archive first and header last, so a reader that
sees a new header sees a fully written archive.  The header carries a CRC-32
checksum and array count of the archive; :func:`load_checkpoint` verifies
them and rejects torn or mismatched pairs instead of silently loading stale
arrays.  This is the contract the serving tier's hot-reload watcher relies
on (see :mod:`repro.serving.reload`).

Version-1 checkpoints (no checksum, no trainer state) still load for
inference-only use: weights and epoch are restored, resume state is not.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_info",
    "verify_checkpoint",
]

_FORMAT_VERSION = 2

# Namespace separating trainer resume arrays from policy weights inside the
# archive; weights_only loads skip everything under it.
_TRAINER_PREFIX = "trainer/"

_OPTIMIZER_LABELS = (
    ("actor_optimizer", "trainer/actor_opt/"),
    ("critic_optimizer", "trainer/critic_opt/"),
)


def _archive_path(path):
    return path if path.endswith(".npz") else path + ".npz"


def _header_path(archive_path):
    """Derive the JSON header path by slicing off only the trailing ``.npz``.

    A ``str.replace`` would also rewrite ``.npz`` occurrences in parent
    directory names (``runs/v1.npz.backup/model.npz``).
    """
    return archive_path[: -len(".npz")] + ".json"


def _file_crc32(path):
    crc = 0
    with open(path, "rb") as f:
        while chunk := f.read(1 << 20):
            crc = zlib.crc32(chunk, crc)
    return crc


def _jsonable(value):
    """Recursively convert an RNG ``bit_generator.state`` dict to JSON types."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": value.dtype.str}
    if isinstance(value, np.integer):
        return int(value)
    return value


def _from_jsonable(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
        return {key: _from_jsonable(item) for key, item in value.items()}
    return value


def _trainer_kind(trainer):
    if trainer is None:
        return None
    if hasattr(trainer, "critic"):
        return "mapg"
    if hasattr(trainer, "base_vector"):
        return "es"
    return None


def _framework_state(framework):
    """Flatten a framework's parameters into one dict of arrays."""
    state = {}
    for i, actor in enumerate(framework.actors.actors):
        if hasattr(actor, "state_dict"):
            for key, value in actor.state_dict().items():
                state[f"actor.{i}.{key}"] = value
    trainer = framework.trainer
    if trainer is not None and hasattr(trainer, "critic"):
        for key, value in trainer.critic.state_dict().items():
            state[f"critic.{key}"] = value
        for key, value in trainer.target_critic.state_dict().items():
            state[f"target_critic.{key}"] = value
    return state


def _trainer_arrays(framework):
    """Optimizer slot arrays under the ``trainer/`` namespace."""
    arrays = {}
    trainer = framework.trainer
    if trainer is None:
        return arrays
    for attr, prefix in _OPTIMIZER_LABELS:
        optimizer = getattr(trainer, attr, None)
        if optimizer is not None and hasattr(optimizer, "state_dict"):
            for key, value in optimizer.state_dict().items():
                arrays[prefix + key] = np.asarray(value)
    return arrays


def _trainer_header(framework):
    """JSON-serializable trainer resume state (RNG streams + counters)."""
    trainer = framework.trainer
    kind = _trainer_kind(trainer)
    if kind is None:
        return None
    doc = {"kind": kind}
    if hasattr(trainer, "target_syncs"):
        doc["target_syncs"] = int(trainer.target_syncs)
    if kind == "es":
        doc["es_generation"] = int(trainer.optimizer.generation)
    if getattr(trainer, "rng", None) is not None:
        doc["action_rng"] = _jsonable(trainer.rng.bit_generator.state)
    env_rng = getattr(getattr(trainer, "env", None), "rng", None)
    if env_rng is not None:
        doc["env_rng"] = _jsonable(env_rng.bit_generator.state)
    return doc


def save_checkpoint(framework, path):
    """Write a framework checkpoint atomically; returns the archive path.

    Args:
        framework: A built (optionally trained) framework.
        path: Target ``.npz`` path (a ``.json`` header is written alongside).

    Both files go to temp paths first and are ``os.replace``d into place —
    archive before header — so a crash at any point leaves either the old
    pair intact or a detectable (checksum-mismatched) pair, never a torn
    archive behind a matching header.
    """
    archive = _archive_path(path)
    header_path = _header_path(archive)
    os.makedirs(os.path.dirname(archive) or ".", exist_ok=True)

    state = _framework_state(framework)
    state.update(_trainer_arrays(framework))

    tag = f".tmp-{os.getpid()}"
    tmp_archive = archive + tag + ".npz"  # np.savez keeps names ending in .npz
    tmp_header = header_path + tag
    try:
        np.savez(tmp_archive, **state)
        header = {
            "format_version": _FORMAT_VERSION,
            "framework": framework.name,
            "epoch": framework.trainer.epoch if framework.trainer else 0,
            "metadata": framework.metadata,
            "arrays": sorted(state),
            "array_count": len(state),
            "checksum": _file_crc32(tmp_archive),
            "trainer": _trainer_header(framework),
        }
        with open(tmp_header, "w") as f:
            json.dump(header, f, indent=2)
        os.replace(tmp_archive, archive)
        os.replace(tmp_header, header_path)
    finally:
        for tmp in (tmp_archive, tmp_header):
            try:
                os.remove(tmp)
            except OSError:
                pass
    return archive


def checkpoint_info(path):
    """Read a checkpoint's JSON header without loading arrays."""
    with open(_header_path(_archive_path(path))) as f:
        return json.load(f)


def verify_checkpoint(path):
    """Validate a checkpoint pair on disk; returns the header.

    Checks that both files exist, the format version is supported, and —
    for version >= 2 — that the archive's CRC-32 checksum matches the
    header.  Raises ``ValueError`` on a torn or unsupported pair and
    ``FileNotFoundError`` on missing files.  The hot-reload watcher calls
    this before ever loading a candidate checkpoint.
    """
    archive = _archive_path(path)
    header = checkpoint_info(archive)
    version = int(header.get("format_version", 1))
    if version > _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format_version {version} is newer than "
            f"supported version {_FORMAT_VERSION}"
        )
    if version >= 2:
        checksum = _file_crc32(archive)
        if checksum != header.get("checksum"):
            raise ValueError(
                f"torn checkpoint: archive checksum {checksum:#010x} does "
                f"not match header {header.get('checksum'):#010x} "
                f"({archive!r})"
            )
    return header


def _restore_weights(framework, state, header, weights_only):
    """Restore actor and critic parameters; returns leftover trainer arrays."""
    weight_state = {
        key: value
        for key, value in state.items()
        if not key.startswith(_TRAINER_PREFIX)
    }
    expected = _framework_state(framework)
    if weights_only:
        # Actors must be fully restorable; critics are restored only when
        # both sides have them (an ES-trained checkpoint can serve through
        # a critic-bearing inference framework, and vice versa).
        expected_actors = {k for k in expected if k.startswith("actor.")}
        missing = expected_actors - set(weight_state)
        if missing:
            raise KeyError(f"checkpoint mismatch; missing={sorted(missing)}")
        expected_critics = {k for k in expected if not k.startswith("actor.")}
        restore_critics = expected_critics <= set(weight_state)
    else:
        missing = set(expected) - set(weight_state)
        unexpected = set(weight_state) - set(expected)
        if missing or unexpected:
            raise KeyError(
                f"checkpoint mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        restore_critics = True

    for i, actor in enumerate(framework.actors.actors):
        if hasattr(actor, "load_state_dict"):
            prefix = f"actor.{i}."
            actor.load_state_dict(
                {
                    key[len(prefix):]: value
                    for key, value in weight_state.items()
                    if key.startswith(prefix)
                }
            )
    trainer = framework.trainer
    if trainer is not None and hasattr(trainer, "critic") and restore_critics:
        trainer.critic.load_state_dict(
            {
                key[len("critic."):]: value
                for key, value in weight_state.items()
                if key.startswith("critic.")
            }
        )
        trainer.target_critic.load_state_dict(
            {
                key[len("target_critic."):]: value
                for key, value in weight_state.items()
                if key.startswith("target_critic.")
            }
        )
    return {
        key: value
        for key, value in state.items()
        if key.startswith(_TRAINER_PREFIX)
    }


def _restore_trainer(framework, trainer_arrays, header):
    """Restore optimizer moments, sync counter and RNG streams (v2)."""
    trainer = framework.trainer
    if trainer is None:
        return
    trainer.epoch = int(header.get("epoch", 0))
    doc = header.get("trainer") or {}
    saved_kind = doc.get("kind")
    kind = _trainer_kind(trainer)
    if saved_kind is None:
        return
    if saved_kind != kind:
        raise ValueError(
            f"checkpoint trainer kind {saved_kind!r} does not match the "
            f"framework's {kind!r} trainer; load with weights_only=True "
            f"for inference"
        )
    for attr, prefix in _OPTIMIZER_LABELS:
        optimizer = getattr(trainer, attr, None)
        sub = {
            key[len(prefix):]: value
            for key, value in trainer_arrays.items()
            if key.startswith(prefix)
        }
        if optimizer is not None and sub:
            optimizer.load_state_dict(sub)
    if hasattr(trainer, "target_syncs") and "target_syncs" in doc:
        trainer.target_syncs = int(doc["target_syncs"])
    if kind == "es":
        from repro.marl.evolution.population import flat_team_vector

        trainer.base_vector = flat_team_vector(trainer.actors)
        if "es_generation" in doc:
            trainer.optimizer.generation = int(doc["es_generation"])
    if "action_rng" in doc and getattr(trainer, "rng", None) is not None:
        trainer.rng.bit_generator.state = _from_jsonable(doc["action_rng"])
    env_rng = getattr(getattr(trainer, "env", None), "rng", None)
    if "env_rng" in doc and env_rng is not None:
        env_rng.bit_generator.state = _from_jsonable(doc["env_rng"])


def load_checkpoint(framework, path, strict=True, weights_only=False):
    """Restore a checkpoint into a compatible framework; returns ``framework``.

    Args:
        framework: A framework built with the *same configuration* (name,
            env sizes, budgets) as the one that was saved.
        path: Checkpoint path written by :func:`save_checkpoint`.
        strict: When True, the checkpoint's framework name must match.
        weights_only: Restore policy parameters only — no epoch, optimizer,
            counter, or RNG state.  This is the serving path: it tolerates
            trainer mismatches (e.g. an ES-trained checkpoint loaded into a
            MAPG-built inference framework) as long as the actor arrays
            line up.

    Version-2 checkpoints are checksum-verified first and fully restore the
    trainer's resume state; version-1 checkpoints restore weights and epoch
    only (inference-grade).
    """
    archive = _archive_path(path)
    header = verify_checkpoint(archive)
    version = int(header.get("format_version", 1))
    if strict and header["framework"] != framework.name:
        raise ValueError(
            f"checkpoint is for {header['framework']!r}, "
            f"got a {framework.name!r} framework"
        )
    with np.load(archive) as arch:
        state = {key: arch[key] for key in arch.files}
    if version >= 2 and len(state) != int(header.get("array_count", len(state))):
        raise ValueError(
            f"torn checkpoint: archive holds {len(state)} arrays, header "
            f"promises {header.get('array_count')} ({archive!r})"
        )

    trainer_arrays = _restore_weights(framework, state, header, weights_only)
    if weights_only:
        return framework
    if version >= 2:
        _restore_trainer(framework, trainer_arrays, header)
    elif framework.trainer is not None:
        framework.trainer.epoch = int(header.get("epoch", 0))
    return framework
