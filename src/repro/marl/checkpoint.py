"""Framework checkpointing: save and restore trained policies.

A checkpoint captures every trainable parameter of a framework (all actor
weights and both critics), its metadata, and the training epoch, as a
single ``.npz`` file plus a JSON header.  Restoring into a freshly built
framework with the same configuration reproduces the policy exactly —
enabling the evaluate-under-noise / demonstration workflows to reuse
expensive training runs.
"""

from __future__ import annotations

import json
import os

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_info"]

_FORMAT_VERSION = 1


def _framework_state(framework):
    """Flatten a framework's parameters into one dict of arrays."""
    state = {}
    for i, actor in enumerate(framework.actors.actors):
        if hasattr(actor, "state_dict"):
            for key, value in actor.state_dict().items():
                state[f"actor.{i}.{key}"] = value
    if framework.trainer is not None:
        for key, value in framework.trainer.critic.state_dict().items():
            state[f"critic.{key}"] = value
        for key, value in framework.trainer.target_critic.state_dict().items():
            state[f"target_critic.{key}"] = value
    return state


def save_checkpoint(framework, path):
    """Write a framework checkpoint; returns the path.

    Args:
        framework: A built (optionally trained) framework.
        path: Target ``.npz`` path (a ``.json`` header is written alongside).
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    state = _framework_state(framework)
    np.savez(path, **state)
    header = {
        "format_version": _FORMAT_VERSION,
        "framework": framework.name,
        "epoch": framework.trainer.epoch if framework.trainer else 0,
        "metadata": framework.metadata,
        "arrays": sorted(state),
    }
    with open(path.replace(".npz", ".json"), "w") as f:
        json.dump(header, f, indent=2)
    return path


def checkpoint_info(path):
    """Read a checkpoint's JSON header without loading arrays."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with open(path.replace(".npz", ".json")) as f:
        return json.load(f)


def load_checkpoint(framework, path, strict=True):
    """Restore parameters into a compatible framework; returns ``framework``.

    Args:
        framework: A framework built with the *same configuration* (name,
            env sizes, budgets) as the one that was saved.
        path: Checkpoint path written by :func:`save_checkpoint`.
        strict: When True, the checkpoint's framework name must match.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    header = checkpoint_info(path)
    if strict and header["framework"] != framework.name:
        raise ValueError(
            f"checkpoint is for {header['framework']!r}, "
            f"got a {framework.name!r} framework"
        )
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}

    expected = _framework_state(framework)
    missing = set(expected) - set(state)
    unexpected = set(state) - set(expected)
    if missing or unexpected:
        raise KeyError(
            f"checkpoint mismatch; missing={sorted(missing)}, "
            f"unexpected={sorted(unexpected)}"
        )

    for i, actor in enumerate(framework.actors.actors):
        if hasattr(actor, "load_state_dict"):
            prefix = f"actor.{i}."
            actor.load_state_dict(
                {
                    key[len(prefix):]: value
                    for key, value in state.items()
                    if key.startswith(prefix)
                }
            )
    if framework.trainer is not None:
        framework.trainer.critic.load_state_dict(
            {
                key[len("critic."):]: value
                for key, value in state.items()
                if key.startswith("critic.")
            }
        )
        framework.trainer.target_critic.load_state_dict(
            {
                key[len("target_critic."):]: value
                for key, value in state.items()
                if key.startswith("target_critic.")
            }
        )
        framework.trainer.epoch = int(header.get("epoch", 0))
    return framework
