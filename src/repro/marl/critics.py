"""Centralised critics: state-value functions over the global state.

The CTDE trainer uses one critic for the whole team (Section III-A2):

- :class:`QuantumCentralCritic` — the paper's VQC critic.  The global state
  (16 features for N=4) passes through the multi-layer angle encoder onto 4
  qubits; the state value is the mean of the per-qubit ``<Z>`` expectations
  times a fixed ``value_scale``, keeping the trainable count at exactly the
  ansatz's gate budget (Table II's 50).
- :class:`ClassicalCentralCritic` — MLP critic (Comp1's hybrid pairing and
  Comp2/Comp3's classical stacks).

Both expose ``forward`` (differentiable) and ``values`` (numpy fast path,
used for TD targets through the frozen target critic).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module, mlp
from repro.nn.quantum_layer import QuantumLayer
from repro.nn.tensor import Tensor, as_tensor
from repro.quantum.backends import StatevectorBackend
from repro.quantum.gradients import backward as _qbackward

__all__ = [
    "QuantumCentralCritic",
    "ClassicalCentralCritic",
    "critic_pair_stackable",
    "paired_critic_values",
]


class QuantumCentralCritic(Module):
    """VQC state-value function ``V(s) = value_scale * mean_j <Z_j>``.

    Args:
        vqc: Circuit bundle whose encoder consumes the global state.
        rng: Generator for weight initialisation.
        backend: Execution backend.
        gradient_method: Differentiation method.
        value_scale: Fixed output scale mapping ``[-1, 1]`` onto the return
            range (see DESIGN.md "Critic value head").
        trainable_head: When True, adds a 2-parameter affine head instead of
            the fixed scale (breaks the strict 50-parameter budget; used in
            ablations).
    """

    def __init__(
        self,
        vqc,
        rng,
        backend=None,
        gradient_method="adjoint",
        value_scale=30.0,
        trainable_head=False,
    ):
        self.layer = QuantumLayer(
            vqc, rng, backend=backend, gradient_method=gradient_method
        )
        self.value_scale = float(value_scale)
        self.head = Linear(vqc.n_outputs, 1, rng) if trainable_head else None

    def forward(self, states):
        """Differentiable state values, shape ``(B,)``."""
        features = self.layer(as_tensor(states))
        if self.head is not None:
            return self.head(features).reshape(-1)
        return features.mean(axis=1) * self.value_scale

    def values(self, states):
        """Numpy state values (no gradient graph), shape ``(B,)``."""
        states = np.asarray(states, dtype=np.float64)
        if states.ndim == 1:
            states = states[None, :]
        vqc = self.layer.vqc
        expectations = self.layer.backend.run(
            vqc.circuit, vqc.observables, states, self.layer.weights.data
        )
        if self.head is not None:
            out = expectations @ self.head.weight.data + self.head.bias.data
            return out[:, 0]
        return expectations.mean(axis=1) * self.value_scale


class ClassicalCentralCritic(Module):
    """MLP state-value function ``V(s)`` over the global state."""

    def __init__(self, state_size, hidden, rng, activation="tanh"):
        sizes = (state_size, *hidden, 1)
        self.net = mlp(sizes, rng, activation=activation)

    def forward(self, states):
        """Differentiable state values, shape ``(B,)``."""
        return self.net(as_tensor(states)).reshape(-1)

    def values(self, states):
        """Numpy state values (no gradient graph), shape ``(B,)``."""
        states = np.asarray(states, dtype=np.float64)
        if states.ndim == 1:
            states = states[None, :]
        return self.forward(states).data


# -- batched online + target evaluation ----------------------------------------

def critic_pair_stackable(critic, target):
    """Whether one stacked circuit call can serve both critics' forwards.

    True only for a pair of exact, adjoint-differentiated
    :class:`QuantumCentralCritic` instances with the fixed value head and
    structurally identical circuits/observables (the framework presets
    build online and target from the same ansatz seed, so this holds for
    every quantum arm; it is checked — never assumed).
    """
    if not (
        isinstance(critic, QuantumCentralCritic)
        and isinstance(target, QuantumCentralCritic)
    ):
        return False
    if critic.head is not None or target.head is not None:
        return False
    for half in (critic, target):
        layer = half.layer
        if (
            not isinstance(layer.backend, StatevectorBackend)
            or layer.backend.shots is not None
            or layer.gradient_method != "adjoint"
        ):
            return False
    a, b = critic.layer.vqc, target.layer.vqc
    if a.circuit is not b.circuit and (
        a.circuit.n_qubits != b.circuit.n_qubits
        or a.circuit.operations != b.circuit.operations
    ):
        return False
    try:
        same_observables = list(a.observables) == list(b.observables)
    except TypeError:  # pragma: no cover — exotic observables
        same_observables = a.observables is b.observables
    return bool(same_observables)


def paired_critic_values(critic, target, states, next_states):
    """``(values, next_values)`` for the TD update, sharing one forward.

    ``values`` is the online critic's differentiable ``(B,)`` tensor over
    ``states``; ``next_values`` the frozen target critic's numpy ``(B,)``
    over ``next_states``.  On a stackable quantum pair
    (:func:`critic_pair_stackable`) both forwards run as **one** batched
    circuit evaluation: the ``2B`` states interleave row-wise and the two
    weight vectors ride the per-sample weight axis, halving the update's
    forward circuit evaluations.  The backward pass is unchanged — one
    adjoint sweep over the online half only (the target is frozen).  Any
    other pair falls back to the plain two-pass path, bit-identically to
    the pre-batched trainer.
    """
    if not critic_pair_stackable(critic, target):
        return critic(states), target.values(next_states)

    states = np.asarray(states, dtype=np.float64)
    next_states = np.asarray(next_states, dtype=np.float64)
    if states.shape != next_states.shape:
        raise ValueError(
            f"states {states.shape} and next_states {next_states.shape} "
            f"must match"
        )
    batch = states.shape[0]
    vqc = critic.layer.vqc
    circuit, observables = vqc.circuit, vqc.observables
    backend = critic.layer.backend
    online_weights = critic.layer.weights

    stacked = np.empty((2 * batch, states.shape[1]))
    stacked[0::2] = states
    stacked[1::2] = next_states
    weight_rows = np.tile(
        np.stack([online_weights.data, target.layer.weights.data]),
        (batch, 1),
    )
    outputs = backend.run(circuit, observables, stacked, weight_rows)
    online_out, target_out = outputs[0::2], outputs[1::2]
    next_values = target_out.mean(axis=1) * target.value_scale

    n_outputs = online_out.shape[1]
    scale = critic.value_scale

    def backward_fn(grad):
        upstream = np.broadcast_to(
            np.asarray(grad, dtype=np.float64)[:, None] * (scale / n_outputs),
            online_out.shape,
        )
        _, weight_grads = _qbackward(
            circuit, observables, states, online_weights.data, upstream,
            method="adjoint",
        )
        online_weights._accumulate(weight_grads)

    values = Tensor._from_op(
        online_out.mean(axis=1) * scale, (online_weights,), backward_fn
    )
    return values, next_values
