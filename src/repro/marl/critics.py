"""Centralised critics: state-value functions over the global state.

The CTDE trainer uses one critic for the whole team (Section III-A2):

- :class:`QuantumCentralCritic` — the paper's VQC critic.  The global state
  (16 features for N=4) passes through the multi-layer angle encoder onto 4
  qubits; the state value is the mean of the per-qubit ``<Z>`` expectations
  times a fixed ``value_scale``, keeping the trainable count at exactly the
  ansatz's gate budget (Table II's 50).
- :class:`ClassicalCentralCritic` — MLP critic (Comp1's hybrid pairing and
  Comp2/Comp3's classical stacks).

Both expose ``forward`` (differentiable) and ``values`` (numpy fast path,
used for TD targets through the frozen target critic).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module, mlp
from repro.nn.quantum_layer import QuantumLayer
from repro.nn.tensor import as_tensor

__all__ = ["QuantumCentralCritic", "ClassicalCentralCritic"]


class QuantumCentralCritic(Module):
    """VQC state-value function ``V(s) = value_scale * mean_j <Z_j>``.

    Args:
        vqc: Circuit bundle whose encoder consumes the global state.
        rng: Generator for weight initialisation.
        backend: Execution backend.
        gradient_method: Differentiation method.
        value_scale: Fixed output scale mapping ``[-1, 1]`` onto the return
            range (see DESIGN.md "Critic value head").
        trainable_head: When True, adds a 2-parameter affine head instead of
            the fixed scale (breaks the strict 50-parameter budget; used in
            ablations).
    """

    def __init__(
        self,
        vqc,
        rng,
        backend=None,
        gradient_method="adjoint",
        value_scale=30.0,
        trainable_head=False,
    ):
        self.layer = QuantumLayer(
            vqc, rng, backend=backend, gradient_method=gradient_method
        )
        self.value_scale = float(value_scale)
        self.head = Linear(vqc.n_outputs, 1, rng) if trainable_head else None

    def forward(self, states):
        """Differentiable state values, shape ``(B,)``."""
        features = self.layer(as_tensor(states))
        if self.head is not None:
            return self.head(features).reshape(-1)
        return features.mean(axis=1) * self.value_scale

    def values(self, states):
        """Numpy state values (no gradient graph), shape ``(B,)``."""
        states = np.asarray(states, dtype=np.float64)
        if states.ndim == 1:
            states = states[None, :]
        vqc = self.layer.vqc
        expectations = self.layer.backend.run(
            vqc.circuit, vqc.observables, states, self.layer.weights.data
        )
        if self.head is not None:
            out = expectations @ self.head.weight.data + self.head.bias.data
            return out[:, 0]
        return expectations.mean(axis=1) * self.value_scale


class ClassicalCentralCritic(Module):
    """MLP state-value function ``V(s)`` over the global state."""

    def __init__(self, state_size, hidden, rng, activation="tanh"):
        sizes = (state_size, *hidden, 1)
        self.net = mlp(sizes, rng, activation=activation)

    def forward(self, states):
        """Differentiable state values, shape ``(B,)``."""
        return self.net(as_tensor(states)).reshape(-1)

    def values(self, states):
        """Numpy state values (no gradient graph), shape ``(B,)``."""
        states = np.asarray(states, dtype=np.float64)
        if states.ndim == 1:
            states = states[None, :]
        return self.forward(states).data
