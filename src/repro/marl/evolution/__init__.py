"""Gradient-free training: evolutionary strategies over actor teams.

The second training engine next to the gradient-based CTDE loop — see
:mod:`repro.marl.evolution.trainer` for the generation loop,
:mod:`repro.marl.evolution.es` for the math, and
:mod:`repro.marl.evolution.population` for how a population of candidate
teams multiplexes onto the lockstep env rows and the per-sample-weight
circuit axis.
"""

from repro.marl.evolution.collector import PopulationRolloutCollector
from repro.marl.evolution.es import ESOptimizer, centered_ranks, perturb_population
from repro.marl.evolution.population import (
    PopulationActorGroup,
    flat_team_vector,
    load_team_vector,
)
from repro.marl.evolution.trainer import ESTrainer

__all__ = [
    "ESTrainer",
    "ESOptimizer",
    "PopulationActorGroup",
    "PopulationRolloutCollector",
    "centered_ranks",
    "perturb_population",
    "flat_team_vector",
    "load_team_vector",
]
