"""Sharded population rollouts: ES generations over the worker pool.

:class:`PopulationRolloutCollector` is the process-sharded engine of the ES
trainer — a thin specialisation of
:class:`~repro.marl.parallel.ShardedRolloutCollector` where the lockstep
rows multiplex population members instead of replicating one team:

- the ``actors`` handed to the base class (and therefore mirrored into
  every worker) is a :class:`~repro.marl.evolution.population.\
PopulationActorGroup`, whose row-to-member mapping each worker applies to
  its own shard via the ``row_offset`` the worker loop sets from the
  shard's first global row;
- the per-collect weight broadcast is replaced by the ES generation
  broadcast: only the **base** flat team vector, ``sigma``, the population
  size and the per-pair noise seeds travel to the workers (a few hundred
  bytes regardless of population size), and every worker reconstructs the
  identical perturbed population locally
  (:func:`~repro.marl.evolution.es.perturb_population`).

Everything else — shard layout, per-row env streams, the global
action-sampling stream replay, both transition transports, crash
restart-and-requeue from checkpoints, the ``(round, row)`` reassembly
order — is inherited unchanged, which is exactly why sharded ES is
bit-identical to in-process ES for any worker count over either transport
(pinned by the ES axis of the unified cross-engine harness).  That
includes the ragged-env round protocol, but the ES *trainer* rejects
ragged envs up front: its fitness attribution maps episode position to
population member positionally, which only holds under lockstep
completion (see :class:`~repro.marl.evolution.trainer.ESTrainer`).
"""

from __future__ import annotations

from repro.marl.evolution.population import PopulationActorGroup
from repro.marl.parallel.collector import ShardedRolloutCollector

__all__ = ["PopulationRolloutCollector"]


class PopulationRolloutCollector(ShardedRolloutCollector):
    """Collect a population's episodes across worker processes.

    Args:
        env: The serial reference environment (row 0 shares its stream, as
            in the base class).
        population_group: The parent-side :class:`PopulationActorGroup`
            (its template is mirrored into the workers at pool start).
        n_envs: Total lockstep rows ``k * P`` (``k`` copies per member).
        n_workers: Worker process count (clamped to ``n_envs``).
        **kwargs: Transport and start-method knobs of the base class.
    """

    def __init__(self, env, population_group, n_envs, n_workers, **kwargs):
        if not isinstance(population_group, PopulationActorGroup):
            raise TypeError(
                "PopulationRolloutCollector needs a PopulationActorGroup, "
                f"got {type(population_group).__name__}"
            )
        if n_envs % population_group.population:
            raise ValueError(
                f"n_envs={n_envs} must be a multiple of the population "
                f"size {population_group.population} (every member owns "
                f"the same number of rows)"
            )
        self._generation = None
        super().__init__(env, population_group, n_envs, n_workers, **kwargs)

    def set_generation(self, base, seeds, sigma):
        """Stage the next collect's generation broadcast.

        Must be called before every :meth:`collect`; the broadcast replaces
        the base class's per-actor weight states, and a crash-restarted
        worker replays it bit-exactly (the seeds regenerate the noise).
        """
        self._generation = {
            "kind": "es-generation",
            "base": base,
            "seeds": tuple(seeds),
            "sigma": float(sigma),
            "population": self.actors.population,
        }
        # Keep the parent-side group on the same generation, so anything
        # inspecting it (tests, repr) matches what the workers evaluate.
        self.actors.load_broadcast(self._generation)

    def _actor_weight_states(self):
        """The per-collect broadcast: the ES generation, not weight dicts."""
        if self._generation is None:
            raise RuntimeError(
                "call set_generation(base, seeds, sigma) before collect()"
            )
        return self._generation
