"""OpenAI-style evolutionary strategies over a flat parameter vector.

The math of the gradient-free training engine, kept free of any rollout or
actor machinery so it can be unit-tested against closed forms and replayed
identically on both sides of the process boundary:

- **Antithetic Gaussian perturbations.**  A population of ``P`` candidate
  vectors is ``theta + sigma * eps`` where members ``2i`` and ``2i + 1``
  share one noise draw with opposite signs (``+eps_i`` / ``-eps_i``) —
  the variance-reduction trick of Salimans et al. 2017, also used by the
  quantum-MARL ES line (Kölle et al. 2023/2024).  An odd population keeps
  its last member unpaired (positive sign).
- **Seed-deterministic noise reconstruction.**  Noise is never shipped
  anywhere: each antithetic pair is identified by one integer seed, and
  :func:`pair_noise` regenerates the draw from it.  The parent broadcasts
  only ``(base vector, sigma, seeds)`` to rollout workers — a few hundred
  bytes — and every process reconstructs the exact same population.
- **Centered-rank fitness shaping.**  Raw returns are replaced by their
  ranks mapped onto ``[-0.5, 0.5]``, making the update invariant to reward
  scale and robust to outliers.
- **The update.**  ``theta += lr * (g - weight_decay * theta)`` with
  ``g = (1 / (P * sigma)) * sum_j u_j * eps_j`` over the signed
  per-member noise — plain SGD on the rank-shaped gradient estimate.

Everything here is pure numpy on ``(P, D)`` arrays; the mapping of members
onto env rows and circuit evaluations lives in
:mod:`repro.marl.evolution.population`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "n_pairs",
    "draw_generation_seeds",
    "pair_noise",
    "population_noise",
    "perturb_population",
    "centered_ranks",
    "es_gradient",
    "ESOptimizer",
]

# Seeds are drawn from the trainer's action stream as bounded integers so
# they cross process boundaries as plain python ints.
SEED_BOUND = 2**31 - 1


def n_pairs(population):
    """Number of noise draws (= antithetic pairs, ceil) for a population."""
    if population < 1:
        raise ValueError("population must be >= 1")
    return (int(population) + 1) // 2


def draw_generation_seeds(rng, population):
    """One integer seed per antithetic pair, drawn from ``rng``.

    Drawn parent-side once per generation (before collection), so every
    engine — in-process or sharded — sees the identical seed tuple and the
    action-sampling stream advances the same way everywhere.
    """
    return tuple(
        int(s) for s in rng.integers(0, SEED_BOUND, size=n_pairs(population))
    )


def pair_noise(seed, dim):
    """The standard-normal draw of one antithetic pair, regenerated from its
    seed (identical on every process, by construction)."""
    return np.random.default_rng(int(seed)).standard_normal(int(dim))


def population_noise(seeds, population, dim):
    """Signed per-member noise ``(P, D)``: member ``2i`` gets ``+eps_i``,
    member ``2i + 1`` gets ``-eps_i``."""
    population = int(population)
    if len(seeds) != n_pairs(population):
        raise ValueError(
            f"population {population} needs {n_pairs(population)} pair "
            f"seeds, got {len(seeds)}"
        )
    noise = np.empty((population, int(dim)))
    for pair, seed in enumerate(seeds):
        eps = pair_noise(seed, dim)
        member = 2 * pair
        noise[member] = eps
        if member + 1 < population:
            noise[member + 1] = -eps
    return noise


def perturb_population(base, seeds, sigma, population):
    """Candidate vectors ``(P, D) = base + sigma * signed_noise``.

    With ``sigma == 0`` (the evaluation-only mode) no noise is generated at
    all — the population is ``P`` exact copies of ``base``, so
    ``population=1, sigma=0`` reproduces plain unperturbed evaluation
    bit-for-bit.
    """
    base = np.asarray(base, dtype=np.float64)
    population = int(population)
    if sigma == 0.0:
        return np.tile(base, (population, 1))
    noise = population_noise(seeds, population, base.size)
    return base[None, :] + float(sigma) * noise


def centered_ranks(values):
    """Rank-shaped fitness in ``[-0.5, 0.5]`` (ascending: best gets 0.5).

    Ties are broken by position (numpy argsort stability), matching the
    reference OpenAI-ES implementation.  A single-member population shapes
    to ``[0.0]`` — no preference, hence no update.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("fitness must be a flat vector")
    population = values.size
    if population == 1:
        return np.zeros(1)
    ranks = np.empty(population)
    ranks[np.argsort(values, kind="stable")] = np.arange(population)
    return ranks / (population - 1) - 0.5


def es_gradient(shaped, seeds, sigma, population, dim):
    """The rank-shaped gradient estimate ``(D,)``.

    ``g = (1 / (P * sigma)) * sum_j shaped_j * noise_j`` with the signed
    antithetic noise reconstructed from ``seeds`` — ascent direction on the
    shaped fitness.
    """
    if sigma <= 0:
        raise ValueError("es_gradient needs sigma > 0")
    noise = population_noise(seeds, population, dim)
    shaped = np.asarray(shaped, dtype=np.float64)
    return noise.T @ shaped / (int(population) * float(sigma))


class ESOptimizer:
    """SGD on the rank-shaped ES gradient, with weight decay.

    Args:
        lr: Step size on the gradient estimate.
        sigma: Perturbation scale (must match the scale the population was
            sampled with).
        weight_decay: Decay coefficient applied inside the update
            (``theta += lr * (g - weight_decay * theta)``).

    Stateless across steps (plain SGD); kept as a class so a later
    momentum/Adam variant slots in without touching the trainer.
    """

    def __init__(self, lr, sigma, weight_decay=0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = float(lr)
        self.sigma = float(sigma)
        self.weight_decay = float(weight_decay)
        self.generation = 0

    def step(self, base, fitness, seeds):
        """One generation's update; returns ``(new_base, info)``.

        ``info`` carries the shaped fitness and gradient norm for metrics.
        A degenerate generation — single member, or ``sigma == 0`` — is a
        pure evaluation: the base is returned unchanged (bit-identical, no
        decay either, so evaluation mode never drifts the weights).
        """
        base = np.asarray(base, dtype=np.float64)
        fitness = np.asarray(fitness, dtype=np.float64)
        population = fitness.size
        self.generation += 1
        if population == 1 or self.sigma == 0.0:
            return base, {"grad_norm": 0.0, "shaped": np.zeros(population)}
        shaped = centered_ranks(fitness)
        gradient = es_gradient(
            shaped, seeds, self.sigma, population, base.size
        )
        new_base = base + self.lr * (gradient - self.weight_decay * base)
        return new_base, {
            "grad_norm": float(np.linalg.norm(gradient)),
            "shaped": shaped,
        }

    def __repr__(self):
        return (
            f"ESOptimizer(lr={self.lr}, sigma={self.sigma}, "
            f"weight_decay={self.weight_decay}, generation={self.generation})"
        )
