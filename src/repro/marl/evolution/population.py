"""A population of candidate actor teams behind one ActorGroup interface.

:class:`PopulationActorGroup` lets ``P`` perturbed copies of an actor team
ride the existing rollout engines unchanged: it *is* an
:class:`~repro.marl.actors.ActorGroup` as far as
:class:`~repro.marl.rollout.VectorRolloutCollector` and the process-sharded
worker loop are concerned, but its ``batch_probabilities`` routes each env
row to its owning population member's weights.

Row-to-member mapping
---------------------

Lockstep env row ``e`` (global index) belongs to member ``e % P``: members
are interleaved round-robin, so with ``k`` copies per member the global
layout is ``k`` repeats of the population.  The interleaving is what makes
the stacked quantum path line up with the per-sample-weight axis of
:class:`~repro.quantum.compile.CompiledCircuit`: flattening observations
copy-major gives row ``b = e * n_agents + a``, whose weight row is
``member(e) * n_agents + a`` — exactly the ``b``-th row of the
``(n_rows * n_agents, n_weights)`` weight matrix this class builds.  A
worker that owns rows ``[first_row, first_row + n)`` sets ``row_offset``
and the same expansion yields its shard's slice of that matrix, so the
whole generation is **one** circuit evaluation per env step on every
process, with the compiled suffix unitaries cached for the generation
(weights only change between generations).

Two evaluation paths, one semantic contract:

- **stacked** (default on exact quantum teams): all members' weights enter
  a single per-sample-weight circuit call.
- **member loop** (reference, and the fallback for classical teams or
  shot/noise backends): members are evaluated one at a time by loading
  each candidate vector into the template team.  The ES equivalence suite
  pins the two paths bit-identical; the loop is the semantic oracle,
  exactly as the serial rollout loop is for the vectorized engines.
"""

from __future__ import annotations

import numpy as np

from repro.marl.actors import ActorGroup, QuantumActorGroup, _stable_softmax_np
from repro.marl.evolution import es as _es

__all__ = [
    "flat_team_vector",
    "load_team_vector",
    "PopulationActorGroup",
]


def flat_team_vector(actors):
    """The team's trainable parameters as one flat float64 vector.

    Concatenates ``actors.parameters()`` in order (agent-major) — the
    vector ES perturbs and updates.
    """
    params = actors.parameters()
    if not params:
        raise ValueError(
            "actor team has no trainable parameters; ES cannot train it"
        )
    return np.concatenate([np.asarray(p.data, dtype=np.float64).ravel()
                           for p in params])


def load_team_vector(actors, vector):
    """Write a flat vector back into the team's parameters (in order)."""
    vector = np.asarray(vector, dtype=np.float64)
    cursor = 0
    for param in actors.parameters():
        chunk = vector[cursor:cursor + param.data.size]
        if chunk.size != param.data.size:
            raise ValueError(
                f"vector of size {vector.size} too short for team "
                f"parameters"
            )
        param.data[...] = chunk.reshape(param.data.shape)
        cursor += param.data.size
    if cursor != vector.size:
        raise ValueError(
            f"vector of size {vector.size} does not match team parameter "
            f"count {cursor}"
        )


class PopulationActorGroup(ActorGroup):
    """``P`` candidate teams multiplexed over the lockstep env rows.

    Args:
        template: The live actor team (quantum or classical) whose
            *structure* every member shares.  Quantum teams with an exact
            statevector backend get the stacked single-circuit-call path;
            anything else falls back to the per-member reference loop.
        member_vectors: ``(P, D)`` candidate flat team vectors (see
            :func:`flat_team_vector`); defaults to one member holding the
            template's current weights.
        row_offset: Global index of this process's first env row (0 in the
            parent; a worker's shard start inside the sharded engine) —
            the row-to-member mapping is ``(row_offset + e) % P``.
        stacked: Force the per-member reference loop with ``False`` (the
            ES equivalence suite's oracle mode).
    """

    def __init__(self, template, member_vectors=None, row_offset=0,
                 stacked=True):
        super().__init__(template.actors)
        self.template = template
        if member_vectors is None:
            member_vectors = flat_team_vector(template)[None, :]
        self.member_vectors = np.asarray(member_vectors, dtype=np.float64)
        if self.member_vectors.ndim != 2:
            raise ValueError("member_vectors must have shape (P, D)")
        self.row_offset = int(row_offset)
        self.stacked = bool(stacked)
        self._row_weights_cache = None  # (n_rows, matrix); see _member_row_weights
        # The stacked path needs every actor's trainable state to be the
        # single per-agent weight vector the shared circuit consumes (true
        # for QuantumActorGroup teams; MLP teams have per-layer matrices).
        self._quantum_stackable = (
            isinstance(template, QuantumActorGroup)
            and template._fast_backend is not None
            and all(
                len(actor.parameters()) == 1
                and actor.parameters()[0].data.ndim == 1
                for actor in template.actors
            )
        )

    # -- population bookkeeping ----------------------------------------------

    @property
    def population(self):
        """Population size ``P``."""
        return self.member_vectors.shape[0]

    def set_members(self, member_vectors):
        """Adopt a new generation's candidate vectors ``(P, D)``."""
        member_vectors = np.asarray(member_vectors, dtype=np.float64)
        if member_vectors.ndim != 2:
            raise ValueError("member_vectors must have shape (P, D)")
        self.member_vectors = member_vectors
        self._row_weights_cache = None

    def set_row_offset(self, row_offset):
        """Adopt this process's global first-row index (worker shards)."""
        self.row_offset = int(row_offset)
        self._row_weights_cache = None

    def load_broadcast(self, payload):
        """Rebuild the generation from a ``(base, sigma, seeds)`` broadcast.

        The sharded engine ships only the base vector plus the pair seeds
        (see :mod:`repro.marl.evolution.es`); every worker reconstructs the
        identical perturbed population locally.
        """
        self.set_members(
            _es.perturb_population(
                payload["base"],
                payload["seeds"],
                payload["sigma"],
                payload["population"],
            )
        )

    def members_for_rows(self, n_rows):
        """Owning member index for each of this process's ``n_rows`` rows."""
        return (self.row_offset + np.arange(int(n_rows))) % self.population

    # -- evaluation -----------------------------------------------------------

    def act(self, observations, rng, greedy=False):
        """Unsupported: population evaluation is batched-only by design."""
        raise RuntimeError(
            "PopulationActorGroup routes env rows to population members; "
            "use act_batch over the lockstep rows, not the serial act()"
        )

    def batch_probabilities(self, observations):
        """``(n_rows, n_agents, A)`` — each row under its member's weights."""
        observations = np.asarray(observations, dtype=np.float64)
        if self.stacked and self._quantum_stackable:
            return self._stacked_probabilities(observations)
        return self._member_loop_probabilities(observations)

    def _member_row_weights(self, n_rows):
        """The per-sample weight matrix for ``n_rows`` rows of observations.

        Row ``e * n_agents + a`` of the (conceptual) full matrix holds
        member ``(row_offset + e) % P``'s weight vector for agent ``a``.
        When this process's rows cover whole population periods
        (``row_offset`` and ``n_rows`` both multiples of ``P`` — the
        in-process engines always do) only the one-period
        ``(P * n_agents, n_weights)`` matrix is returned and the circuit
        batch cycles it group-major (row ``b`` uses weight row ``b % G``),
        so the compiled tier caches exactly the ``P * n_agents`` distinct
        suffix unitaries however many env copies each member owns.
        Misaligned worker shards fall back to the fully expanded per-row
        matrix.  Constant within a generation either way (cached here,
        invalidated by :meth:`set_members` / :meth:`set_row_offset`).
        """
        n_rows = int(n_rows)
        if (
            self._row_weights_cache is not None
            and self._row_weights_cache[0] == n_rows
        ):
            return self._row_weights_cache[1]
        n_agents = self.n_agents
        population = self.population
        team_weights = self.member_vectors.reshape(
            population, n_agents, -1
        )
        if self.row_offset % population == 0 and n_rows % population == 0:
            matrix = team_weights.reshape(population * n_agents, -1)
        else:
            matrix = team_weights[self.members_for_rows(n_rows)].reshape(
                n_rows * n_agents, -1
            )
        self._row_weights_cache = (n_rows, matrix)
        return matrix

    def _stacked_probabilities(self, observations):
        """One per-sample-weight circuit evaluation for every row and agent."""
        template = self.template
        n_rows, n_agents = observations.shape[0], observations.shape[1]
        flat_obs = observations.reshape(n_rows * n_agents, -1)
        weights = self._member_row_weights(n_rows)
        if template._compiled is not None:
            outputs = template._compiled.run(flat_obs, weights)
        else:
            # The uncompiled backend wants one weight row per batch row;
            # tile a one-period matrix out to the full batch.
            if weights.shape[0] != flat_obs.shape[0]:
                weights = np.tile(
                    weights, (flat_obs.shape[0] // weights.shape[0], 1)
                )
            outputs = template._fast_backend.run(
                template._circuit, template._observables, flat_obs, weights
            )
        head = template._head_actor
        if head.policy_head == "born":
            probs = head._born_probs_np(outputs)
        else:
            probs = _stable_softmax_np(outputs * template._logit_scale)
        return probs.reshape(n_rows, n_agents, -1)

    def _member_loop_probabilities(self, observations):
        """Reference path: load each member into the template and evaluate.

        Restores the template's original weights afterwards so the loop
        leaves no trace on the live team (the trainer's base vector stays
        authoritative either way).
        """
        n_rows = observations.shape[0]
        members = self.members_for_rows(n_rows)
        out = None
        saved = flat_team_vector(self.template)
        try:
            for member in np.unique(members):
                rows = np.flatnonzero(members == member)
                load_team_vector(self.template, self.member_vectors[member])
                probs = self.template.batch_probabilities(observations[rows])
                if out is None:
                    out = np.empty((n_rows,) + probs.shape[1:])
                out[rows] = probs
        finally:
            load_team_vector(self.template, saved)
        return out

    def __repr__(self):
        return (
            f"PopulationActorGroup(population={self.population}, "
            f"n_agents={self.n_agents}, row_offset={self.row_offset}, "
            f"stacked={self.stacked and self._quantum_stackable})"
        )
