"""The gradient-free training loop: evolutionary strategies over VQC teams.

:class:`ESTrainer` is the second training engine next to
:class:`~repro.marl.trainer.CTDETrainer`.  Instead of backpropagating
through the circuits it searches weight space directly — the approach the
quantum-MARL ES line (Kölle et al. 2023, 2024) showed matches or beats
gradient training on exactly this class of VQC multi-agent policies while
sidestepping barren plateaus.  One **generation** (= one ``train_epoch``):

1. draw one seed per antithetic noise pair from the trainer stream
   (parent-side, so every engine sees the identical draw);
2. build the population of ``P`` perturbed candidate team vectors
   (:func:`~repro.marl.evolution.es.perturb_population`);
3. roll out ``episodes_per_epoch`` episodes **per member** with the whole
   population multiplexed over ``k * P`` lockstep env rows
   (:class:`~repro.marl.evolution.population.PopulationActorGroup`) — on
   exact quantum teams every env step is a *single* per-sample-weight
   circuit evaluation covering all ``P * k * n_agents`` observations,
   riding the compiled-program tier with the suffix unitaries cached for
   the generation;
4. score each member by its mean episode return, shape by centered ranks,
   and apply the ES update to the base vector
   (:class:`~repro.marl.evolution.es.ESOptimizer`);
5. write the new base into the live actors (so evaluation and checkpoints
   always see the current mean policy).

Engines, selected by ``TrainingConfig.rollout_mode`` exactly like the
gradient trainer's collection engines:

- ``"serial"`` — the reference: the same lockstep vector env, but members
  evaluated one at a time through the template team (the semantic oracle
  for the stacked weight math);
- ``"vector"`` (and ``"auto"`` without workers) — in-process stacked
  single-circuit-call evaluation;
- ``"sharded"`` (and ``"auto"`` with workers) — the population sharded
  across worker processes over either transition transport, receiving only
  base-plus-seeds broadcasts
  (:class:`~repro.marl.evolution.collector.PopulationRolloutCollector`).

All engines are bit-identical — same episodes, fitness, updates, and RNG
stream positions — pinned by the ES axis of the unified cross-engine
harness; and ``population=1, sigma=0`` reproduces plain unperturbed
evaluation of the team bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.envs.vector import make_vector_env
from repro.marl.evolution import es as _es
from repro.marl.evolution.collector import PopulationRolloutCollector
from repro.marl.evolution.population import (
    PopulationActorGroup,
    flat_team_vector,
    load_team_vector,
)
from repro.marl.metrics import (
    MetricsHistory,
    population_fitness_summary,
    publish_epoch_record,
)
from repro.marl.rollout import VectorRolloutCollector
from repro.marl.trainer import rollout_episode

__all__ = ["ESTrainer"]


class ESTrainer:
    """Evolutionary-strategies trainer over an actor team (no critic).

    Args:
        env: A :class:`~repro.envs.base.MultiAgentEnv` with fixed-length
            episodes — the rollout engines handle ragged envs, but ES
            fitness attribution is positional and requires lockstep
            completion (rejected up front otherwise).
        actor_group: The live :class:`~repro.marl.actors.ActorGroup` whose
            weights ES trains in place.
        config: :class:`~repro.config.TrainingConfig` with
            ``trainer="es"``.
        rng: Generator for noise seeds and action sampling (the single
            stream whose positions the determinism contract tracks).
    """

    def __init__(self, env, actor_group, config, rng):
        if env.n_agents != actor_group.n_agents:
            raise ValueError(
                f"env has {env.n_agents} agents, group has "
                f"{actor_group.n_agents}"
            )
        if config.trainer != "es":
            raise ValueError(
                f"ESTrainer needs TrainingConfig(trainer='es'), "
                f"got trainer={config.trainer!r}"
            )
        if getattr(env, "has_data_dependent_termination", False):
            # member_fitness maps episode j to member j % n_envs % P — a
            # positional rule that only holds when every row finishes an
            # episode every round (lockstep completion).  Ragged envs break
            # it silently, so reject them up front.
            raise ValueError(
                "ESTrainer needs fixed-length episodes: its fitness "
                "attribution maps episodes to population members by "
                "position, which data-dependent termination (e.g. "
                "terminate_on_overflow) breaks; use the gradient trainer "
                "for ragged envs"
            )
        self.env = env
        self.actors = actor_group
        self.config = config
        self.rng = rng
        self.history = MetricsHistory()
        self.epoch = 0

        self.base_vector = flat_team_vector(actor_group)
        self.optimizer = _es.ESOptimizer(
            lr=config.effective_es_lr,
            sigma=config.effective_es_sigma,
            weight_decay=config.effective_es_weight_decay,
        )
        self._population_group = PopulationActorGroup(
            actor_group,
            member_vectors=np.tile(
                self.base_vector, (self.population, 1)
            ),
            stacked=self.stacked_evaluation,
        )
        self._collector = None
        self._sharded_collector = None

    # -- engine selection -----------------------------------------------------

    @property
    def population(self):
        """Population size ``P``."""
        return self.config.effective_es_population

    @property
    def sigma(self):
        """Perturbation scale of the current configuration."""
        return self.config.effective_es_sigma

    @property
    def envs_per_member(self):
        """Lockstep env copies each member owns (the config's divisor
        clamp on ``rollout_envs`` — see ``effective_rollout_envs``)."""
        return self.config.effective_rollout_envs

    @property
    def n_envs(self):
        """Total lockstep rows: ``envs_per_member * population``."""
        return self.envs_per_member * self.population

    @property
    def rollout_workers(self):
        """Effective worker count (clamped to the total row count)."""
        return self.config.effective_rollout_workers

    @property
    def sharded_rollouts(self):
        """Whether generations are collected by the worker-pool engine."""
        mode = self.config.rollout_mode
        if mode == "sharded":
            return True
        return mode == "auto" and self.rollout_workers > 1

    @property
    def stacked_evaluation(self):
        """Whether the population is evaluated through the stacked
        per-sample-weight path (``rollout_mode="serial"`` forces the
        per-member reference loop instead)."""
        return self.config.rollout_mode != "serial"

    # -- collection -----------------------------------------------------------

    def vector_collector(self):
        """The lazily built in-process engine (stacked or member-loop)."""
        if self._collector is None:
            vector_env = make_vector_env(self.env, self.n_envs)
            self._collector = VectorRolloutCollector(
                vector_env, self._population_group
            )
        return self._collector

    def sharded_collector(self):
        """The lazily built worker-pool engine (persists across
        generations; shut down via :meth:`close`)."""
        if self._sharded_collector is None:
            self._sharded_collector = PopulationRolloutCollector(
                self.env,
                self._population_group,
                n_envs=self.n_envs,
                n_workers=self.rollout_workers,
                transport=self.config.rollout_transport,
            )
        return self._sharded_collector

    def collect_generation(self, seeds):
        """Roll out the whole population once; returns ``(episodes, stats)``.

        Episodes arrive in the engines' shared completion order —
        round-major, global-row-minor — so episode ``j`` belongs to member
        ``j % n_envs % population``.
        """
        n_episodes = self.config.episodes_per_epoch * self.population
        if self.sharded_rollouts:
            collector = self.sharded_collector()
            collector.set_generation(self.base_vector, seeds, self.sigma)
            return collector.collect(n_episodes, self.rng, greedy=False)
        self._population_group.set_members(
            _es.perturb_population(
                self.base_vector, seeds, self.sigma, self.population
            )
        )
        return self.vector_collector().collect(
            n_episodes, self.rng, greedy=False
        )

    def member_fitness(self, stats):
        """Mean total reward per member from a generation's episode stats."""
        returns = np.array([s["total_reward"] for s in stats])
        members = np.arange(returns.size) % self.n_envs % self.population
        fitness = np.zeros(self.population)
        for member in range(self.population):
            fitness[member] = returns[members == member].mean()
        return fitness

    # -- training -------------------------------------------------------------

    def train_epoch(self):
        """One ES generation: collect, score, update, record metrics.

        Traced like the gradient engine: one ``trainer.epoch`` span roots
        the generation's tree, and sharded workers join it over the
        transport seam.
        """
        if obs.enabled():
            obs.begin_trace(label="trainer")
        with obs.span("trainer.epoch"):
            return self._train_epoch()

    def _train_epoch(self):
        cfg = self.config
        # Seeds are drawn parent-side from the shared stream *before*
        # collection, identically under every engine.  sigma=0 (the
        # evaluation-only mode) draws nothing, so it consumes exactly the
        # streams plain unperturbed collection would.
        seeds = (
            ()
            if self.sigma == 0.0
            else _es.draw_generation_seeds(self.rng, self.population)
        )
        with obs.span("trainer.rollout"):
            episodes, stats = self.collect_generation(seeds)
        with obs.span("trainer.update"):
            fitness = self.member_fitness(stats)
            self.base_vector, info = self.optimizer.step(
                self.base_vector, fitness, seeds
            )
            # Keep the live team on the updated mean policy: greedy
            # evaluation, checkpoints, and a later MAPG fine-tune all read
            # these weights.
            load_team_vector(self.actors, self.base_vector)

        self.epoch += 1
        record = {
            "epoch": self.epoch,
            "total_reward": float(
                np.mean([s["total_reward"] for s in stats])
            ),
            "mean_queue": float(np.mean([s["mean_queue"] for s in stats])),
            "empty_ratio": float(np.mean([s["empty_ratio"] for s in stats])),
            "overflow_ratio": float(
                np.mean([s["overflow_ratio"] for s in stats])
            ),
            "grad_norm": info["grad_norm"],
        }
        record.update(population_fitness_summary(fitness))
        self.history.append(record)
        publish_epoch_record(record)
        return record

    def train(self, n_epochs=None, callback=None):
        """Run generations; same loop contract as ``CTDETrainer.train``."""
        n_epochs = n_epochs if n_epochs is not None else self.config.n_epochs
        for _ in range(n_epochs):
            record = self.train_epoch()
            if callback is not None:
                try:
                    callback(record)
                except StopIteration:
                    break
        return self.history

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, n_episodes=None, greedy=True):
        """Serial evaluation episodes of the current base policy."""
        n_episodes = (
            n_episodes
            if n_episodes is not None
            else self.config.evaluation_episodes
        )
        all_stats = []
        for _ in range(n_episodes):
            _, stats = rollout_episode(
                self.env, self.actors, self.rng, greedy=greedy
            )
            all_stats.append(stats)
        return {
            key: float(np.mean([s[key] for s in all_stats]))
            for key in all_stats[0]
        }

    # -- lifecycle ------------------------------------------------------------

    def close(self):
        """Shut down the sharded worker pool, if one was started.

        Same caveat as the gradient trainer: closing mid-training ends
        bit-parity with an uninterrupted run (a rebuilt pool re-derives
        row streams from the advanced env generator).
        """
        if self._sharded_collector is not None:
            self._sharded_collector.close()
            self._sharded_collector = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.close()

    def __repr__(self):
        return (
            f"ESTrainer(population={self.population}, sigma={self.sigma}, "
            f"n_envs={self.n_envs}, workers={self.rollout_workers}, "
            f"stacked={self.stacked_evaluation}, epoch={self.epoch})"
        )
