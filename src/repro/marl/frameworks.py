"""Framework presets: Proposed, Comp1, Comp2, Comp3 and the random walk.

Builds the exact four-way comparison of Section IV-C:

======== ==================== ============================== ==============
Name     Actors               Centralised critic             Budget
======== ==================== ============================== ==============
proposed VQC (50 weights)     VQC (50 weights)               50 / 50
comp1    VQC (50 weights)     classical MLP (~50 params)     50 / ~50
comp2    classical (~50)      classical MLP (~50 params)     ~50 / ~50
comp3    classical (large)    classical MLP (large)          > 40k total
random   uniform random       —                              0
======== ==================== ============================== ==============

All quantum actors share one circuit *structure* (enabling the batched
team rollout of :class:`~repro.marl.actors.QuantumActorGroup`) but own
independent weight vectors, as in the paper's Fig. 2.
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    COMP2_NET,
    COMP3_NET,
    SingleHopConfig,
    TrainingConfig,
    VQCConfig,
    replace,
)
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.marl.actors import (
    ActorGroup,
    ClassicalActor,
    QuantumActor,
    QuantumActorGroup,
    RandomActor,
)
from repro.marl.critics import ClassicalCentralCritic, QuantumCentralCritic
from repro.marl.evolution import ESTrainer
from repro.marl.metrics import achievability
from repro.marl.trainer import CTDETrainer, rollout_episode
from repro.quantum.backends import DensityMatrixBackend, StatevectorBackend
from repro.quantum.observables import all_z_observables
from repro.quantum.vqc import build_vqc
from repro.seeding import SeedSequenceFactory

__all__ = ["Framework", "build_framework", "FRAMEWORK_NAMES", "evaluate_random_walk"]

FRAMEWORK_NAMES = ("proposed", "comp1", "comp2", "comp3", "random")


class Framework:
    """A ready-to-run experimental arm of the Section IV comparison.

    Attributes:
        name: One of :data:`FRAMEWORK_NAMES`.
        env: The environment instance.
        actors: The actor group.
        trainer: A :class:`CTDETrainer`, or ``None`` for the random walk.
        metadata: Parameter accounting (per-actor, critic, total).
    """

    def __init__(self, name, env, actors, trainer, metadata, eval_rng):
        self.name = name
        self.env = env
        self.actors = actors
        self.trainer = trainer
        self.metadata = metadata
        self._eval_rng = eval_rng

    @property
    def trainable(self):
        """Whether this framework has anything to train."""
        return self.trainer is not None

    def train(self, n_epochs=None, callback=None):
        """Run training; returns the metrics history."""
        if self.trainer is None:
            raise RuntimeError(f"framework {self.name!r} is not trainable")
        return self.trainer.train(n_epochs=n_epochs, callback=callback)

    def evaluate(self, n_episodes=8, greedy=None, vectorized=False):
        """Averaged episode stats under the current policy.

        Greedy (arg-max) execution by default for trainable frameworks —
        the paper's decentralised execution — and stochastic for the random
        walk.  With ``vectorized=True`` all ``n_episodes`` run as lockstep
        env copies through batched policy inference (same stat accounting,
        different RNG stream layout than the serial loop).
        """
        if greedy is None:
            greedy = self.trainable
        if vectorized:
            from repro.envs.vector import make_vector_env
            from repro.marl.rollout import VectorRolloutCollector

            collector = VectorRolloutCollector(
                make_vector_env(self.env, n_episodes), self.actors
            )
            _, all_stats = collector.collect(
                n_episodes, self._eval_rng, greedy=greedy
            )
        else:
            all_stats = []
            for _ in range(n_episodes):
                _, stats = rollout_episode(
                    self.env, self.actors, self._eval_rng, greedy=greedy
                )
                all_stats.append(stats)
        return {
            key: float(np.mean([s[key] for s in all_stats]))
            for key in all_stats[0]
        }

    def close(self):
        """Release external resources (the sharded rollout worker pool)."""
        if self.trainer is not None:
            self.trainer.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.close()

    def achievability(self, random_walk_return, window=20):
        """Min-max normalised return vs the random walk (Section IV-D)."""
        if self.trainer is None or self.trainer.history.n_epochs == 0:
            raise RuntimeError("train the framework before computing achievability")
        recent = self.trainer.history.last("total_reward", window=window)
        return achievability(recent, random_walk_return)

    def __repr__(self):
        return (
            f"Framework({self.name!r}, actors={self.metadata['actor_parameters']}"
            f"x{self.env.n_agents}, critic={self.metadata['critic_parameters']})"
        )


def _quantum_actor_group(env_config, vqc_config, seeds, backend_factory):
    """Build N quantum actors sharing one circuit structure."""
    if env_config.n_actions > vqc_config.n_qubits:
        raise ValueError(
            f"{env_config.n_actions} actions need at least that many qubits "
            f"to measure (got {vqc_config.n_qubits})"
        )
    vqc = build_vqc(
        n_qubits=vqc_config.n_qubits,
        n_features=env_config.observation_size,
        n_weights=vqc_config.n_variational_gates,
        seed=vqc_config.actor_ansatz_seed,
        template=vqc_config.template,
        encoding_scale=vqc_config.encoding_scale,
        observables=all_z_observables(vqc_config.n_qubits)[: env_config.n_actions],
        two_qubit_ratio=vqc_config.two_qubit_ratio,
    )
    actors = []
    for n in range(env_config.n_agents):
        actors.append(
            QuantumActor(
                vqc,
                seeds.rng(f"actor-weights/{n}"),
                backend=backend_factory(),
                gradient_method=vqc_config.gradient_method,
                logit_scale=vqc_config.actor_logit_scale,
                policy_head=vqc_config.actor_policy_head,
            )
        )
    return QuantumActorGroup(actors)


def _quantum_critic(env_config, vqc_config, seeds, backend_factory, name):
    """Build the centralised quantum critic with multi-layer state encoding."""
    state_size = env_config.state_size
    n_qubits = vqc_config.n_qubits
    vqc = build_vqc(
        n_qubits=n_qubits,
        n_features=state_size,
        n_weights=vqc_config.n_variational_gates,
        seed=vqc_config.critic_ansatz_seed,
        template=vqc_config.template,
        encoding_scale=vqc_config.encoding_scale,
        two_qubit_ratio=vqc_config.two_qubit_ratio,
    )
    return QuantumCentralCritic(
        vqc,
        seeds.rng(name),
        backend=backend_factory(),
        gradient_method=vqc_config.gradient_method,
        value_scale=vqc_config.critic_value_scale,
    )


def _classical_actor_group(env_config, hidden, seeds, activation="tanh"):
    actors = [
        ClassicalActor(
            env_config.observation_size,
            env_config.n_actions,
            hidden,
            seeds.rng(f"actor-weights/{n}"),
            activation=activation,
        )
        for n in range(env_config.n_agents)
    ]
    return ActorGroup(actors)


def build_framework(
    name,
    seed=0,
    env_config=None,
    vqc_config=None,
    train_config=None,
    noise_model=None,
    shots=None,
    comp2_net=COMP2_NET,
    comp3_net=COMP3_NET,
    rollout_envs=None,
    rollout_workers=None,
    rollout_transport=None,
    trainer=None,
    es_population=None,
    es_sigma=None,
    es_lr=None,
    es_weight_decay=None,
):
    """Construct one experimental arm, fully wired and reproducibly seeded.

    Args:
        name: ``"proposed"``, ``"comp1"``, ``"comp2"``, ``"comp3"`` or
            ``"random"``.
        seed: Root seed; every stochastic component derives a named child.
        env_config: :class:`SingleHopConfig` (Table II defaults).
        vqc_config: :class:`VQCConfig` (Table II defaults).
        train_config: :class:`TrainingConfig`.
        noise_model: Optional :class:`~repro.quantum.channels.NoiseModel`;
            switches quantum components onto the density-matrix backend and
            parameter-shift gradients (NISQ ablations).
        shots: Optional finite measurement shots for quantum components.
        comp2_net / comp3_net: Classical baseline shapes.
        rollout_envs: Convenience override of
            ``train_config.rollout_envs`` — the number of lockstep env
            copies the trainer collects episodes with (vectorized rollout
            engine; serial reference when 1).
        rollout_workers: Convenience override of
            ``train_config.rollout_workers`` — the number of worker
            processes the sharded rollout engine splits those copies across
            (in-process when 1; call ``framework.close()`` when done to shut
            the pool down).
        rollout_transport: Convenience override of
            ``train_config.rollout_transport`` — how sharded workers ship
            transition blocks back (``"pipe"``, ``"shm"``, or ``"auto"``).
        trainer: Convenience override of ``train_config.trainer`` —
            ``"mapg"`` (the paper's gradient-based CTDE loop) or ``"es"``
            (the gradient-free evolutionary-strategies engine; no critic
            is built, and the es_* overrides below apply).
        es_population / es_sigma / es_lr / es_weight_decay: Convenience
            overrides of the matching ``train_config`` ES knobs.
    """
    if name not in FRAMEWORK_NAMES:
        raise ValueError(f"unknown framework {name!r}; choose from {FRAMEWORK_NAMES}")
    env_config = env_config if env_config is not None else SingleHopConfig()
    vqc_config = vqc_config if vqc_config is not None else VQCConfig()
    train_config = train_config if train_config is not None else TrainingConfig()
    if rollout_envs is not None:
        train_config = replace(train_config, rollout_envs=int(rollout_envs))
    if rollout_workers is not None:
        train_config = replace(train_config, rollout_workers=int(rollout_workers))
    if rollout_transport is not None:
        train_config = replace(
            train_config, rollout_transport=str(rollout_transport)
        )
    if trainer is not None:
        train_config = replace(train_config, trainer=str(trainer))
    es_overrides = {
        "es_population": es_population,
        "es_sigma": es_sigma,
        "es_lr": es_lr,
        "es_weight_decay": es_weight_decay,
    }
    es_overrides = {k: v for k, v in es_overrides.items() if v is not None}
    if es_overrides:
        train_config = replace(train_config, **es_overrides)
    seeds = SeedSequenceFactory(seed)

    if noise_model is not None or shots is not None:
        if noise_model is not None:
            def backend_factory():
                return DensityMatrixBackend(
                    noise_model, shots=shots, rng=seeds.rng("backend-shots")
                )
        else:
            def backend_factory():
                return StatevectorBackend(
                    shots=shots,
                    rng=seeds.rng("backend-shots"),
                    array_backend=vqc_config.array_backend,
                )
        if vqc_config.gradient_method == "adjoint":
            vqc_config = VQCConfig(
                **{**vqc_config.__dict__, "gradient_method": "parameter_shift"}
            )
    else:
        def backend_factory():
            return StatevectorBackend(array_backend=vqc_config.array_backend)

    env = SingleHopOffloadEnv(env_config, rng=seeds.rng("env"))

    if name == "random":
        actors = ActorGroup(
            [RandomActor(env_config.n_actions) for _ in range(env_config.n_agents)]
        )
        metadata = {
            "actor_parameters": 0,
            "critic_parameters": 0,
            "total_parameters": 0,
        }
        return Framework(
            name, env, actors, None, metadata, seeds.rng("evaluation")
        )

    if name in ("proposed", "comp1"):
        actors = _quantum_actor_group(env_config, vqc_config, seeds, backend_factory)
    elif name == "comp2":
        actors = _classical_actor_group(
            env_config, comp2_net.actor_hidden, seeds, comp2_net.activation
        )
    else:  # comp3
        actors = _classical_actor_group(
            env_config, comp3_net.actor_hidden, seeds, comp3_net.activation
        )

    if train_config.trainer == "es":
        # Gradient-free engine: population search over the actor team, no
        # critic at all (and none constructed, so the parameter accounting
        # reflects what actually trains).
        trainer = ESTrainer(env, actors, train_config, seeds.rng("rollouts"))
        critic_parameters = 0
    else:
        if name == "proposed":
            critic = _quantum_critic(
                env_config, vqc_config, seeds, backend_factory, "critic-weights"
            )
            target = _quantum_critic(
                env_config, vqc_config, seeds, backend_factory, "target-weights"
            )
        else:
            critic_hidden = (
                comp3_net.critic_hidden if name == "comp3"
                else comp2_net.critic_hidden
            )
            critic = ClassicalCentralCritic(
                env_config.state_size, critic_hidden, seeds.rng("critic")
            )
            target = ClassicalCentralCritic(
                env_config.state_size, critic_hidden, seeds.rng("target")
            )
        trainer = CTDETrainer(
            env, actors, critic, target, train_config, seeds.rng("rollouts")
        )
        critic_parameters = critic.n_parameters()

    per_actor = actors.actors[0].n_parameters()
    metadata = {
        "actor_parameters": per_actor,
        "critic_parameters": critic_parameters,
        "total_parameters": actors.n_parameters() + critic_parameters,
    }
    return Framework(name, env, actors, trainer, metadata, seeds.rng("evaluation"))


def evaluate_random_walk(seed=0, env_config=None, n_episodes=50):
    """Mean total reward of the uniform random policy (the paper's -33.2
    reference, rescaled by episode length — see SingleHopConfig)."""
    framework = build_framework("random", seed=seed, env_config=env_config)
    stats = framework.evaluate(n_episodes=n_episodes, greedy=False)
    return stats["total_reward"]
