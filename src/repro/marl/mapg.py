"""Multi-agent policy-gradient losses (Section IV-B).

The paper trains with

    grad_theta_n J = -E[ sum_t sum_n  y_t * grad log pi_theta(u_t^n | o_t^n) ]
    grad_psi    J =  grad_psi sum_t || y_t ||^2
    y_t = r(s_t, u_t) + gamma * V_phi(s_{t+1}) - V_psi(s_t)

where ``phi`` is the frozen target critic.  The TD error ``y_t`` doubles as
the actors' advantage signal and the critic's regression residual; for the
actor loss it is treated as a constant (no gradient flows through it).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F

__all__ = [
    "td_targets",
    "td_errors",
    "actor_loss",
    "team_actor_loss",
    "critic_loss",
    "entropy_bonus",
]


def td_targets(rewards, next_values, dones, gamma):
    """Bootstrapped targets ``r + gamma * V_phi(s')`` (zero beyond terminal).

    Args:
        rewards: ``(B,)`` team rewards.
        next_values: ``(B,)`` target-critic values of the next states.
        dones: ``(B,)`` terminal flags; bootstrapping is masked where True.
        gamma: Discount factor.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    next_values = np.asarray(next_values, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    return rewards + gamma * np.where(dones, 0.0, next_values)


def td_errors(targets, values):
    """``y_t = target - V_psi(s_t)`` as a plain numpy advantage signal."""
    return np.asarray(targets, dtype=np.float64) - np.asarray(
        values, dtype=np.float64
    )


def actor_loss(log_probs, actions, advantages):
    """``-(1/B) sum_t y_t log pi(u_t | o_t)`` for one agent.

    Args:
        log_probs: Differentiable ``(B, A)`` log-policy tensor.
        actions: ``(B,)`` executed action indices.
        advantages: ``(B,)`` numpy TD errors (treated as constants).

    Returns a scalar tensor.  Mean reduction keeps the gradient scale
    independent of the batch size (Adam adapts either way; the paper's sum
    is recovered by scaling the learning rate).
    """
    taken = F.gather(log_probs, np.asarray(actions, dtype=np.int64))
    advantages = np.asarray(advantages, dtype=np.float64)
    return -(taken * advantages).mean()


def team_actor_loss(log_probs, actions, advantages, entropy_coef=0.0):
    """The whole team's MAPG loss from one stacked log-policy tensor.

    Equivalent to summing :func:`actor_loss` (plus the optional entropy
    bonus) over agents, but computed from the ``(B, n_agents, A)`` tensor a
    single stacked policy evaluation produces
    (:meth:`~repro.marl.actors.ActorGroup.stacked_log_policies`) instead of
    per-agent forwards.

    Args:
        log_probs: Differentiable ``(B, n_agents, A)`` log-policy tensor.
        actions: ``(B, n_agents)`` executed action indices.
        advantages: ``(B,)`` numpy TD errors, shared by the whole team
            (treated as constants).
        entropy_coef: Optional exploration-bonus weight.

    Returns a scalar tensor: ``sum_n [-(1/B) sum_t y_t log pi_n]``.
    """
    batch, n_agents, n_actions = log_probs.shape
    flat = log_probs.reshape(batch * n_agents, n_actions)
    taken = F.gather(flat, np.asarray(actions, dtype=np.int64).reshape(-1))
    repeated = np.repeat(np.asarray(advantages, dtype=np.float64), n_agents)
    loss = -(taken * repeated).mean() * n_agents
    if entropy_coef > 0.0:
        loss = loss - entropy_coef * n_agents * entropy_bonus(F.exp(flat))
    return loss


def critic_loss(values, targets):
    """``(1/B) sum_t || y_t ||^2`` with gradients through ``V_psi`` only."""
    return F.mse_loss(values, np.asarray(targets, dtype=np.float64))


def entropy_bonus(probabilities, epsilon=1e-12):
    """Mean policy entropy (differentiable), for the optional exploration bonus."""
    clamped = probabilities + epsilon
    return -(probabilities * F.log(clamped)).sum(axis=1).mean()
