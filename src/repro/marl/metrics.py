"""Training metrics, histories, and the paper's achievability score.

Section IV-D computes *achievability* as a min-max normalisation of a
framework's average total reward against the random-walk reference, with 0
(the reward upper bound of Eq. 1) as the best case:

    achievability = (R - R_random) / (R_best - R_random)

so a random policy scores 0 % and a perfect policy 100 %; the paper reports
90.9 % for Proposed, 49.8 % for Comp1, 33.2 % for Comp2, 91.5 % for Comp3.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "achievability",
    "MetricsHistory",
    "exponential_moving_average",
    "rolling_mean",
]


def achievability(framework_return, random_walk_return, best_return=0.0):
    """Min-max normalised return per Section IV-D(1)."""
    denominator = best_return - random_walk_return
    if denominator <= 0:
        raise ValueError(
            "random-walk return must lie below the best return "
            f"({random_walk_return} vs {best_return})"
        )
    return (framework_return - random_walk_return) / denominator


def exponential_moving_average(series, alpha=0.1):
    """EMA smoothing used when plotting the Fig. 3 training curves."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("series must be 1-D")
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    out = np.empty_like(series)
    running = series[0]
    for i, value in enumerate(series):
        running = alpha * value + (1.0 - alpha) * running
        out[i] = running
    return out


def rolling_mean(series, window):
    """Trailing-window mean (partial windows at the start)."""
    series = np.asarray(series, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    out = np.empty_like(series)
    for i in range(len(series)):
        start = max(0, i - window + 1)
        out[i] = series[start : i + 1].mean()
    return out


class MetricsHistory:
    """Per-epoch metric records with convenient series access."""

    def __init__(self):
        self.records = []

    def append(self, record):
        """Store one epoch's metrics dict."""
        self.records.append(dict(record))

    def series(self, key):
        """All values of one metric, in epoch order."""
        return np.asarray([r[key] for r in self.records], dtype=np.float64)

    def smoothed(self, key, alpha=0.1):
        """EMA-smoothed series of one metric."""
        return exponential_moving_average(self.series(key), alpha=alpha)

    def last(self, key, window=1):
        """Mean of the final ``window`` values of one metric."""
        values = self.series(key)
        if len(values) == 0:
            raise ValueError("history is empty")
        return float(values[-window:].mean())

    def keys(self):
        """Metric names present in the first record."""
        return list(self.records[0].keys()) if self.records else []

    def to_dict(self):
        """Column-wise dict of lists (JSON-friendly)."""
        return {key: self.series(key).tolist() for key in self.keys()}

    @property
    def n_epochs(self):
        """Number of recorded epochs."""
        return len(self.records)

    def __len__(self):
        return len(self.records)
