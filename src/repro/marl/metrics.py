"""Training metrics, histories, and the paper's achievability score.

Section IV-D computes *achievability* as a min-max normalisation of a
framework's average total reward against the random-walk reference, with 0
(the reward upper bound of Eq. 1) as the best case:

    achievability = (R - R_random) / (R_best - R_random)

so a random policy scores 0 % and a perfect policy 100 %; the paper reports
90.9 % for Proposed, 49.8 % for Comp1, 33.2 % for Comp2, 91.5 % for Comp3.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro import obs

__all__ = [
    "achievability",
    "MetricsHistory",
    "exponential_moving_average",
    "format_epoch_summary",
    "population_fitness_summary",
    "progress_printer",
    "publish_epoch_record",
    "rolling_mean",
]


def achievability(framework_return, random_walk_return, best_return=0.0):
    """Min-max normalised return per Section IV-D(1)."""
    denominator = best_return - random_walk_return
    if denominator <= 0:
        raise ValueError(
            "random-walk return must lie below the best return "
            f"({random_walk_return} vs {best_return})"
        )
    return (framework_return - random_walk_return) / denominator


def exponential_moving_average(series, alpha=0.1):
    """EMA smoothing used when plotting the Fig. 3 training curves."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("series must be 1-D")
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    out = np.empty_like(series)
    running = series[0]
    for i, value in enumerate(series):
        running = alpha * value + (1.0 - alpha) * running
        out[i] = running
    return out


def rolling_mean(series, window):
    """Trailing-window mean (partial windows at the start)."""
    series = np.asarray(series, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    out = np.empty_like(series)
    for i in range(len(series)):
        start = max(0, i - window + 1)
        out[i] = series[start : i + 1].mean()
    return out


def population_fitness_summary(fitness):
    """Per-generation fitness dispersion stats for the ES engine.

    One definition for the trainer record, telemetry gauges, and plots —
    the dispersion view the ES-for-QRL line leans on to read search
    progress (collapsing std with flat mean = premature convergence).
    """
    fitness = np.asarray(fitness, dtype=np.float64)
    if fitness.size == 0:
        raise ValueError("fitness must be non-empty")
    return {
        "fitness_mean": float(fitness.mean()),
        "fitness_max": float(fitness.max()),
        "fitness_min": float(fitness.min()),
        "fitness_std": float(fitness.std()),
    }


def publish_epoch_record(record, prefix="train"):
    """Mirror one epoch record into telemetry gauges (no-op when disabled).

    Both trainers call this after appending to their history, so
    ``train.total_reward``, ``train.critic_loss`` / ``train.fitness_mean``
    etc. land in the same registry namespace regardless of engine.  Values
    are copied into gauges — the record itself is never mutated and never
    receives timing data, keeping cross-engine bit-identity intact.
    """
    if not obs.enabled():
        return
    obs.counter(f"{prefix}.epochs").inc()
    for key, value in record.items():
        if isinstance(value, numbers.Real):
            obs.gauge(f"{prefix}.{key}").set(float(value))


def format_epoch_summary(record):
    """One uniform progress line from either trainer's epoch record.

    The shared schema both engines report (epoch, reward, overflow) comes
    first; the engine-specific objective block (critic/actor losses and
    policy entropy for MAPG, fitness dispersion for ES) follows.  Examples
    and experiment runners print this instead of hand-rolled formats.
    """
    parts = [
        f"epoch {record['epoch']:>4}",
        f"reward {record['total_reward']:>8.3f}",
        f"overflow {record['overflow_ratio']:.3f}",
    ]
    if "critic_loss" in record:
        parts.append(f"critic {record['critic_loss']:.4f}")
        parts.append(f"actor {record['actor_loss']:.4f}")
        if "policy_entropy" in record:
            parts.append(f"entropy {record['policy_entropy']:.3f}")
    if "fitness_mean" in record:
        parts.append(
            f"fitness {record['fitness_mean']:.3f}"
            f"/{record['fitness_max']:.3f}"
            f" (std {record['fitness_std']:.3f})"
        )
    if "grad_norm" in record:
        parts.append(f"|g| {record['grad_norm']:.4f}")
    elif "actor_grad_norm" in record:
        parts.append(f"|g| {record['actor_grad_norm']:.4f}")
    return " | ".join(parts)


def progress_printer(every=10, print_fn=print):
    """A ``train(callback=...)`` printing :func:`format_epoch_summary`.

    Prints epoch 1 and then every ``every``-th epoch — the telemetry-backed
    replacement for the ad-hoc progress closures the examples used to
    hand-roll per trainer.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every!r}")

    def callback(record):
        if record["epoch"] == 1 or record["epoch"] % every == 0:
            print_fn(format_epoch_summary(record))

    return callback


class MetricsHistory:
    """Per-epoch metric records with convenient series access."""

    def __init__(self):
        self.records = []

    def append(self, record):
        """Store one epoch's metrics dict."""
        self.records.append(dict(record))

    def series(self, key):
        """All values of one metric, in epoch order."""
        return np.asarray([r[key] for r in self.records], dtype=np.float64)

    def smoothed(self, key, alpha=0.1):
        """EMA-smoothed series of one metric."""
        return exponential_moving_average(self.series(key), alpha=alpha)

    def last(self, key, window=1):
        """Mean of the final ``window`` values of one metric."""
        values = self.series(key)
        if len(values) == 0:
            raise ValueError("history is empty")
        return float(values[-window:].mean())

    def keys(self):
        """Metric names present in the first record."""
        return list(self.records[0].keys()) if self.records else []

    def to_dict(self):
        """Column-wise dict of lists (JSON-friendly)."""
        return {key: self.series(key).tolist() for key in self.keys()}

    @property
    def n_epochs(self):
        """Number of recorded epochs."""
        return len(self.records)

    def __len__(self):
        return len(self.records)
