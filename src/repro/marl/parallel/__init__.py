"""Process-sharded rollout collection: a worker pool over the vectorized
engine.

Public surface:

- :class:`~repro.marl.parallel.collector.ShardedRolloutCollector` — the
  parent-side pool: shards the ``(N, ...)`` lockstep state across worker
  processes, broadcasts actor weights, gathers episode blocks in
  deterministic order, and survives worker crashes.
- :class:`~repro.marl.parallel.worker.ShardActionAdapter` — the worker-side
  action sampler that keeps the shared action stream bit-aligned across
  shards.
- :mod:`~repro.marl.parallel.transport` — the transport seam the two sides
  speak over: small control traffic (commands, weight broadcasts, RNG
  states, checkpoints) always rides a pickle-pipe, while transition blocks
  travel either in the reply pickle (``"pipe"``) or through per-worker
  shared-memory ring buffers (``"shm"``, :class:`ShmRing` /
  :class:`ShmRingChannel`) that hand the parent zero-copy views.  Both are
  bit-identical; select via ``ShardedRolloutCollector(transport=...)`` or
  ``TrainingConfig(rollout_transport=...)``.
"""

from repro.marl.parallel.collector import (
    AUTO_SHM_MIN_BLOCK_BYTES,
    ShardedRolloutCollector,
    estimate_episode_block_bytes,
)
from repro.marl.parallel.transport import (
    PipeChannel,
    PipeTransport,
    ShmRing,
    ShmRingChannel,
    ShmTransport,
    WorkerCrashError,
    WorkerTaskError,
    get_rng_state,
    make_transport,
    rng_from_state,
)
from repro.marl.parallel.worker import ShardActionAdapter, worker_main

__all__ = [
    "AUTO_SHM_MIN_BLOCK_BYTES",
    "ShardedRolloutCollector",
    "estimate_episode_block_bytes",
    "ShardActionAdapter",
    "PipeChannel",
    "PipeTransport",
    "ShmRing",
    "ShmRingChannel",
    "ShmTransport",
    "WorkerCrashError",
    "WorkerTaskError",
    "get_rng_state",
    "make_transport",
    "rng_from_state",
    "worker_main",
]
