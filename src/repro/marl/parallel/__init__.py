"""Process-sharded rollout collection: a worker pool over the vectorized
engine.

Public surface:

- :class:`~repro.marl.parallel.collector.ShardedRolloutCollector` — the
  parent-side pool: shards the ``(N, ...)`` lockstep state across worker
  processes, broadcasts actor weights, gathers episode blocks in
  deterministic order, and survives worker crashes.
- :class:`~repro.marl.parallel.worker.ShardActionAdapter` — the worker-side
  action sampler that keeps the shared action stream bit-aligned across
  shards.
- :mod:`~repro.marl.parallel.transport` — the pickle-pipe channel and RNG
  state codecs the two sides speak over.
"""

from repro.marl.parallel.collector import ShardedRolloutCollector
from repro.marl.parallel.transport import (
    WorkerCrashError,
    WorkerTaskError,
    get_rng_state,
    rng_from_state,
)
from repro.marl.parallel.worker import ShardActionAdapter, worker_main

__all__ = [
    "ShardedRolloutCollector",
    "ShardActionAdapter",
    "WorkerCrashError",
    "WorkerTaskError",
    "get_rng_state",
    "rng_from_state",
    "worker_main",
]
