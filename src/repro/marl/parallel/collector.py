"""Process-sharded rollout collection: a persistent worker pool over the
vectorized engine.

:class:`ShardedRolloutCollector` splits the ``N`` lockstep env copies of the
in-process vectorized engine (:mod:`repro.envs.vector`,
:mod:`repro.marl.rollout`) into ``W`` contiguous row shards, each owned by a
long-lived worker process that steps its shard with local batched circuit
evaluation and ships completed episode blocks back over a per-worker
transport (:mod:`repro.marl.parallel.transport`): the pickle-pipe fallback
or a zero-copy shared-memory ring buffer, selected by the ``transport``
argument (``"auto"`` picks shm once episode blocks outgrow the pickling
regime).  The parent broadcasts the current actor weights with every collect
command (so each :meth:`~repro.marl.trainer.CTDETrainer.update` is visible
to the mirrors) and reassembles episodes in deterministic global order.
Both transports produce bit-identical episodes, stats, and RNG stream
positions; the choice is purely a throughput knob.

Determinism contract (pinned by ``tests/test_parallel_rollout.py``):

- ``rollout_workers=W`` over ``rollout_envs=N`` is **bit-identical** to the
  in-process ``VectorEnv(N)`` path — same episodes, same stats, same RNG
  stream positions afterwards — for any ``W``, because every global env row
  keeps its own generator regardless of shard assignment and action
  sampling replays the global shared stream (see
  :class:`~repro.marl.parallel.worker.ShardActionAdapter`).  Transitively,
  ``N=1, W=1`` is bit-identical to the serial reference loop.
- Every copy steps every lockstep round (finished copies restart under
  auto-reset), so the only cross-shard coupling is the *stopping round*:
  the first round at which the copies have jointly completed the quota.
  For fixed-length envs that round is known a priori
  (``ceil(n_episodes / N) * episode_limit``) and one command per worker
  commits the whole collect — the historical fast path, bit-identical to
  before.  For ragged envs (``has_data_dependent_termination``) the parent
  runs a bounded-probe negotiation: workers advance to an absolute round
  bound and report per-round completion counts, the parent accumulates
  them globally until the quota round is pinned, then finalizes — workers
  rewind any speculative overshoot from a snapshot before committing.
  Episodes reassemble in global (completion round, row) order either way,
  matching the in-process engine's ordering and surplus discard exactly.

Worker lifecycle: processes are daemonic (the OS reaps them if the parent
dies without cleanup), :meth:`close` shuts them down gracefully, and a crash
detected on either side of a collect triggers restart-and-requeue — the new
process resumes from the checkpoint its predecessor returned after the last
successful collect and replays the in-flight command bit-exactly, so no
episode is lost or duplicated.
"""

from __future__ import annotations

import multiprocessing
import os
import sys

import numpy as np

from repro import obs
from repro.envs.vector import _spawn_row_rngs
from repro.obs import flight as _flight
from repro.obs import trace as _trace
from repro.marl.parallel.transport import (
    DEFAULT_N_SLOTS,
    DEFAULT_SLOT_BYTES,
    WorkerCrashError,
    get_rng_state,
    make_transport,
)
from repro.marl.parallel.worker import worker_main

__all__ = ["ShardedRolloutCollector", "estimate_episode_block_bytes"]

# The "auto" transport rule: shared memory pays once the per-episode
# transition block outgrows what a pickle round-trip handles cheaply.  The
# crossover on commodity hardware sits in the tens of kilobytes; below it
# the pipe's simplicity wins, above it pickling dominates the collect.
AUTO_SHM_MIN_BLOCK_BYTES = 32 * 1024

_TRANSPORT_KINDS = ("auto", "pipe", "shm")


def estimate_episode_block_bytes(env, episode_limit):
    """Predicted size of one episode's transition block on the wire.

    Counts the stacked per-step columns the workers ship back (states,
    observations and their successors as float64, int64 actions, float64
    rewards, bool dones) — the quantity the ``"auto"`` transport rule
    compares against :data:`AUTO_SHM_MIN_BLOCK_BYTES`.

    For ragged envs this is the **worst case**: ``episode_limit`` is the
    horizon cap, so every episode block fits regardless of where
    data-dependent termination actually cuts it.  Sizing rings from the
    cap keeps shm allocation independent of the data; the on-wire framing
    self-describes each block's actual length, so shorter episodes simply
    occupy smaller slots.
    """
    n_agents = env.n_agents
    state_size = int(getattr(env, "state_size", 0))
    obs_size = int(env.observation_size)
    per_step = (
        8 * 2 * state_size          # states + next_states
        + 8 * 2 * n_agents * obs_size  # observations + next_observations
        + 8 * n_agents              # int64 actions
        + 8                          # float64 reward
        + 1                          # bool done
    )
    return int(episode_limit) * per_step


def _default_start_method():
    """Prefer cheap fork workers where forking is actually safe.

    Fork is only trusted on Linux: macOS offers it but forked children can
    abort inside Apple system libraries (the reason CPython's own default
    there is spawn).
    """
    methods = multiprocessing.get_all_start_methods()
    if sys.platform.startswith("linux") and "fork" in methods:
        return "fork"
    return "spawn"


class _WorkerHandle:
    """Parent-side record of one worker: process, channel, transport, shard,
    checkpoint."""

    def __init__(self, context, payload, name, transport):
        self.context = context
        self.payload = payload
        self.name = name
        self.transport = transport
        self.n_rows = len(payload["rngs"])
        self.checkpoint = None
        self.process = None
        self.channel = None
        self.restarts = 0
        self.flight_ring = None

    def start(self):
        """Spawn the process and initialise it (from a checkpoint if cached).

        The transport is reset first, so a restart reclaims whatever a dead
        incarnation left in its shared-memory ring before the replacement
        begins publishing from the replayed checkpoint.  After init the
        clock-alignment handshake pins the worker's monotonic clock to the
        parent's timeline, and — when a flight dump directory is
        configured — the worker is told to keep its flight ring in a file
        the parent can recover if the process dies without warning.
        """
        self.transport.reset()
        parent_end, child_end = self.context.Pipe()
        self.process = self.context.Process(
            target=worker_main,
            args=(child_end, self.transport.worker_info()),
            daemon=True,
            name=self.name,
        )
        self.process.start()
        child_end.close()
        self.channel = self.transport.parent_channel(self.process, parent_end)
        payload = dict(self.payload)
        payload["checkpoint"] = self.checkpoint
        payload["label"] = self.name
        if _flight.enabled() and _flight.dump_dir() is not None:
            self.flight_ring = os.path.join(
                _flight.dump_dir(), f"{self.name}.ring"
            )
            payload["flight_ring"] = self.flight_ring
        self.channel.send(("init", payload))
        self.channel.recv()
        self._sync_clock()

    def _sync_clock(self):
        """RTT-midpoint clock negotiation (see ``repro.obs.trace``)."""
        t0 = _trace.now_us()
        self.channel.send(("clock",))
        worker_now = self.channel.recv()
        t1 = _trace.now_us()
        offset = _trace.compute_clock_offset(t0, t1, worker_now)
        self.channel.send(("clock_set", offset))
        self.channel.recv()

    def restart(self):
        """Replace a dead process with a fresh one at the last checkpoint.

        Before the evidence disappears: recover the dead incarnation's
        flight ring (when file-backed) and dump a postmortem beside the
        recovery — the crash path otherwise deliberately swallows it.
        """
        if _flight.enabled():
            worker_events = None
            if self.flight_ring is not None:
                worker_events = _flight.read_file(self.flight_ring)
            _flight.record(
                "worker_restart", worker=self.name,
                restarts=self.restarts + 1,
            )
            _flight.dump(
                "worker-crash",
                extra={"worker": self.name, "restarts": self.restarts + 1},
                worker_events=worker_events,
            )
        self.terminate()
        self.restarts += 1
        self.start()

    def terminate(self):
        """Hard-stop the process and drop the channel."""
        if self.channel is not None:
            self.channel.close()
            self.channel = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover — last resort
                self.process.kill()
                self.process.join(timeout=5.0)
            self.process = None

    def close(self):
        """Graceful shutdown; falls back to terminate on any trouble."""
        if self.channel is not None and self.process is not None:
            try:
                self.channel.send(("close",))
                self.channel.recv()
            except Exception:  # noqa: BLE001 — dying worker; force below
                pass
        self.terminate()
        self.transport.close()
        if self.flight_ring is not None:
            try:
                os.unlink(self.flight_ring)
            except OSError:
                pass
            self.flight_ring = None


class ShardedRolloutCollector:
    """Collect episodes from ``n_envs`` lockstep copies across ``n_workers``
    processes, bit-identically to the in-process vectorized engine.

    Args:
        env: The serial reference environment (``SingleHopOffloadEnv`` /
            ``MultiHopOffloadEnv``).  Its generator seeds row 0's stream and
            is kept in sync with it across collects, exactly as
            :func:`~repro.envs.vector.make_vector_env` does in-process.
        actors: The live :class:`~repro.marl.actors.ActorGroup`; its current
            weights are broadcast to the worker mirrors on every collect.
        n_envs: Global lockstep copy count ``N``.
        n_workers: Worker process count ``W`` (clamped to ``n_envs``).
        start_method: ``multiprocessing`` start method; defaults to
            ``"fork"`` where available, else ``"spawn"``.
        transport: How transition blocks travel back from the workers —
            ``"pipe"`` (pickle over the command pipe), ``"shm"`` (per-worker
            shared-memory ring buffers, zero pickling on the episode
            arrays), or ``"auto"`` (shm once the estimated per-episode
            block exceeds :data:`AUTO_SHM_MIN_BLOCK_BYTES`).  Both
            transports are bit-identical; the knob is purely throughput.
        shm_slot_bytes: Ring slot granularity for the shm transport
            (default 16 KiB).
        shm_slots: Ring capacity in slots per worker (default 64).  Blocks
            larger than one slot span contiguous slots; blocks larger than
            the whole ring stream through chunk frames, so sizing is a
            throughput knob, never a correctness one.
    """

    def __init__(self, env, actors, n_envs, n_workers, start_method=None,
                 transport="auto", shm_slot_bytes=None, shm_slots=None):
        if n_envs < 1:
            raise ValueError("n_envs must be >= 1")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if transport not in _TRANSPORT_KINDS:
            raise ValueError(
                f"transport must be one of {_TRANSPORT_KINDS}, "
                f"got {transport!r}"
            )
        if env.n_agents != actors.n_agents:
            raise ValueError(
                f"env has {env.n_agents} agents, group has {actors.n_agents}"
            )
        # SingleHop keeps the limit on its config; MultiHop on the env
        # itself.  Resolve explicitly — the attribute wins when both exist,
        # and only a truly absent limit (None everywhere) means unbounded.
        episode_limit = getattr(env, "episode_limit", None)
        if episode_limit is None:
            config = getattr(env, "config", None)
            if config is not None:
                episode_limit = getattr(config, "episode_limit", None)
        if episode_limit is None:
            raise ValueError(
                "ShardedRolloutCollector needs a horizon cap: the env "
                "declares no episode_limit (neither on itself nor on its "
                "config), so episodes may be unbounded — the cap is what "
                "bounds shm block sizing and guarantees the ragged round "
                "protocol makes progress"
            )
        episode_limit = int(episode_limit)
        if episode_limit < 1:
            raise ValueError(
                f"episode_limit must be >= 1, got {episode_limit}"
            )
        # Ragged envs finish episodes at data-dependent rounds; the collect
        # protocol switches from the one-shot fast path to bounded probing.
        self.ragged = bool(
            getattr(env, "has_data_dependent_termination", False)
        )
        self.env = env
        self.actors = actors
        self.n_envs = int(n_envs)
        self.n_workers = min(int(n_workers), self.n_envs)
        self.episode_limit = episode_limit
        self._closed = False

        if transport == "auto":
            block_bytes = estimate_episode_block_bytes(env, episode_limit)
            transport = (
                "shm" if block_bytes >= AUTO_SHM_MIN_BLOCK_BYTES else "pipe"
            )
        self.transport = transport
        slot_bytes = (
            int(shm_slot_bytes) if shm_slot_bytes is not None
            else DEFAULT_SLOT_BYTES
        )
        n_slots = int(shm_slots) if shm_slots is not None else DEFAULT_N_SLOTS

        # Row streams are spawned centrally, before sharding, so every global
        # row's generator is independent of the worker layout (and identical
        # to what make_vector_env would build in-process, including the
        # side-effect on env.rng's spawn counter).
        row_rngs = _spawn_row_rngs(env.rng, self.n_envs)
        shards = np.array_split(np.arange(self.n_envs), self.n_workers)
        self._workers = []
        context = multiprocessing.get_context(
            start_method if start_method is not None else _default_start_method()
        )
        # Segments are created here, before any worker process exists, so
        # the multiprocessing resource tracker is started by (and shared
        # from) the parent — attaching children register against the same
        # tracker and a single parent-side unlink retires each name.
        for w, rows in enumerate(shards):
            payload = {
                "env": env,
                "rngs": [row_rngs[i] for i in rows],
                "first_row": int(rows[0]),
                "n_envs_total": self.n_envs,
                "actors": actors,
            }
            self._workers.append(
                _WorkerHandle(
                    context, payload, name=f"repro-rollout-{w}",
                    transport=make_transport(
                        transport, slot_bytes=slot_bytes, n_slots=n_slots
                    ),
                )
            )
        try:
            for worker in self._workers:
                worker.start()
        except Exception:
            self.close()
            raise

    # -- introspection --------------------------------------------------------

    @property
    def total_restarts(self):
        """Crash-recovery count across the pool (diagnostics)."""
        return sum(w.restarts for w in self._workers)

    def shm_segment_names(self):
        """Names of the live shared-memory segments (empty for ``pipe``).

        Every name listed here must disappear from the system (``/dev/shm``
        on Linux) after :meth:`close` — the leak-check contract the tests
        and the CI job enforce.
        """
        names = [w.transport.segment_name() for w in self._workers]
        return [name for name in names if name is not None]

    def _actor_weight_states(self):
        return [
            actor.state_dict() if hasattr(actor, "state_dict") else None
            for actor in self.actors.actors
        ]

    # -- collection -----------------------------------------------------------

    def _exchange(self, command_for):
        """Send a per-worker command and gather replies, restarting crashed
        workers and replaying their command (once each per exchange).

        Any failure that escapes the retry — a deterministic
        :class:`~repro.marl.parallel.transport.WorkerTaskError`, or a worker
        crashing again right after its restart — aborts mid-loop with other
        workers' replies still queued in their pipes.  The pool could then
        pair the *next* command's recv with a stale reply, so it is poisoned
        (closed) before the error propagates; a later collect fails fast
        instead of silently returning old episodes.
        """
        try:
            for worker in self._workers:
                try:
                    worker.channel.send(command_for(worker))
                except WorkerCrashError:
                    worker.restart()
                    worker.channel.send(command_for(worker))
            replies = []
            for worker in self._workers:
                try:
                    replies.append(worker.channel.recv())
                except WorkerCrashError:
                    worker.restart()
                    worker.channel.send(command_for(worker))
                    replies.append(worker.channel.recv())
        except Exception:
            self.close()
            raise
        return replies

    def collect(self, n_episodes, rng, greedy=False):
        """Collect ``n_episodes`` episodes; returns ``(episodes, stats)``.

        Same signature, ordering, and stat accounting as
        :meth:`~repro.marl.rollout.VectorRolloutCollector.collect`; ``rng``
        (the shared action-sampling stream) is advanced to exactly the
        position the in-process engine would leave it at.
        """
        if self._closed:
            raise RuntimeError("collector is closed")
        if n_episodes < 1:
            raise ValueError("n_episodes must be >= 1")
        action_state = get_rng_state(rng)
        weight_states = self._actor_weight_states()
        # Captured once per collect, like the rng state: workers mirror the
        # parent's telemetry flag for this pass and attach their registry
        # snapshots to the final reply when it is on.
        telemetry = obs.enabled()

        def command_for(bound, finalize):
            spec = {
                "bound": int(bound),
                "finalize": bool(finalize),
                "greedy": greedy,
                "action_rng": action_state,
                "weights": weight_states,
                "telemetry": telemetry,
                # Causal link: workers join the parent's open trace (None
                # when no trace is active), parenting their spans to
                # whichever span issued this collect.
                "trace": _trace.propagation_context(),
            }
            return lambda worker: ("collect", spec)

        if not self.ragged:
            # Fixed-length fast path: every row completes an episode every
            # episode_limit rounds, so the stopping round is known a priori
            # and one exchange commits the whole collect.
            stop_round = -(-n_episodes // self.n_envs) * self.episode_limit
        else:
            stop_round = self._negotiate_stop_round(n_episodes, command_for)
        replies = self._exchange(command_for(stop_round, True))

        # Every worker advances an identical replica of the shared action
        # stream; divergence means the lockstep bookkeeping broke.
        final_action = replies[0]["action_rng"]
        if any(reply["action_rng"] != final_action for reply in replies[1:]):
            raise RuntimeError(
                "worker action streams diverged; shard bookkeeping is broken"
            )
        rng.bit_generator.state = final_action
        # Row 0 shares the serial env's stream in-process; mirror that by
        # adopting its advanced position into env.rng.
        self.env.rng.bit_generator.state = replies[0]["row_rngs"][0]
        for worker, reply in zip(self._workers, replies):
            worker.checkpoint = reply["checkpoint"]
        if telemetry:
            # Merge in worker-index order — counters and histogram buckets
            # add, gauges last-write-wins, so the merged registry is
            # deterministic for a fixed worker layout.
            for reply in replies:
                snap = reply.get("telemetry")
                if snap:
                    obs.merge_snapshot(snap)

        # Reassemble in the in-process completion order — round-major,
        # global-row-minor.  Each worker ships its episodes in local
        # (round, row) order plus per-round completion counts; interleaving
        # by counts restores the global order for fixed and ragged envs
        # alike (fixed envs complete n_rows per worker every episode_limit
        # rounds, reducing this to the historical block interleave).
        episodes, stats = [], []
        offsets = [0] * len(replies)
        for r in range(stop_round):
            for w, reply in enumerate(replies):
                count = reply["counts"][r]
                if count:
                    lo = offsets[w]
                    episodes.extend(reply["episodes"][lo:lo + count])
                    stats.extend(reply["stats"][lo:lo + count])
                    offsets[w] = lo + count
        return episodes[:n_episodes], stats[:n_episodes]

    def _negotiate_stop_round(self, n_episodes, command_for):
        """Pin the global stopping round for a ragged collect.

        Workers advance to an absolute round bound and reply with their
        full per-round completion-count history (idempotent under crash
        replay: a restarted worker re-runs from the committed state and the
        parent simply overwrites its counts).  The first probe is
        ``ceil(n_episodes / N)`` — a true lower bound, since at most ``N``
        episodes complete per round, and exactly the fixed-length stopping
        quotient.  While the quota is unmet the bound grows by the
        episodes still missing at one-per-row-per-round; the horizon cap
        forces at least one completion per row every ``episode_limit``
        rounds, so the loop terminates.
        """
        bound = -(-n_episodes // self.n_envs)  # ceil division
        while True:
            replies = self._exchange(command_for(bound, False))
            counts = np.zeros(bound, dtype=np.int64)
            for reply in replies:
                counts += np.asarray(reply["counts"], dtype=np.int64)
            cumulative = np.cumsum(counts)
            reached = np.flatnonzero(cumulative >= n_episodes)
            if reached.size:
                return int(reached[0]) + 1
            shortfall = n_episodes - int(cumulative[-1])
            bound += max(1, -(-shortfall // self.n_envs))

    # -- lifecycle ------------------------------------------------------------

    def ping(self):
        """Round-trip every worker (health check); returns worker count."""
        if self._closed:
            raise RuntimeError("collector is closed")
        replies = self._exchange(lambda worker: ("ping",))
        return len(replies)

    def debug_crash_worker(self, index, during_next_collect=False):
        """Test hook: make worker ``index`` die like a crashed process.

        With ``during_next_collect=True`` the worker dies only upon
        receiving its next command (exercising the recv-side requeue path);
        otherwise it is killed immediately (exercising send-side detection).
        """
        worker = self._workers[index]
        if during_next_collect:
            worker.channel.send(("arm_crash",))
            worker.channel.recv()
        else:
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def close(self):
        """Shut the pool down; idempotent, leaves no live processes behind."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter teardown
            pass

    def __repr__(self):
        return (
            f"ShardedRolloutCollector(n_envs={self.n_envs}, "
            f"n_workers={self.n_workers}, n_agents={self.actors.n_agents}, "
            f"transport={self.transport!r})"
        )
