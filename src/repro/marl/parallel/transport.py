"""Parent-worker transport for the process-sharded rollout subsystem.

The collector and its workers speak a tiny tagged-tuple protocol over
``multiprocessing`` pipes: every request is ``(command, *payload)`` and every
reply is ``("ok", result)`` or ``("error", traceback_text)``.  Pipes pickle
their payloads, which is the portable fallback transport the subsystem is
built on — transition blocks here are a few hundred small float64 arrays per
epoch, far below the regime where a shared-memory ring buffer pays off.  The
:class:`PipeChannel` seam is deliberately the only place the wire format
appears, so a zero-copy transport can replace it without touching the
collector or the workers.

Two failure modes are kept distinct because they demand opposite reactions:

- :class:`WorkerCrashError` — the worker *process* died (killed, segfault,
  OOM).  The work itself may be fine; the collector restarts the worker from
  its last checkpoint and replays the in-flight command.
- :class:`WorkerTaskError` — the worker executed the command and raised.
  This is deterministic (a replay would raise again), so it propagates to
  the caller instead of triggering a restart loop.

RNG streams cross the process boundary as plain bit-generator state dicts
(:func:`get_rng_state` / :func:`rng_from_state`) so the parent can hand its
action-sampling stream to every worker and adopt the advanced stream back —
the mechanism behind the subsystem's bit-exact determinism contract.
"""

from __future__ import annotations

import copy

import numpy as np

__all__ = [
    "WorkerCrashError",
    "WorkerTaskError",
    "get_rng_state",
    "rng_from_state",
    "PipeChannel",
]


class WorkerCrashError(RuntimeError):
    """The worker process died mid-conversation (restart and replay)."""


class WorkerTaskError(RuntimeError):
    """The worker ran the command and raised (deterministic; do not replay)."""


def get_rng_state(rng):
    """Portable snapshot of a ``numpy.random.Generator``'s stream position."""
    return copy.deepcopy(rng.bit_generator.state)


def rng_from_state(state):
    """Rebuild a generator at the exact stream position of a snapshot."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)


class PipeChannel:
    """One duplex pickle-pipe to a worker, with crash/task error separation.

    Args:
        process: The worker's ``multiprocessing.Process`` (liveness checks).
        connection: The parent end of the pipe.
    """

    def __init__(self, process, connection):
        self.process = process
        self.connection = connection

    def send(self, message):
        """Ship one request; raises :class:`WorkerCrashError` on a dead peer."""
        if not self.process.is_alive():
            raise WorkerCrashError(
                f"worker pid={self.process.pid} is dead "
                f"(exitcode={self.process.exitcode})"
            )
        try:
            self.connection.send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerCrashError(
                f"worker pid={self.process.pid} pipe closed on send: {exc}"
            ) from exc

    def recv(self):
        """Await one reply; unwraps ``("ok", result)`` / raises on errors."""
        try:
            reply = self.connection.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashError(
                f"worker pid={self.process.pid} died before replying "
                f"(exitcode={self.process.exitcode})"
            ) from exc
        tag = reply[0]
        if tag == "error":
            raise WorkerTaskError(
                f"worker pid={self.process.pid} raised:\n{reply[1]}"
            )
        return reply[1]

    def close(self):
        """Close the parent end of the pipe."""
        try:
            self.connection.close()
        except OSError:
            pass
