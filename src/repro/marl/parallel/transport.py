"""Parent-worker transport for the process-sharded rollout subsystem.

The collector and its workers speak a tiny tagged-tuple protocol over
``multiprocessing`` pipes: every request is ``(command, *payload)`` and every
reply is ``("ok", result)`` or ``("error", traceback_text)``.  Control
traffic — commands, actor weight broadcasts, RNG stream states, episode
stats, checkpoints — always travels this pickle-pipe; what varies is how the
*transition blocks* (the stacked per-episode arrays, by far the largest
payloads) come back:

- **pipe** (:class:`PipeTransport` / :class:`PipeChannel`): blocks ride the
  reply pickle.  Portable fallback; fine while blocks stay small.
- **shm** (:class:`ShmTransport` / :class:`ShmRingChannel`): each worker owns
  a :class:`ShmRing` — a single-producer/single-consumer ring buffer over one
  ``multiprocessing.shared_memory`` segment.  The worker frames every episode
  as ``(header, dtype/shape table, packed payload)`` slots and the parent
  adopts zero-copy views of the payload, assembling them into episodes
  before releasing the slots for reuse.  No pickling touches the arrays.
  The dtype/shape table makes every block self-describing: ragged episodes
  (data-dependent termination) ship at their **actual** length, while ring
  and slot sizing stays a worst-case bound derived from the horizon cap
  (:func:`~repro.marl.parallel.collector.estimate_episode_block_bytes`),
  so allocation never depends on the data.

The choice is a :class:`Transport` seam: the collector instantiates one
transport per worker, the worker side mirrors it with a
:class:`WorkerEndpoint`, and neither the collector nor the worker loop knows
which wire format is underneath.

Two failure modes are kept distinct because they demand opposite reactions:

- :class:`WorkerCrashError` — the worker *process* died (killed, segfault,
  OOM).  The work itself may be fine; the collector restarts the worker from
  its last checkpoint, resets the ring, and replays the in-flight command.
- :class:`WorkerTaskError` — the worker executed the command and raised.
  This is deterministic (a replay would raise again), so it propagates to
  the caller instead of triggering a restart loop.

RNG streams cross the process boundary as plain bit-generator state dicts
(:func:`get_rng_state` / :func:`rng_from_state`) so the parent can hand its
action-sampling stream to every worker and adopt the advanced stream back —
the mechanism behind the subsystem's bit-exact determinism contract.
"""

from __future__ import annotations

import copy
import os
import struct
import time
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.marl.buffer import Episode

__all__ = [
    "WorkerCrashError",
    "WorkerTaskError",
    "get_rng_state",
    "rng_from_state",
    "EPISODE_COLUMNS",
    "ShmRing",
    "PipeChannel",
    "ShmRingChannel",
    "PipeTransport",
    "ShmTransport",
    "make_transport",
    "WorkerEndpoint",
    "PipeWorkerEndpoint",
    "ShmWorkerEndpoint",
    "make_worker_endpoint",
]


class WorkerCrashError(RuntimeError):
    """The worker process died mid-conversation (restart and replay)."""


class WorkerTaskError(RuntimeError):
    """The worker ran the command and raised (deterministic; do not replay)."""


def get_rng_state(rng):
    """Portable snapshot of a ``numpy.random.Generator``'s stream position."""
    return copy.deepcopy(rng.bit_generator.state)


def rng_from_state(state):
    """Rebuild a generator at the exact stream position of a snapshot."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)


# -- transition-block framing -------------------------------------------------
#
# A *block* is an ordered list of numpy arrays (one episode's columns, say).
# On the wire it becomes a dtype/shape table plus a packed payload in which
# every array starts 16-byte aligned, so the reader can hand out zero-copy
# ``np.frombuffer`` views of any numeric dtype:
#
#   table:   u32 n_arrays, then per array
#            u8 len(dtype.str), dtype.str ascii, u8 ndim, u64 * ndim dims
#   payload: each array's raw C-contiguous bytes at the aligned offsets the
#            table implies (offsets are recomputed, never transmitted)

_ALIGN = 16


def _align(n):
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def pack_block_table(arrays):
    """Encode the dtype/shape table; returns ``(table, offsets, payload_len)``."""
    parts = [struct.pack("<I", len(arrays))]
    offsets = []
    cursor = 0
    for array in arrays:
        array = np.asarray(array)
        if array.dtype.hasobject:
            raise TypeError(
                f"cannot ship object-dtype array over shared memory "
                f"(dtype={array.dtype})"
            )
        dtype_str = array.dtype.str.encode("ascii")
        parts.append(struct.pack("<B", len(dtype_str)))
        parts.append(dtype_str)
        parts.append(struct.pack("<B", array.ndim))
        parts.append(struct.pack(f"<{array.ndim}Q", *array.shape))
        offsets.append(cursor)
        cursor = _align(cursor + array.nbytes)
    return b"".join(parts), offsets, cursor


def unpack_block_table(buffer, base=0):
    """Decode a table; returns ``(specs, table_len)`` where each spec is
    ``(dtype, shape, offset)`` with offsets relative to the payload start."""
    (n_arrays,) = struct.unpack_from("<I", buffer, base)
    pos = base + 4
    specs = []
    cursor = 0
    for _ in range(n_arrays):
        (dtype_len,) = struct.unpack_from("<B", buffer, pos)
        pos += 1
        dtype = np.dtype(bytes(buffer[pos:pos + dtype_len]).decode("ascii"))
        pos += dtype_len
        (ndim,) = struct.unpack_from("<B", buffer, pos)
        pos += 1
        shape = struct.unpack_from(f"<{ndim}Q", buffer, pos)
        pos += 8 * ndim
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        specs.append((dtype, tuple(int(s) for s in shape), cursor))
        cursor = _align(cursor + nbytes)
    return specs, pos - base


def _views_from_payload(buffer, payload_base, specs):
    """Zero-copy array views over a payload region (any buffer protocol)."""
    views = []
    for dtype, shape, offset in specs:
        count = int(np.prod(shape, dtype=np.int64))
        view = np.frombuffer(
            buffer, dtype=dtype, count=count, offset=payload_base + offset
        )
        views.append(view.reshape(shape))
    return views


class BlockView:
    """One received block: arrays plus the slot-release handle.

    With ``owned=False`` the arrays are zero-copy views into the ring
    (copy them before calling :meth:`close`, which releases the slots for
    reuse); with ``owned=True`` they are already owned by the reader (the
    chunked path) and need no defensive copy.
    """

    def __init__(self, arrays, release=None, owned=False):
        self.arrays = arrays
        self.owned = owned
        self._release = release

    def close(self):
        """Drop the views and hand the slots back to the writer."""
        release, self._release = self._release, None
        self.arrays = None
        if release is not None:
            release()


# -- the shared-memory ring ---------------------------------------------------

_CONTROL_BYTES = 64  # write cursor u64 @0, read cursor u64 @8, rest reserved
_FRAME_HEADER = 24  # u64 kind, u64 content_bytes, u64 sequence stamp
_KIND_DATA = 1  # table + full payload in one frame
_KIND_PAD = 2  # dead tail slots before a wrap
_KIND_CHUNK_FIRST = 3  # u64 total payload, table, first payload piece
_KIND_CHUNK_NEXT = 4  # subsequent payload piece
_STALE_SEQ = 0xFFFFFFFFFFFFFFFF  # sequence stamp no live frame can carry

DEFAULT_SLOT_BYTES = 16384
DEFAULT_N_SLOTS = 64
DEFAULT_TIMEOUT = 120.0


class ShmRingTimeout(RuntimeError):
    """The peer failed to produce/consume a frame within the timeout."""


class ShmRing:
    """Single-producer/single-consumer slot ring over one shared segment.

    Layout: a 64-byte control region (monotonic write/read slot cursors,
    each written by exactly one side) followed by ``n_slots * slot_bytes``
    of ring storage.  A block occupies a contiguous run of slots; when it
    would straddle the wrap point the writer emits a PAD frame over the
    tail and restarts at slot 0, and a block larger than the whole ring is
    streamed as chunk frames the reader reassembles (backpressure comes for
    free: the writer waits for the reader to release slots).

    Ordering assumption: frame bodies are written before the cursor store
    that publishes them, with no explicit hardware fence in between (pure
    Python exposes none).  That is sound under x86-TSO store ordering —
    where development and CI run.  As defence in depth every frame header
    carries a sequence stamp (its monotonic start cursor) that the reader
    re-checks before trusting a frame, so a stale header left over from an
    earlier wrap can never be misread as current; on weakly-ordered CPUs
    (e.g. ARM64) a *torn payload* behind a visible stamp remains
    theoretically possible and has not been characterised — treat the shm
    transport as unvalidated there and prefer ``"pipe"``.

    Args:
        slot_bytes: Slot granularity (rounded up to 64-byte multiples).
        n_slots: Ring capacity in slots.
        name: Attach to an existing segment (worker side) instead of
            creating one (parent side).
    """

    def __init__(self, slot_bytes=DEFAULT_SLOT_BYTES, n_slots=DEFAULT_N_SLOTS,
                 name=None):
        if name is None:
            slot_bytes = max(64, int(slot_bytes))
            slot_bytes = (slot_bytes + 63) & ~63
            n_slots = int(n_slots)
            if n_slots < 2:
                raise ValueError("need at least 2 ring slots")
            size = _CONTROL_BYTES + slot_bytes * n_slots
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
            self.slot_bytes = slot_bytes
            self.n_slots = n_slots
            self.reset()
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
            self.slot_bytes = int(slot_bytes)
            self.n_slots = int(n_slots)
        self._closed = False

    @property
    def name(self):
        """The segment's system-wide name (``psm_*`` on POSIX)."""
        return self._shm.name

    @property
    def capacity_bytes(self):
        """Total ring payload capacity."""
        return self.slot_bytes * self.n_slots

    # -- cursors (each side writes only its own; 8-byte aligned stores) -------

    def _write_cursor(self):
        return struct.unpack_from("<Q", self._shm.buf, 0)[0]

    def _read_cursor(self):
        return struct.unpack_from("<Q", self._shm.buf, 8)[0]

    def _set_write_cursor(self, value):
        struct.pack_into("<Q", self._shm.buf, 0, value)

    def _set_read_cursor(self, value):
        struct.pack_into("<Q", self._shm.buf, 8, value)

    def reset(self):
        """Zero both cursors — only safe with no live peer (worker restart).

        Every slot header is scrubbed with a sentinel sequence stamp so
        nothing a dead incarnation half-wrote can ever satisfy the reader's
        stamp check after the restart.
        """
        self._set_write_cursor(0)
        self._set_read_cursor(0)
        for slot in range(self.n_slots):
            struct.pack_into(
                "<QQQ", self._shm.buf,
                _CONTROL_BYTES + slot * self.slot_bytes, 0, 0, _STALE_SEQ,
            )

    def pending_slots(self):
        """Slots currently written but not yet released (diagnostics)."""
        return self._write_cursor() - self._read_cursor()

    def _slots_for(self, content_bytes):
        return -(-(_FRAME_HEADER + content_bytes) // self.slot_bytes)

    def _wait(self, predicate, timeout, abort_check, what):
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while True:
            result = predicate()
            if result is not None:
                if spins and obs.enabled():
                    # Writer-side stalls are backpressure (ring full);
                    # reader-side stalls are ordinary recv waits.
                    label = (
                        "shm.backpressure"
                        if what == "free ring slots"
                        else "shm.recv_wait"
                    )
                    obs.counter(f"{label}.events").inc()
                    obs.counter(f"{label}.spins").inc(spins)
                return result
            if abort_check is not None:
                abort_check()
            if deadline is not None and time.monotonic() > deadline:
                raise ShmRingTimeout(
                    f"shared-memory ring {self.name}: timed out after "
                    f"{timeout:.1f}s waiting for {what}"
                )
            spins += 1
            if spins > 100:
                time.sleep(0.0002)

    # -- writer side ----------------------------------------------------------

    def _write_frame_header(self, start_cursor, kind, content_bytes):
        """Stamp a frame's header; ``start_cursor`` (the monotonic slot
        cursor the frame begins at) doubles as its sequence stamp."""
        slot = start_cursor % self.n_slots
        struct.pack_into(
            "<QQQ", self._shm.buf,
            _CONTROL_BYTES + slot * self.slot_bytes,
            kind, content_bytes, start_cursor,
        )

    def _acquire_contiguous(self, slots_needed, timeout, abort_check):
        """Block until ``slots_needed`` contiguous free slots exist; returns
        the starting *monotonic* slot cursor.  Pads the tail and wraps when
        necessary."""

        def attempt():
            write = self._write_cursor()
            read = self._read_cursor()
            free = self.n_slots - (write - read)
            position = write % self.n_slots
            to_end = self.n_slots - position
            if slots_needed <= min(free, to_end):
                return write
            if to_end < slots_needed and free >= to_end:
                # Dead tail: mark it PAD and wrap to slot 0.
                self._write_frame_header(
                    write, _KIND_PAD, to_end * self.slot_bytes - _FRAME_HEADER
                )
                self._set_write_cursor(write + to_end)
            return None

        return self._wait(attempt, timeout, abort_check, "free ring slots")

    def _commit_frame(self, slots_used):
        self._set_write_cursor(self._write_cursor() + slots_used)

    def _frame_base(self, slot):
        return _CONTROL_BYTES + slot * self.slot_bytes

    def _write_arrays(self, payload_base, arrays, offsets):
        for array, offset in zip(arrays, offsets):
            flat = np.ascontiguousarray(array).reshape(-1)
            if flat.size == 0:
                continue
            destination = np.frombuffer(
                self._shm.buf, dtype=flat.dtype, count=flat.size,
                offset=payload_base + offset,
            )
            np.copyto(destination, flat)

    def publish(self, arrays, timeout=DEFAULT_TIMEOUT, abort_check=None):
        """Ship one block; blocks while the ring lacks space (backpressure).

        Blocks whose frame exceeds the whole ring are streamed as chunk
        frames (the reader reassembles); everything smaller travels as a
        single frame whose payload the reader can view zero-copy.
        """
        arrays = [np.asarray(a) for a in arrays]
        table, offsets, payload_len = pack_block_table(arrays)
        if obs.enabled():
            obs.counter("shm.blocks").inc()
            obs.counter("shm.payload_bytes").inc(payload_len)
            obs.histogram(
                "shm.ring_occupancy", min_edge=1.0, n_buckets=12
            ).observe(self.pending_slots())
        # The table region is padded so the payload starts 16-byte aligned
        # *within the segment* (frame bases are 64-aligned), keeping the
        # zero-copy views aligned for any numeric dtype.
        table_region = _align(_FRAME_HEADER + len(table)) - _FRAME_HEADER
        data_content = table_region + payload_len
        if self._slots_for(data_content) <= self.n_slots:
            start = self._acquire_contiguous(
                self._slots_for(data_content), timeout, abort_check
            )
            base = self._frame_base(start % self.n_slots)
            self._write_frame_header(start, _KIND_DATA, data_content)
            self._shm.buf[
                base + _FRAME_HEADER:base + _FRAME_HEADER + len(table)
            ] = table
            self._write_arrays(
                base + _FRAME_HEADER + table_region, arrays, offsets
            )
            self._commit_frame(self._slots_for(data_content))
            return

        # Chunked path: compose table + payload into one blob and stream it
        # in ring-sized pieces — the first frame only carries the blob's
        # total length, so even a ring smaller than the dtype/shape table
        # works.  The reader copies each piece out as it lands, which is
        # what lets the writer proceed with a bounded ring (backpressure).
        blob = bytearray(_align(len(table)) + payload_len)
        blob[:len(table)] = table
        payload_base = _align(len(table))
        for array, offset in zip(arrays, offsets):
            flat = np.ascontiguousarray(array).reshape(-1)
            start = payload_base + offset
            blob[start:start + flat.nbytes] = flat.tobytes()

        sent = 0
        first = True
        while first or sent < len(blob):
            extra = 8 if first else 0  # CHUNK_FIRST leads with the blob size
            piece = min(
                len(blob) - sent, self.capacity_bytes - _FRAME_HEADER - extra
            )
            content = extra + piece
            start = self._acquire_contiguous(
                self._slots_for(content), timeout, abort_check
            )
            base = self._frame_base(start % self.n_slots)
            if first:
                self._write_frame_header(start, _KIND_CHUNK_FIRST, content)
                struct.pack_into(
                    "<Q", self._shm.buf, base + _FRAME_HEADER, len(blob)
                )
            else:
                self._write_frame_header(start, _KIND_CHUNK_NEXT, content)
            piece_base = base + _FRAME_HEADER + extra
            self._shm.buf[piece_base:piece_base + piece] = blob[
                sent:sent + piece
            ]
            self._commit_frame(self._slots_for(content))
            sent += piece
            first = False

    # -- reader side ----------------------------------------------------------

    def _next_frame(self, timeout, abort_check):
        """Wait for a non-PAD frame; returns ``(slot, kind, content_bytes)``.

        A frame only counts once its sequence stamp equals the reader's
        monotonic cursor — a header left over from an earlier wrap (or a
        cursor store that became visible ahead of its header) reads as
        "not yet there" instead of as a frame.
        """

        def attempt():
            read = self._read_cursor()
            if self._write_cursor() <= read:
                return None
            slot = read % self.n_slots
            kind, content, seq = struct.unpack_from(
                "<QQQ", self._shm.buf, self._frame_base(slot)
            )
            if seq != read:
                return None  # stale or not-yet-visible header
            if kind == _KIND_PAD:
                self._set_read_cursor(read + self._slots_for(content))
                return None
            return slot, kind, content

        return self._wait(attempt, timeout, abort_check, "a frame")

    def _release_frame(self, content_bytes):
        self._set_read_cursor(
            self._read_cursor() + self._slots_for(content_bytes)
        )

    def read_block(self, timeout=DEFAULT_TIMEOUT, abort_check=None):
        """Receive one block; returns a :class:`BlockView`.

        Single-frame blocks yield zero-copy views (release via
        ``BlockView.close()``); chunked blocks are reassembled into owned
        arrays with each chunk's slots released as it is consumed.
        """
        slot, kind, content = self._next_frame(timeout, abort_check)
        base = self._frame_base(slot)
        if kind == _KIND_DATA:
            specs, table_len = unpack_block_table(
                self._shm.buf, base + _FRAME_HEADER
            )
            table_region = _align(_FRAME_HEADER + table_len) - _FRAME_HEADER
            views = _views_from_payload(
                self._shm.buf, base + _FRAME_HEADER + table_region, specs
            )
            return BlockView(views, release=lambda: self._release_frame(content))
        if kind != _KIND_CHUNK_FIRST:
            raise RuntimeError(
                f"shared-memory ring {self.name}: unexpected frame kind {kind} "
                f"(ring corrupted or peers out of sync)"
            )
        (blob_len,) = struct.unpack_from(
            "<Q", self._shm.buf, base + _FRAME_HEADER
        )
        blob = bytearray(blob_len)
        piece_base = base + _FRAME_HEADER + 8
        first_piece = content - 8
        blob[:first_piece] = self._shm.buf[piece_base:piece_base + first_piece]
        self._release_frame(content)
        received = first_piece
        while received < blob_len:
            slot, kind, content = self._next_frame(timeout, abort_check)
            if kind != _KIND_CHUNK_NEXT:
                raise RuntimeError(
                    f"shared-memory ring {self.name}: expected chunk "
                    f"continuation, got frame kind {kind}"
                )
            base = self._frame_base(slot)
            blob[received:received + content] = self._shm.buf[
                base + _FRAME_HEADER:base + _FRAME_HEADER + content
            ]
            self._release_frame(content)
            received += content
        specs, table_len = unpack_block_table(blob, 0)
        arrays = [
            array.copy()
            for array in _views_from_payload(blob, _align(table_len), specs)
        ]
        return BlockView(arrays, owned=True)

    # -- lifecycle ------------------------------------------------------------

    def close(self):
        """Detach; the owning (parent) side also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover — a stray exported view
            import gc

            gc.collect()
            self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter teardown
            pass

    def __repr__(self):
        return (
            f"ShmRing({self.name}, slot_bytes={self.slot_bytes}, "
            f"n_slots={self.n_slots})"
        )


# -- episode block codec ------------------------------------------------------

#: The ordered column attributes of a finished episode — the single
#: definition of the block layout; the equivalence harness imports it too.
EPISODE_COLUMNS = (
    "states", "observations", "actions", "rewards",
    "next_states", "next_observations", "dones",
)
_SHM_EPISODES_KEY = "__shm_episode_blocks__"
_SHM_ARRAYS_KEY = "__shm_array_block__"


def episode_to_block(episode):
    """The ordered column arrays of a finished episode."""
    return [getattr(episode, column) for column in EPISODE_COLUMNS]


def episode_from_block(arrays, copy=True):
    """Rebuild an :class:`Episode` from its column arrays (views are copied
    so the episode owns its data before the ring slot is released)."""
    if copy:
        arrays = [np.array(a, copy=True) for a in arrays]
    return Episode.from_arrays(*arrays)


# -- parent-side channels -----------------------------------------------------


class PipeChannel:
    """One duplex pickle-pipe to a worker, with crash/task error separation.

    Args:
        process: The worker's ``multiprocessing.Process`` (liveness checks).
        connection: The parent end of the pipe.
    """

    kind = "pipe"

    def __init__(self, process, connection):
        self.process = process
        self.connection = connection

    def send(self, message):
        """Ship one request; raises :class:`WorkerCrashError` on a dead peer."""
        if not self.process.is_alive():
            raise WorkerCrashError(
                f"worker pid={self.process.pid} is dead "
                f"(exitcode={self.process.exitcode})"
            )
        try:
            self.connection.send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerCrashError(
                f"worker pid={self.process.pid} pipe closed on send: {exc}"
            ) from exc

    def _recv_message(self):
        try:
            return self.connection.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashError(
                f"worker pid={self.process.pid} died before replying "
                f"(exitcode={self.process.exitcode})"
            ) from exc

    def recv(self):
        """Await one reply; unwraps ``("ok", result)`` / raises on errors."""
        reply = self._recv_message()
        tag = reply[0]
        if tag == "error":
            raise WorkerTaskError(
                f"worker pid={self.process.pid} raised:\n{reply[1]}"
            )
        return reply[1]

    def close(self):
        """Close the parent end of the pipe."""
        try:
            self.connection.close()
        except OSError:
            pass


class ShmRingChannel(PipeChannel):
    """Pipe control channel plus a shared-memory ring for episode blocks.

    The worker announces each published block with a tiny ``("block",)``
    pipe message; :meth:`recv` drains those interleaved with the final
    ``("ok", result)`` reply, adopting the ring views into owned
    :class:`~repro.marl.buffer.Episode` objects and releasing the slots
    immediately, so the worker can keep publishing into a bounded ring while
    the parent assembles (that is the backpressure loop).
    """

    kind = "shm"

    def __init__(self, process, connection, ring):
        super().__init__(process, connection)
        self.ring = ring

    def _abort_check(self):
        """Abort a ring wait when the worker can no longer publish."""
        if not self.process.is_alive():
            raise WorkerCrashError(
                f"worker pid={self.process.pid} died mid-block "
                f"(exitcode={self.process.exitcode})"
            )

    def recv(self):
        pending = []
        pending_arrays = []
        while True:
            reply = self._recv_message()
            tag = reply[0]
            if tag == "block":
                view = self.ring.read_block(abort_check=self._abort_check)
                try:
                    # Chunk-assembled blocks are already owned; only true
                    # ring views need copying before the slots recycle.
                    pending.append(
                        episode_from_block(view.arrays, copy=not view.owned)
                    )
                finally:
                    view.close()
                continue
            if tag == "arrays":
                view = self.ring.read_block(abort_check=self._abort_check)
                try:
                    pending_arrays.extend(
                        a if view.owned else np.array(a, copy=True)
                        for a in view.arrays
                    )
                finally:
                    view.close()
                continue
            if tag == "error":
                raise WorkerTaskError(
                    f"worker pid={self.process.pid} raised:\n{reply[1]}"
                )
            result = reply[1]
            if isinstance(result, dict) and _SHM_EPISODES_KEY in result:
                expected = result.pop(_SHM_EPISODES_KEY)
                if expected != len(pending):
                    raise RuntimeError(
                        f"worker pid={self.process.pid} announced {expected} "
                        f"episode blocks but {len(pending)} arrived"
                    )
                result["episodes"] = pending
            if isinstance(result, dict) and _SHM_ARRAYS_KEY in result:
                expected = result.pop(_SHM_ARRAYS_KEY)
                if expected != len(pending_arrays):
                    raise RuntimeError(
                        f"worker pid={self.process.pid} announced {expected} "
                        f"reply arrays but {len(pending_arrays)} arrived"
                    )
                result["arrays"] = pending_arrays
            return result


# -- worker-side endpoints ----------------------------------------------------


class WorkerEndpoint:
    """Worker side of the transport seam: receive commands, send replies."""

    def __init__(self, connection):
        self.connection = connection

    def recv(self):
        return self.connection.recv()

    def send_error(self, traceback_text):
        self.connection.send(("error", traceback_text))

    def send_ok(self, result):
        self.connection.send(("ok", result))

    def close(self):
        try:
            self.connection.close()
        except OSError:
            pass


class PipeWorkerEndpoint(WorkerEndpoint):
    """Everything over the pickle-pipe (the portable fallback)."""


class ShmWorkerEndpoint(WorkerEndpoint):
    """Publishes a reply's episode blocks through the shared-memory ring.

    Every other part of the reply (stats, RNG states, the checkpoint) stays
    on the pipe — those are small control payloads.  For each episode the
    endpoint ships a ``("block",)`` announcement so the parent starts
    draining the ring while later episodes are still being framed; a block
    that outgrows the ring streams through the chunked path without any
    extra protocol.
    """

    def __init__(self, connection, ring):
        super().__init__(connection)
        self.ring = ring
        self._parent_pid = os.getppid()

    def _abort_check(self):
        """Abandon a ring wait once the parent can no longer drain it.

        Publishing waits on ring space for as long as it takes the parent
        to drain — a slow sibling shard legitimately stalls the drain loop
        for minutes — so there is no fixed timeout here; only the parent
        vanishing (daemon workers get reparented) aborts the wait.
        """
        if os.getppid() != self._parent_pid:
            raise WorkerCrashError(
                "parent process died; abandoning block publish"
            )

    def send_ok(self, result):
        has_episodes = isinstance(result, dict) and "episodes" in result
        has_arrays = isinstance(result, dict) and "arrays" in result
        if not has_episodes and not has_arrays:
            super().send_ok(result)
            return
        result = dict(result)
        if has_episodes:
            episodes = result.pop("episodes")
            result[_SHM_EPISODES_KEY] = len(episodes)
            for episode in episodes:
                # Announce first: the parent enters its drain loop before
                # the ring can fill, which is what lets a block bigger than
                # the ring stream through chunk frames without deadlock.
                self.connection.send(("block",))
                self.ring.publish(
                    episode_to_block(episode),
                    timeout=None,
                    abort_check=self._abort_check,
                )
        if has_arrays:
            # Generic reply arrays (the serving tier's probability blocks)
            # ride the same ring as one multi-array block.  asarray with
            # order="C", not ascontiguousarray — the latter's ndmin=1 would
            # silently turn 0-d arrays into shape (1,).
            arrays = [
                np.asarray(a, order="C") for a in result.pop("arrays")
            ]
            result[_SHM_ARRAYS_KEY] = len(arrays)
            if arrays:
                self.connection.send(("arrays",))
                self.ring.publish(
                    arrays, timeout=None, abort_check=self._abort_check
                )
        super().send_ok(result)

    def close(self):
        self.ring.close()
        super().close()


# -- the transport seam -------------------------------------------------------


class PipeTransport:
    """Parent-side factory for the pickle-pipe transport (stateless)."""

    kind = "pipe"

    def parent_channel(self, process, connection):
        return PipeChannel(process, connection)

    def worker_info(self):
        """The picklable description the worker builds its endpoint from."""
        return {"kind": "pipe"}

    def reset(self):
        """Nothing to reclaim between worker incarnations."""

    def close(self):
        """Nothing to release."""

    def segment_name(self):
        """No shared segment exists for this transport."""
        return None


class ShmTransport:
    """Parent-side owner of one worker's shared-memory ring segment.

    The parent allocates (and ultimately unlinks) the segment; the worker
    only ever attaches.  A worker crash-restart calls :meth:`reset`, which
    reclaims whatever the dead incarnation left in the ring by zeroing the
    cursors — safe because the replayed collect republishes every block.
    """

    kind = "shm"

    def __init__(self, slot_bytes=DEFAULT_SLOT_BYTES, n_slots=DEFAULT_N_SLOTS):
        self.ring = ShmRing(slot_bytes=slot_bytes, n_slots=n_slots)

    def parent_channel(self, process, connection):
        return ShmRingChannel(process, connection, self.ring)

    def worker_info(self):
        return {
            "kind": "shm",
            "name": self.ring.name,
            "slot_bytes": self.ring.slot_bytes,
            "n_slots": self.ring.n_slots,
        }

    def reset(self):
        self.ring.reset()

    def close(self):
        self.ring.close()

    def segment_name(self):
        return self.ring.name


def make_transport(kind, slot_bytes=DEFAULT_SLOT_BYTES,
                   n_slots=DEFAULT_N_SLOTS):
    """Build one worker's parent-side transport (``"pipe"`` or ``"shm"``)."""
    if kind == "pipe":
        return PipeTransport()
    if kind == "shm":
        return ShmTransport(slot_bytes=slot_bytes, n_slots=n_slots)
    raise ValueError(f"unknown transport {kind!r}; choose 'pipe' or 'shm'")


def make_worker_endpoint(connection, info):
    """Build the worker-side endpoint matching a transport description."""
    if info is None or info["kind"] == "pipe":
        return PipeWorkerEndpoint(connection)
    if info["kind"] == "shm":
        ring = ShmRing(
            slot_bytes=info["slot_bytes"], n_slots=info["n_slots"],
            name=info["name"],
        )
        return ShmWorkerEndpoint(connection, ring)
    raise ValueError(f"unknown transport description {info!r}")
