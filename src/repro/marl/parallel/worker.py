"""Worker-process side of the sharded rollout subsystem.

Each worker owns a contiguous shard of the global ``(N, ...)`` vectorized
state: a :class:`~repro.envs.vector.VectorEnv` over its rows plus a mirrored
copy of the parent's :class:`~repro.marl.actors.ActorGroup`, so the
expensive part of collection — the batched VQC evaluation — runs locally
and in parallel across workers.  The collection loop itself is the
already-tested in-process :class:`~repro.marl.rollout.VectorRolloutCollector`;
the only sharding-specific piece is how actions are sampled.

Determinism contract (why a shard is bit-identical to its rows in-process):

- **Env streams are per row.**  Every global env row keeps its own
  ``numpy.random.Generator``, spawned once by the parent and shipped to
  whichever worker owns the row — shard assignment cannot shift a row's
  draws.
- **Action sampling consumes the *global* stream.**  The in-process engine
  draws one uniform per (copy, agent) row per step from a single shared
  generator.  :class:`ShardActionAdapter` replays that exactly: every worker
  holds an identical replica of the shared stream, draws the full
  ``N_total * n_agents`` block each step, and uses only its shard's slice.
  All replicas advance in lockstep, so worker ``w``'s slice equals the
  block slice the in-process engine would hand those rows — and every
  worker finishes each collect with the same stream position, which the
  parent adopts.

The worker main loop answers ``init`` / ``collect`` / ``ping`` / ``close``
commands (plus a crash-injection hook for the restart tests) and returns a
checkpoint of its full shard state with every committed collect, which is
what makes parent-side crash recovery replay-exact.

``collect`` commands carry an *absolute* lockstep-round bound.  For
fixed-length envs the parent knows the stopping round a priori and one
``finalize`` command commits the whole pass — the historical single
round-trip.  For ragged envs (data-dependent termination) the stopping
round is a global property no shard can see alone, so the parent probes:
non-final commands advance the shard to the bound and reply only with the
full per-round completion-count history, the worker keeps the pass open
(snapshotting at each probed bound), and the final command commits at the
globally agreed stopping round — rewinding first if the shard speculated
past it.  Absolute bounds plus full count histories make every command
idempotent from the last committed checkpoint, so the parent's
restart-and-replay crash recovery needs no extra cases: a restarted worker
simply re-runs the pass from round zero to the commanded bound.
"""

from __future__ import annotations

import os
import traceback

import numpy as np

from repro import obs
from repro.envs.vector import make_vector_env
from repro.marl.actors import categorical_from_draws
from repro.marl.rollout import VectorRolloutCollector
from repro.marl.parallel.transport import (
    get_rng_state,
    make_worker_endpoint,
    rng_from_state,
)
from repro.obs import flight as _flight
from repro.obs import trace as _trace

__all__ = ["ShardActionAdapter", "worker_main"]


class ShardActionAdapter:
    """Act on a shard while consuming the global action-sampling stream.

    Drop-in for the :class:`~repro.marl.actors.ActorGroup` interface the
    vector collector uses (``n_agents`` + ``act_batch``): policy inference
    runs on the wrapped group over the shard's observations only, but the
    uniform draws come from the full ``n_envs_total * n_agents`` block so
    the stream stays bit-aligned with the in-process engine (see the module
    docstring).

    Args:
        actors: The worker's mirrored actor group.
        first_row: Global index of the shard's first env row.
        n_envs_total: Global lockstep copy count ``N``.
    """

    def __init__(self, actors, first_row, n_envs_total):
        self.actors = actors
        self.first_row = int(first_row)
        self.n_envs_total = int(n_envs_total)

    @property
    def n_agents(self):
        """Team size (delegated to the wrapped group)."""
        return self.actors.n_agents

    def act_batch(self, observations, rng, greedy=False):
        """``(shard, n_agents)`` actions from the global draw block."""
        if greedy:
            # Greedy execution consumes no randomness; delegate wholesale so
            # per-actor greedy support checks behave exactly as in-process.
            return self.actors.act_batch(observations, rng, greedy=True)
        observations = np.asarray(observations, dtype=np.float64)
        probs = self.actors.batch_probabilities(observations)
        n_rows, n_agents, n_actions = probs.shape
        draws = rng.random(self.n_envs_total * n_agents)
        start = self.first_row * n_agents
        shard_draws = draws[start:start + n_rows * n_agents]
        flat = categorical_from_draws(
            probs.reshape(n_rows * n_agents, n_actions), shard_draws
        )
        return flat.reshape(n_rows, n_agents)

    def __repr__(self):
        return (
            f"ShardActionAdapter(first_row={self.first_row}, "
            f"n_envs_total={self.n_envs_total})"
        )


class _WorkerState:
    """Everything a worker holds between commands: env shard + actor mirror."""

    def __init__(self, payload):
        self.actors = payload["actors"]
        # Population groups (the ES engine) map env rows to members by
        # *global* row index; tell the mirror where its shard starts.
        if hasattr(self.actors, "set_row_offset"):
            self.actors.set_row_offset(payload["first_row"])
        checkpoint = payload.get("checkpoint")
        if checkpoint is None:
            self.vector_env = make_vector_env(
                payload["env"], len(payload["rngs"]), rngs=payload["rngs"]
            )
        else:
            # Restart path: resume from the exact post-collect state the
            # parent cached — env arrays, row streams, and the collector's
            # carried-over observations — so no draw is repeated or skipped.
            self.vector_env = checkpoint["vector_env"]
        adapter = ShardActionAdapter(
            self.actors, payload["first_row"], payload["n_envs_total"]
        )
        self.collector = VectorRolloutCollector(self.vector_env, adapter)
        if checkpoint is not None:
            self.collector.restore_carry_state(checkpoint["carry"])
        self._session = None

    def _load_weights(self, weight_states):
        if weight_states is None:
            return
        if isinstance(weight_states, dict):
            # A group-level broadcast (the ES engine's base-plus-seeds
            # generation payload) instead of per-actor weight dicts; the
            # group reconstructs its member weights locally.
            self.actors.load_broadcast(weight_states)
            return
        for actor, state in zip(self.actors.actors, weight_states):
            if state is not None:
                actor.load_state_dict(state)

    def _begin_session(self, spec):
        """Open a collection pass from the last committed shard state.

        ``spec["telemetry"]`` mirrors the parent's obs flag into this
        process for the duration of the pass; when set, the worker's
        registry snapshot (reset at commit, so passes never double-count)
        rides the final reply's control payload back for deterministic
        parent-side merging.  ``spec["trace"]`` (when the parent has a
        trace open) joins this process to it: local spans parent to the
        sender's span and export to a per-pid sibling file.
        """
        if obs.enabled() != bool(spec["telemetry"]):
            obs.set_enabled(bool(spec["telemetry"]))
        _trace.adopt(spec.get("trace"))
        self._load_weights(spec["weights"])
        return {
            "rng": rng_from_state(spec["action_rng"]),
            "state": self.collector.begin_rounds(),
            "greedy": bool(spec["greedy"]),
            "snapshot": None,
        }

    def _take_snapshot(self, session):
        session["snapshot"] = {
            "collector": self.collector.snapshot_rounds(session["state"]),
            "action_rng": get_rng_state(session["rng"]),
        }

    def _rewind(self, session):
        """Un-run speculative rounds: back to the last snapshotted bound."""
        snapshot = session["snapshot"]
        self.collector.restore_rounds(snapshot["collector"], session["state"])
        session["rng"] = rng_from_state(snapshot["action_rng"])
        self.vector_env = self.collector.vector_env

    def collect(self, spec):
        """Advance the shard's pass to ``spec["bound"]`` lockstep rounds.

        Non-final commands reply with the pass's full per-round completion
        counts and keep it open; ``spec["finalize"]`` commits at exactly
        the bound and returns episodes, stats, RNG positions, and the
        crash checkpoint.  Bounds are absolute, so a replayed command on a
        freshly restarted worker (no open session) reproduces the dead
        incarnation's trajectory bit-exactly from the committed state.
        """
        session = self._session
        if session is None:
            session = self._session = self._begin_session(spec)
            # Probing passes may be rewound by the eventual finalize;
            # one-shot commits (the fixed-length fast path, or a finalize
            # replayed after a crash) never rewind, so they skip the copy.
            if not spec["finalize"]:
                self._take_snapshot(session)
        state = session["state"]
        bound = int(spec["bound"])
        if bound < state.rounds:
            self._rewind(session)
        elif not spec["finalize"] and state.rounds > 0:
            # The parent is probing further, which proves the stopping
            # round lies past everything run so far — shift the rewind
            # point up before speculating onward.
            self._take_snapshot(session)
        with obs.span("worker.collect"):
            self.collector.run_rounds(
                state, session["rng"], greedy=session["greedy"],
                max_rounds=bound
            )
        if not spec["finalize"]:
            return {"counts": state.counts_per_round()}
        self._session = None
        return self._commit(session, bool(spec["telemetry"]))

    def _commit(self, session, telemetry):
        state = session["state"]
        self.vector_env = self.collector.vector_env
        checkpoint = {
            "vector_env": self.vector_env,
            "carry": self.collector.carry_state(),
        }
        if obs.enabled():
            self.collector.publish_telemetry(state)
        reply = {
            "episodes": state.completed,
            "stats": state.completed_stats,
            "counts": state.counts_per_round(),
            "action_rng": get_rng_state(session["rng"]),
            "row_rngs": [get_rng_state(r) for r in self.vector_env.rngs],
            "checkpoint": checkpoint,
        }
        if telemetry:
            reply["telemetry"] = obs.snapshot(reset=True)
        return reply


def _configure_observability(payload):
    """Apply the init payload's optional observability keys.

    ``label`` names this process's lane in merged timelines; ``flight_ring``
    re-backs the flight recorder with a file ring the *parent* can recover
    after a SIGKILL (a dead process can't dump its own memory ring).
    """
    label = payload.get("label")
    if label:
        _trace.set_process_label(label)
    ring = payload.get("flight_ring")
    if ring:
        _flight.attach_file(ring)


def worker_main(connection, transport_info=None):
    """Blocking command loop run inside each worker process.

    ``transport_info`` selects how transition blocks travel back to the
    parent (see :func:`~repro.marl.parallel.transport.make_worker_endpoint`):
    ``None``/pipe replies pickle everything, shm replies publish episode
    blocks through the worker's shared-memory ring while the control
    payload stays on the pipe.

    Besides ``init`` / ``collect`` / ``ping`` / ``close`` the loop answers
    the clock-alignment handshake: ``clock`` replies with this process's
    raw monotonic microseconds and ``clock_set`` installs the offset the
    parent computed from the round trip, after which exported span
    timestamps land on the parent's timeline.  Every command is also
    ringed in the flight recorder, so a postmortem shows what the worker
    was asked to do before it died.
    """
    try:
        endpoint = make_worker_endpoint(connection, transport_info)
    except Exception:  # noqa: BLE001 — e.g. the shm segment vanished
        try:
            connection.send(("error", traceback.format_exc()))
            connection.close()
        except OSError:
            pass
        return
    state = None
    crash_armed = False
    while True:
        try:
            message = endpoint.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        command = message[0]
        if _flight.enabled():
            _flight.record("command", command=command)
        if command == "close":
            endpoint.send_ok(None)
            break
        if command == "arm_crash":
            # Crash-injection hook for the restart/requeue tests: the *next*
            # command kills the process mid-task, without a reply, exactly
            # like a segfault or OOM kill during collection would.
            crash_armed = True
            endpoint.send_ok(None)
            continue
        if crash_armed:
            os._exit(86)
        try:
            if command == "init":
                _configure_observability(message[1])
                state = _WorkerState(message[1])
                reply = None
            elif command == "collect":
                if state is None:
                    raise RuntimeError("'collect' before 'init'")
                reply = state.collect(message[1])
            elif command == "ping":
                reply = "pong"
            elif command == "clock":
                reply = _trace.raw_now_us()
            elif command == "clock_set":
                _trace.set_clock_offset_us(message[1])
                reply = None
            else:
                raise RuntimeError(f"unknown worker command {command!r}")
        except Exception:  # noqa: BLE001 — ship any failure to the parent
            if _flight.enabled():
                _flight.record("command_error", command=command)
            endpoint.send_error(traceback.format_exc())
        else:
            endpoint.send_ok(reply)
    endpoint.close()
