"""Vectorized episode collection over lockstep environment copies.

:func:`repro.marl.trainer.rollout_episode` is the reference serial
implementation of data collection — one env, one episode, one VQC forward
per agent per step.  This module is its batched counterpart: a
:class:`VectorRolloutCollector` steps a :class:`~repro.envs.vector.VectorEnv`
of ``N`` copies in lockstep, queries the whole team's policies for all
copies with one :meth:`~repro.marl.actors.ActorGroup.act_batch` call per
step, and slices the stacked results back into per-copy
:class:`~repro.marl.buffer.Episode` objects with exactly the Fig. 3 stat
accounting of the serial path (per-episode total reward, mean queue level,
empty ratio, overflow ratio).

Determinism contract:

- With ``N = 1`` and the vector env sharing the serial env's generator
  (:func:`~repro.envs.vector.make_vector_env`), collection is bit-identical
  to repeated ``rollout_episode`` calls: the auto-reset that follows each
  finished episode draws exactly what the next serial ``env.reset()``
  would, and the collector carries the freshly reset state over to the next
  ``collect`` call instead of resetting again.
- With ``N > 1``, runs are deterministic for a fixed seed: action sampling
  consumes one shared stream in (copy, agent) row-major order, and each
  copy's environment draws come from its own child stream.

Episodes complete in (step, copy index) order; partially collected episodes
left in flight when ``collect`` returns are discarded, and their copies are
re-initialised at the start of the next call.

This collector is also the engine each worker of the process-sharded
subsystem runs over its shard (:mod:`repro.marl.parallel`): the worker
substitutes an actor-group adapter whose ``act_batch`` consumes the global
action stream, and everything else — stepping, stat accounting, auto-reset
carry-over — is exactly this code.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.marl.buffer import Episode

__all__ = ["VectorRolloutCollector"]


class VectorRolloutCollector:
    """Collects completed episodes from lockstep environment copies.

    Args:
        vector_env: A :class:`~repro.envs.vector.VectorEnv` with
            ``auto_reset`` enabled.
        actors: An :class:`~repro.marl.actors.ActorGroup` with one policy
            per agent.
    """

    def __init__(self, vector_env, actors):
        if not vector_env.auto_reset:
            raise ValueError("VectorRolloutCollector needs auto_reset=True")
        if vector_env.n_agents != actors.n_agents:
            raise ValueError(
                f"env has {vector_env.n_agents} agents, group has "
                f"{actors.n_agents}"
            )
        self.vector_env = vector_env
        self.actors = actors
        self._observations = None
        self._states = None
        # True where the copy sits at an unconsumed fresh episode start
        # (left there by auto-reset); False where it is mid-episode.
        self._fresh = np.zeros(vector_env.n_envs, dtype=bool)

    @property
    def n_envs(self):
        """Number of lockstep copies."""
        return self.vector_env.n_envs

    def carry_state(self):
        """The between-collect carry-over, as a dict.

        Everything :meth:`collect` holds across calls besides the vector
        env itself: the current observations/states and the fresh-row mask.
        Supported contract for the process-sharded subsystem's crash
        checkpoints — pair with :meth:`restore_carry_state` on a collector
        wrapping the same (restored) vector env to resume without repeating
        or skipping a single draw.
        """
        return {
            "observations": self._observations,
            "states": self._states,
            "fresh": self._fresh.copy(),
        }

    def restore_carry_state(self, state):
        """Adopt a carry-over previously captured by :meth:`carry_state`."""
        self._observations = state["observations"]
        self._states = state["states"]
        self._fresh = state["fresh"].copy()

    def _prepare(self):
        """Ensure every copy is at an episode start before collecting."""
        if self._observations is None:
            self._observations, self._states = self.vector_env.reset()
            self._fresh[:] = True
            return
        stale = np.flatnonzero(~self._fresh)
        if stale.size:
            self._observations, self._states = self.vector_env.reset_rows(
                stale
            )
            self._fresh[stale] = True

    def collect(self, n_episodes, rng, greedy=False):
        """Collect ``n_episodes`` completed episodes; returns ``(episodes, stats)``.

        ``stats`` carries one dict per episode with the same keys and
        accounting as the serial ``rollout_episode``:
        ``total_reward``, ``length``, ``mean_queue``, ``empty_ratio``,
        ``overflow_ratio``.  Episodes are ordered by completion (step, copy
        index); all copies keep stepping until the quota is reached, so a
        final lockstep round may finish more episodes than requested — the
        surplus is discarded deterministically.
        """
        if n_episodes < 1:
            raise ValueError("n_episodes must be >= 1")
        self._prepare()
        env = self.vector_env
        n = env.n_envs
        episodes = [Episode() for _ in range(n)]
        queue_sums = np.zeros(n)
        empty_sums = np.zeros(n)
        overflow_sums = np.zeros(n)
        steps = np.zeros(n, dtype=np.int64)
        completed, completed_stats = [], []
        lockstep_rounds = 0
        while len(completed) < n_episodes:
            lockstep_rounds += 1
            actions = self.actors.act_batch(
                self._observations, rng, greedy=greedy
            )
            result = env.step(actions)
            self._fresh[:] = False
            for i in range(n):
                episodes[i].add(
                    self._states[i],
                    self._observations[i],
                    actions[i],
                    result.rewards[i],
                    result.final_states[i],
                    result.final_observations[i],
                    result.dones[i],
                )
                queue_sums[i] += result.mean_queues[i]
                empty_sums[i] += result.empty_ratios[i]
                overflow_sums[i] += result.overflow_ratios[i]
                steps[i] += 1
                if result.dones[i]:
                    episode = episodes[i].finish()
                    completed.append(episode)
                    completed_stats.append({
                        "total_reward": episode.total_reward,
                        "length": int(steps[i]),
                        "mean_queue": float(queue_sums[i] / steps[i]),
                        "empty_ratio": float(empty_sums[i] / steps[i]),
                        "overflow_ratio": float(overflow_sums[i] / steps[i]),
                    })
                    episodes[i] = Episode()
                    queue_sums[i] = empty_sums[i] = overflow_sums[i] = 0.0
                    steps[i] = 0
                    self._fresh[i] = True
            self._observations = result.observations
            self._states = result.states
        # Boundary-level accounting: the per-step quantities are already
        # tracked by the loop, so telemetry costs one publish per collect,
        # not per step.  Inside a sharded worker these counters land in the
        # worker's local registry and ride the snapshot reply to the parent.
        if obs.enabled():
            obs.counter("rollout.env_steps").inc(lockstep_rounds)
            obs.counter("rollout.env_rows").inc(lockstep_rounds * n)
            obs.counter("rollout.episodes").inc(len(completed))
        return completed[:n_episodes], completed_stats[:n_episodes]

    def __repr__(self):
        return (
            f"VectorRolloutCollector(n_envs={self.n_envs}, "
            f"n_agents={self.actors.n_agents})"
        )
