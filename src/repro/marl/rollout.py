"""Vectorized episode collection over lockstep environment copies.

:func:`repro.marl.trainer.rollout_episode` is the reference serial
implementation of data collection — one env, one episode, one VQC forward
per agent per step.  This module is its batched counterpart: a
:class:`VectorRolloutCollector` steps a :class:`~repro.envs.vector.VectorEnv`
of ``N`` copies in lockstep, queries the whole team's policies for all
copies with one :meth:`~repro.marl.actors.ActorGroup.act_batch` call per
step, and slices the stacked results back into per-copy
:class:`~repro.marl.buffer.Episode` objects with exactly the Fig. 3 stat
accounting of the serial path (per-episode total reward, mean queue level,
empty ratio, overflow ratio).

Determinism contract:

- With ``N = 1`` and the vector env sharing the serial env's generator
  (:func:`~repro.envs.vector.make_vector_env`), collection is bit-identical
  to repeated ``rollout_episode`` calls: the auto-reset that follows each
  finished episode draws exactly what the next serial ``env.reset()``
  would, and the collector carries the freshly reset state over to the next
  ``collect`` call instead of resetting again.
- With ``N > 1``, runs are deterministic for a fixed seed: action sampling
  consumes one shared stream in (copy, agent) row-major order, and each
  copy's environment draws come from its own child stream.

Episodes complete in (step, copy index) order — for ragged envs
(data-dependent termination) that order is the collection contract: every
copy steps every lockstep round, finished copies restart immediately, and
completions are appended round-by-round in ascending copy order.
Partially collected episodes left in flight when ``collect`` returns are
discarded, and their copies are re-initialised at the start of the next
call.

This collector is also the engine each worker of the process-sharded
subsystem runs over its shard (:mod:`repro.marl.parallel`): the worker
substitutes an actor-group adapter whose ``act_batch`` consumes the global
action stream, and everything else — stepping, stat accounting, auto-reset
carry-over — is exactly this code.  The worker drives the loop through the
round-bounded session API (:meth:`VectorRolloutCollector.begin_rounds` /
:meth:`~VectorRolloutCollector.run_rounds` over a :class:`RoundState`)
because for ragged envs the stopping round is a *global* property the
parent determines across all shards; :meth:`VectorRolloutCollector.collect`
is the same loop with the local episode quota as the stopping rule.
"""

from __future__ import annotations

import copy

import numpy as np

from repro import obs
from repro.marl.buffer import Episode
from repro.obs import flight as _flight

__all__ = ["RoundState", "VectorRolloutCollector"]


class RoundState:
    """Mutable loop state of one collection pass, resumable across calls.

    Holds the per-copy staging (in-flight :class:`Episode` objects and the
    Fig. 3 stat accumulators) plus the completed output lists.  Each
    completion is tagged with the 1-based lockstep round it finished on
    (``completed_rounds``) so the sharded parent can interleave shards
    back into global (round, row) completion order.
    """

    __slots__ = (
        "episodes",
        "queue_sums",
        "empty_sums",
        "overflow_sums",
        "steps",
        "completed",
        "completed_stats",
        "completed_rounds",
        "rounds",
    )

    def __init__(self, n_envs):
        self.episodes = [Episode() for _ in range(n_envs)]
        self.queue_sums = np.zeros(n_envs)
        self.empty_sums = np.zeros(n_envs)
        self.overflow_sums = np.zeros(n_envs)
        self.steps = np.zeros(n_envs, dtype=np.int64)
        self.completed = []
        self.completed_stats = []
        self.completed_rounds = []
        self.rounds = 0

    def counts_per_round(self):
        """Completion counts for rounds ``1..rounds`` as a plain list."""
        counts = [0] * self.rounds
        for round_index in self.completed_rounds:
            counts[round_index - 1] += 1
        return counts


class VectorRolloutCollector:
    """Collects completed episodes from lockstep environment copies.

    Args:
        vector_env: A :class:`~repro.envs.vector.VectorEnv` with
            ``auto_reset`` enabled.
        actors: An :class:`~repro.marl.actors.ActorGroup` with one policy
            per agent.
    """

    def __init__(self, vector_env, actors):
        if not vector_env.auto_reset:
            raise ValueError("VectorRolloutCollector needs auto_reset=True")
        if vector_env.n_agents != actors.n_agents:
            raise ValueError(
                f"env has {vector_env.n_agents} agents, group has "
                f"{actors.n_agents}"
            )
        self.vector_env = vector_env
        self.actors = actors
        # Ragged envs end episodes on data-dependent overflow events; those
        # terminations are the breadcrumbs the flight recorder keeps.
        self._ragged = bool(
            getattr(vector_env, "has_data_dependent_termination", False)
        )
        self._observations = None
        self._states = None
        # True where the copy sits at an unconsumed fresh episode start
        # (left there by auto-reset); False where it is mid-episode.
        self._fresh = np.zeros(vector_env.n_envs, dtype=bool)

    @property
    def n_envs(self):
        """Number of lockstep copies."""
        return self.vector_env.n_envs

    def carry_state(self):
        """The between-collect carry-over, as a dict.

        Everything :meth:`collect` holds across calls besides the vector
        env itself: the current observations/states and the fresh-row mask.
        Supported contract for the process-sharded subsystem's crash
        checkpoints — pair with :meth:`restore_carry_state` on a collector
        wrapping the same (restored) vector env to resume without repeating
        or skipping a single draw.
        """
        return {
            "observations": self._observations,
            "states": self._states,
            "fresh": self._fresh.copy(),
        }

    def restore_carry_state(self, state):
        """Adopt a carry-over previously captured by :meth:`carry_state`."""
        self._observations = state["observations"]
        self._states = state["states"]
        self._fresh = state["fresh"].copy()

    def _prepare(self):
        """Ensure every copy is at an episode start before collecting."""
        if self._observations is None:
            self._observations, self._states = self.vector_env.reset()
            self._fresh[:] = True
            return
        stale = np.flatnonzero(~self._fresh)
        if stale.size:
            self._observations, self._states = self.vector_env.reset_rows(
                stale
            )
            self._fresh[stale] = True

    def collect(self, n_episodes, rng, greedy=False):
        """Collect ``n_episodes`` completed episodes; returns ``(episodes, stats)``.

        ``stats`` carries one dict per episode with the same keys and
        accounting as the serial ``rollout_episode``:
        ``total_reward``, ``length``, ``mean_queue``, ``empty_ratio``,
        ``overflow_ratio``.  Episodes are ordered by completion (step, copy
        index); all copies keep stepping until the quota is reached, so a
        final lockstep round may finish more episodes than requested — the
        surplus is discarded deterministically.
        """
        if n_episodes < 1:
            raise ValueError("n_episodes must be >= 1")
        state = self.begin_rounds()
        self.run_rounds(state, rng, greedy=greedy, episode_quota=n_episodes)
        # Boundary-level accounting: the per-step quantities are already
        # tracked by the loop, so telemetry costs one publish per collect,
        # not per step.  Inside a sharded worker these counters land in the
        # worker's local registry and ride the snapshot reply to the parent.
        if obs.enabled():
            self.publish_telemetry(state)
        return state.completed[:n_episodes], state.completed_stats[:n_episodes]

    # -- round-bounded session API (the sharded ragged protocol) --------------

    def begin_rounds(self):
        """Start a collection pass: prepare all rows, return a fresh state.

        After :meth:`_prepare` every copy sits at an episode start, so the
        returned :class:`RoundState` (empty staging, zeroed accumulators)
        describes the loop exactly — which is what makes
        :meth:`snapshot_rounds` / :meth:`restore_rounds` sufficient for
        replaying the pass from any captured point.
        """
        self._prepare()
        return RoundState(self.vector_env.n_envs)

    def run_rounds(self, state, rng, greedy=False, *, max_rounds=None,
                   episode_quota=None):
        """Advance lockstep rounds, accumulating completions into ``state``.

        Stops before the first round that would exceed ``max_rounds``
        (absolute, counted from the pass start) or once ``state`` holds at
        least ``episode_quota`` completed episodes — whichever stopping
        rule is given; both may be combined.  All copies step every round;
        completions append in (round, copy index) order.
        """
        env = self.vector_env
        n = env.n_envs
        while True:
            if max_rounds is not None and state.rounds >= max_rounds:
                break
            if (episode_quota is not None
                    and len(state.completed) >= episode_quota):
                break
            state.rounds += 1
            actions = self.actors.act_batch(
                self._observations, rng, greedy=greedy
            )
            result = env.step(actions)
            self._fresh[:] = False
            for i in range(n):
                state.episodes[i].add(
                    self._states[i],
                    self._observations[i],
                    actions[i],
                    result.rewards[i],
                    result.final_states[i],
                    result.final_observations[i],
                    result.dones[i],
                )
                state.queue_sums[i] += result.mean_queues[i]
                state.empty_sums[i] += result.empty_ratios[i]
                state.overflow_sums[i] += result.overflow_ratios[i]
                state.steps[i] += 1
                if result.dones[i]:
                    if (self._ragged and _flight.enabled()
                            and result.overflow_ratios[i] > 0.0):
                        _flight.record(
                            "overflow_termination", row=i,
                            round=int(state.rounds),
                            length=int(state.steps[i]),
                        )
                    episode = state.episodes[i].finish()
                    state.completed.append(episode)
                    state.completed_stats.append({
                        "total_reward": episode.total_reward,
                        "length": int(state.steps[i]),
                        "mean_queue": float(
                            state.queue_sums[i] / state.steps[i]
                        ),
                        "empty_ratio": float(
                            state.empty_sums[i] / state.steps[i]
                        ),
                        "overflow_ratio": float(
                            state.overflow_sums[i] / state.steps[i]
                        ),
                    })
                    state.completed_rounds.append(state.rounds)
                    state.episodes[i] = Episode()
                    state.queue_sums[i] = 0.0
                    state.empty_sums[i] = 0.0
                    state.overflow_sums[i] = 0.0
                    state.steps[i] = 0
                    self._fresh[i] = True
            self._observations = result.observations
            self._states = result.states
        return state

    def snapshot_rounds(self, state):
        """Deep-copied resume point of a running pass.

        Captures everything :meth:`restore_rounds` needs to rewind the
        collector to this exact round: the vector env (queues, step
        counters, row generators), the between-round carry, the per-copy
        staging, and how much of the completed output existed.  The
        sharded ragged protocol uses this to un-run speculative rounds
        when the globally agreed stopping round turns out to be earlier
        than a worker's probed bound.
        """
        return copy.deepcopy({
            "vector_env": self.vector_env,
            "carry": self.carry_state(),
            "staging": {
                "episodes": state.episodes,
                "queue_sums": state.queue_sums,
                "empty_sums": state.empty_sums,
                "overflow_sums": state.overflow_sums,
                "steps": state.steps,
            },
            "rounds": state.rounds,
            "n_completed": len(state.completed),
        })

    def restore_rounds(self, snapshot, state):
        """Rewind the collector and ``state`` to a :meth:`snapshot_rounds` point.

        Adopts the snapshot's objects directly (single-use: take a fresh
        snapshot if another rewind to the same point could follow) and
        truncates the completed lists back to the captured length.
        """
        self.vector_env = snapshot["vector_env"]
        self.restore_carry_state(snapshot["carry"])
        staging = snapshot["staging"]
        state.episodes = staging["episodes"]
        state.queue_sums = staging["queue_sums"]
        state.empty_sums = staging["empty_sums"]
        state.overflow_sums = staging["overflow_sums"]
        state.steps = staging["steps"]
        n_completed = snapshot["n_completed"]
        del state.completed[n_completed:]
        del state.completed_stats[n_completed:]
        del state.completed_rounds[n_completed:]
        state.rounds = snapshot["rounds"]

    def publish_telemetry(self, state):
        """One rollout-counter publish for a finished pass."""
        obs.counter("rollout.env_steps").inc(state.rounds)
        obs.counter("rollout.env_rows").inc(state.rounds * self.n_envs)
        obs.counter("rollout.episodes").inc(len(state.completed))

    def __repr__(self):
        return (
            f"VectorRolloutCollector(n_envs={self.n_envs}, "
            f"n_agents={self.actors.n_agents})"
        )
