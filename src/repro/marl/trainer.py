"""The CTDE training loop (Algorithm 1).

One trainer epoch:

1. roll out ``episodes_per_epoch`` episodes with every agent *sampling*
   from its decentralised policy (line 6);
2. form the transition batch ``D`` (line 9);
3. compute TD targets ``y_t`` with the frozen target critic (lines 13-14);
4. descend the critic on ``sum ||y_t||^2`` and every actor on
   ``-sum y_t log pi`` (line 16);
5. periodically sync the target critic (lines 17-19).

The buffer is cleared after each update (MAPG is on-policy; see
:mod:`repro.marl.buffer`).

Collection (step 1) has three interchangeable engines: the serial reference
:func:`rollout_episode` (ground truth, one env at a time), the vectorized
path (``TrainingConfig.rollout_envs`` lockstep env copies + batched policy
inference; see :mod:`repro.envs.vector` and :mod:`repro.marl.rollout`), and
the process-sharded path (``TrainingConfig.rollout_workers`` worker
processes each owning a shard of the lockstep copies; see
:mod:`repro.marl.parallel`).  The chain of determinism contracts — sharded
is bit-identical to vectorized for any worker count, vectorized with one
copy is bit-identical to serial — is pinned by the regression tests, so
every engine produces the same episodes, metrics, and RNG stream positions
under a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.envs.vector import make_vector_env
from repro.marl import mapg
from repro.marl.buffer import Episode, RolloutBuffer
from repro.marl.critics import paired_critic_values
from repro.marl.metrics import MetricsHistory, publish_epoch_record
from repro.marl.parallel import ShardedRolloutCollector
from repro.marl.rollout import VectorRolloutCollector
from repro.nn.optim import Adam, clip_grad_norm, gradient_norm

__all__ = ["CTDETrainer", "rollout_episode"]


def rollout_episode(env, actor_group, rng, greedy=False):
    """Roll out one episode; returns ``(episode, stats)``.

    ``stats`` carries the Fig. 3 quantities averaged over the episode:
    total reward, mean queue level, empty ratio and overflow ratio.
    Standalone so non-trainable policies (the random walk) can be evaluated
    with exactly the same accounting as trained frameworks.
    """
    episode = Episode()
    observations, state = env.reset()
    done = False
    queue_sum = empty_sum = overflow_sum = 0.0
    steps = 0
    while not done:
        actions = actor_group.act(observations, rng, greedy=greedy)
        result = env.step(actions)
        episode.add(
            state,
            observations,
            actions,
            result.reward,
            result.state,
            result.observations,
            result.done,
        )
        queue_sum += result.info["mean_queue"]
        empty_sum += result.info["empty_ratio"]
        overflow_sum += result.info["overflow_ratio"]
        steps += 1
        observations, state = result.observations, result.state
        done = result.done
    episode.finish()
    if obs.enabled():
        obs.counter("rollout.env_steps").inc(steps)
        obs.counter("rollout.env_rows").inc(steps)
        obs.counter("rollout.episodes").inc()
    stats = {
        "total_reward": episode.total_reward,
        "length": steps,
        "mean_queue": queue_sum / steps,
        "empty_ratio": empty_sum / steps,
        "overflow_ratio": overflow_sum / steps,
    }
    return episode, stats


class CTDETrainer:
    """Centralised-training / decentralised-execution actor-critic.

    Args:
        env: A :class:`~repro.envs.base.MultiAgentEnv`.
        actor_group: An :class:`~repro.marl.actors.ActorGroup` (one policy
            per agent).
        critic: Centralised critic ``V_psi``.
        target_critic: Frozen copy ``V_phi`` (same architecture).
        config: :class:`~repro.config.TrainingConfig`.
        rng: Generator for action sampling.
    """

    def __init__(self, env, actor_group, critic, target_critic, config, rng):
        if env.n_agents != actor_group.n_agents:
            raise ValueError(
                f"env has {env.n_agents} agents, group has "
                f"{actor_group.n_agents}"
            )
        self.env = env
        self.actors = actor_group
        self.critic = critic
        self.target_critic = target_critic
        self.config = config
        self.rng = rng
        self.buffer = RolloutBuffer(capacity=max(64, config.episodes_per_epoch))
        self.history = MetricsHistory()
        self.epoch = 0
        # Periodic target syncs performed by train_epoch (the constructor's
        # initial copy is not counted).  Checkpointed alongside the optimizer
        # moments so a resumed run syncs on the same schedule.
        self.target_syncs = 0
        self._collector = None
        self._sharded_collector = None

        actor_params = actor_group.parameters()
        self.actor_optimizer = (
            Adam(actor_params, lr=config.actor_lr) if actor_params else None
        )
        self.critic_optimizer = Adam(critic.parameters(), lr=config.critic_lr)
        self.sync_target()

    # -- rollouts ------------------------------------------------------------

    def sync_target(self):
        """Copy the online critic into the target critic (``phi <- psi``)."""
        self.target_critic.load_state_dict(self.critic.state_dict())

    def collect_episode(self, greedy=False):
        """Roll out one episode with the current policies (serial reference)."""
        return rollout_episode(self.env, self.actors, self.rng, greedy=greedy)

    @property
    def rollout_envs(self):
        """Effective lockstep env copies for epoch collection (the config's
        divisor clamp — see ``TrainingConfig.effective_rollout_envs``)."""
        return self.config.effective_rollout_envs

    @property
    def rollout_workers(self):
        """Effective worker process count for sharded collection (clamped
        to the effective copy count by the config)."""
        return self.config.effective_rollout_workers

    @property
    def sharded_rollouts(self):
        """Whether epoch collection goes through the process-sharded engine."""
        mode = self.config.rollout_mode
        if mode == "sharded":
            return True
        return mode == "auto" and self.rollout_workers > 1

    @property
    def vectorized_rollouts(self):
        """Whether epoch collection goes through the vectorized engine."""
        mode = self.config.rollout_mode
        if mode == "serial" or mode == "sharded":
            return False
        if mode == "vector":
            return True
        return self.rollout_envs > 1 and not self.sharded_rollouts

    def vector_collector(self):
        """The lazily built vectorized collection engine.

        Built once and kept across epochs: copy 0 shares ``self.env``'s
        generator (so one-copy vectorized collection is bit-identical to the
        serial loop) and the auto-reset state carries over between epochs
        exactly like consecutive serial ``env.reset()`` calls.
        """
        if self._collector is None:
            vector_env = make_vector_env(self.env, self.rollout_envs)
            self._collector = VectorRolloutCollector(vector_env, self.actors)
        return self._collector

    def sharded_collector(self):
        """The lazily built process-sharded collection engine.

        Built once and kept across epochs like the in-process collector; the
        worker pool persists between updates and receives the current actor
        weights with every collect.  Shut down via :meth:`close`.
        """
        if self._sharded_collector is None:
            self._sharded_collector = ShardedRolloutCollector(
                self.env,
                self.actors,
                n_envs=self.rollout_envs,
                n_workers=self.rollout_workers,
                transport=self.config.rollout_transport,
            )
        return self._sharded_collector

    def collect_episodes(self, n_episodes, greedy=False):
        """Collect ``n_episodes`` episodes; returns ``(episodes, stats)`` lists.

        Dispatches to the process-sharded engine, the vectorized engine, or
        the serial reference loop according to ``TrainingConfig.rollout_mode``.
        """
        if self.sharded_rollouts:
            return self.sharded_collector().collect(
                n_episodes, self.rng, greedy=greedy
            )
        if self.vectorized_rollouts:
            return self.vector_collector().collect(
                n_episodes, self.rng, greedy=greedy
            )
        episodes, all_stats = [], []
        for _ in range(n_episodes):
            episode, stats = self.collect_episode(greedy=greedy)
            episodes.append(episode)
            all_stats.append(stats)
        return episodes, all_stats

    # -- updates ----------------------------------------------------------------

    def update(self, batch):
        """One gradient step on critic and actors from a transition batch.

        Besides the losses, the returned stats carry barren-plateau
        diagnostics: the pre-clip gradient norms of critic and actor team
        and the mean policy entropy.  All are pure functions of the batch,
        so they are bit-identical across collection engines.
        """
        cfg = self.config

        # Critic forward (differentiable) + frozen bootstrap values.  On
        # quantum critic pairs both forwards share one stacked circuit
        # evaluation over the per-sample weight axis (see
        # repro.marl.critics.paired_critic_values).
        with obs.span("trainer.critic"):
            values, next_values = paired_critic_values(
                self.critic, self.target_critic, batch.states,
                batch.next_states,
            )
            targets = mapg.td_targets(
                batch.rewards, next_values, batch.dones, cfg.gamma
            )
            advantages = mapg.td_errors(targets, values.data)

            critic_loss = mapg.critic_loss(values, targets)
            self.critic_optimizer.zero_grad()
            critic_loss.backward()
            if cfg.grad_clip is not None:
                critic_grad_norm = clip_grad_norm(
                    self.critic.parameters(), cfg.grad_clip
                )
            else:
                critic_grad_norm = gradient_norm(self.critic.parameters())
            self.critic_optimizer.step()

        actor_loss_value = 0.0
        actor_grad_norm = 0.0
        policy_entropy = 0.0
        if self.actor_optimizer is not None:
            with obs.span("trainer.actor"):
                # One stacked policy evaluation for the whole team (a single
                # batched circuit call + adjoint sweep on quantum groups)
                # instead of sequential per-agent forwards.
                log_probs = self.actors.stacked_log_policies(
                    batch.observations
                )
                flat = np.asarray(log_probs.data, dtype=np.float64).reshape(
                    -1, log_probs.shape[-1]
                )
                policy_entropy = float(
                    -np.mean(np.sum(np.exp(flat) * flat, axis=-1))
                )
                total_loss = mapg.team_actor_loss(
                    log_probs, batch.actions, advantages,
                    entropy_coef=cfg.entropy_coef,
                )
                self.actor_optimizer.zero_grad()
                total_loss.backward()
                if cfg.grad_clip is not None:
                    actor_grad_norm = clip_grad_norm(
                        self.actors.parameters(), cfg.grad_clip
                    )
                else:
                    actor_grad_norm = gradient_norm(self.actors.parameters())
                self.actor_optimizer.step()
                actor_loss_value = total_loss.item()

        return {
            "critic_loss": critic_loss.item(),
            "actor_loss": actor_loss_value,
            "mean_abs_td_error": float(np.mean(np.abs(advantages))),
            "mean_value": float(np.mean(values.data)),
            "critic_grad_norm": float(critic_grad_norm),
            "actor_grad_norm": float(actor_grad_norm),
            "policy_entropy": policy_entropy,
        }

    def train_epoch(self):
        """Collect one batch of episodes, update once, record metrics.

        While telemetry is on the epoch runs as one traced tree: a trace
        is opened lazily (joined by rollout workers over the transport
        seam) and every span below — rollout, worker shards, update —
        parents back to this epoch span.
        """
        if obs.enabled():
            obs.begin_trace(label="trainer")
        with obs.span("trainer.epoch"):
            return self._train_epoch()

    def _train_epoch(self):
        cfg = self.config
        self.buffer.clear()
        with obs.span("trainer.rollout"):
            episodes, episode_stats = self.collect_episodes(
                cfg.episodes_per_epoch, greedy=False
            )
        self.buffer.add_episodes(episodes)

        with obs.span("trainer.update"):
            update_stats = self.update(self.buffer.batch())

        self.epoch += 1
        if self.epoch % cfg.target_update_period == 0:
            self.sync_target()
            self.target_syncs += 1

        record = {
            "epoch": self.epoch,
            "total_reward": float(
                np.mean([s["total_reward"] for s in episode_stats])
            ),
            "mean_queue": float(np.mean([s["mean_queue"] for s in episode_stats])),
            "empty_ratio": float(
                np.mean([s["empty_ratio"] for s in episode_stats])
            ),
            "overflow_ratio": float(
                np.mean([s["overflow_ratio"] for s in episode_stats])
            ),
        }
        record.update(update_stats)
        self.history.append(record)
        publish_epoch_record(record)
        return record

    def train(self, n_epochs=None, callback=None):
        """Run the full loop; returns the :class:`MetricsHistory`.

        Args:
            n_epochs: Number of epochs (defaults to the config's).
            callback: Optional ``fn(record)`` called after each epoch
                (progress printing, early stopping by raising StopIteration).
        """
        n_epochs = n_epochs if n_epochs is not None else self.config.n_epochs
        for _ in range(n_epochs):
            record = self.train_epoch()
            if callback is not None:
                try:
                    callback(record)
                except StopIteration:
                    break
        return self.history

    # -- lifecycle ----------------------------------------------------------------

    def close(self):
        """Shut down the sharded worker pool, if one was started.

        Idempotent and safe to call on trainers that never sharded; the
        in-process engines hold no external resources.  A later collect
        rebuilds the pool lazily — but note that closing *mid-training*
        ends bit-parity with an uninterrupted run: the rebuilt pool
        re-derives row streams from the (advanced) env generator and resets
        its copies, so subsequent episodes are still seed-deterministic yet
        not the ones an uninterrupted sharded/vector run would have
        collected.  Treat ``close`` as end-of-collection, not a pause.
        """
        if self._sharded_collector is not None:
            self._sharded_collector.close()
            self._sharded_collector = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.close()

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, n_episodes=None, greedy=True):
        """Run evaluation episodes; returns averaged episode stats."""
        n_episodes = (
            n_episodes
            if n_episodes is not None
            else self.config.evaluation_episodes
        )
        all_stats = []
        for _ in range(n_episodes):
            _, stats = self.collect_episode(greedy=greedy)
            all_stats.append(stats)
        return {
            key: float(np.mean([s[key] for s in all_stats]))
            for key in all_stats[0]
        }
