"""Classical neural-network substrate: autodiff, layers, optimisers.

A numpy-only replacement for the slice of PyTorch the paper depends on:
reverse-mode autodiff (:mod:`~repro.nn.tensor`), differentiable functions
(:mod:`~repro.nn.functional`), modules (:mod:`~repro.nn.layers`), optimisers
(:mod:`~repro.nn.optim`) and the hybrid quantum layer
(:mod:`~repro.nn.quantum_layer`).
"""

from repro.nn import functional
from repro.nn.layers import (
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    count_parameters,
    mlp,
)
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.quantum_layer import QuantumLayer
from repro.nn.tensor import Parameter, Tensor, as_tensor

__all__ = [
    "functional",
    "Tensor",
    "Parameter",
    "as_tensor",
    "Module",
    "Linear",
    "Tanh",
    "ReLU",
    "Sigmoid",
    "Sequential",
    "mlp",
    "count_parameters",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "QuantumLayer",
]
