"""Differentiable functions over :class:`~repro.nn.tensor.Tensor`.

Activations, numerically stable (log-)softmax, gather, stacking and the loss
functions used by the MARL trainer.  Everything here builds graph nodes the
same way the :class:`Tensor` operators do.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "exp",
    "log",
    "tanh",
    "relu",
    "sigmoid",
    "softmax",
    "log_softmax",
    "gather",
    "concatenate",
    "stack",
    "mse_loss",
    "huber_loss",
]


def exp(x):
    """Elementwise exponential."""
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def backward_fn(grad):
        x._accumulate(grad * out_data)

    return Tensor._from_op(out_data, (x,), backward_fn)


def log(x):
    """Elementwise natural logarithm."""
    x = as_tensor(x)
    out_data = np.log(x.data)

    def backward_fn(grad):
        x._accumulate(grad / x.data)

    return Tensor._from_op(out_data, (x,), backward_fn)


def tanh(x):
    """Elementwise hyperbolic tangent."""
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward_fn(grad):
        x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._from_op(out_data, (x,), backward_fn)


def relu(x):
    """Elementwise rectifier."""
    x = as_tensor(x)
    mask = x.data > 0
    out_data = np.where(mask, x.data, 0.0)

    def backward_fn(grad):
        x._accumulate(grad * mask)

    return Tensor._from_op(out_data, (x,), backward_fn)


def sigmoid(x):
    """Elementwise logistic function."""
    x = as_tensor(x)
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward_fn(grad):
        x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._from_op(out_data, (x,), backward_fn)


def _stable_softmax(data, axis):
    shifted = data - data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def softmax(x, axis=-1):
    """Numerically stable softmax (the paper's policy head)."""
    x = as_tensor(x)
    out_data = _stable_softmax(x.data, axis)

    def backward_fn(grad):
        # dL/dx = s * (grad - sum(grad * s))
        dot = np.sum(grad * out_data, axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._from_op(out_data, (x,), backward_fn)


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax (for policy-gradient log-probs)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    out_data = shifted - log_norm
    softmax_data = np.exp(out_data)

    def backward_fn(grad):
        total = grad.sum(axis=axis, keepdims=True)
        x._accumulate(grad - softmax_data * total)

    return Tensor._from_op(out_data, (x,), backward_fn)


def gather(x, indices, axis=1):
    """Select one element per row: ``out[b] = x[b, indices[b]]``.

    Used to pick the log-probability of the executed action out of the
    policy's per-action output.
    """
    x = as_tensor(x)
    if axis != 1 or x.data.ndim != 2:
        raise ValueError("gather currently supports 2-D tensors along axis 1")
    indices = np.asarray(indices, dtype=np.int64)
    if indices.shape != (x.data.shape[0],):
        raise ValueError(
            f"indices shape {indices.shape} != ({x.data.shape[0]},)"
        )
    rows = np.arange(x.data.shape[0])
    out_data = x.data[rows, indices]

    def backward_fn(grad):
        full = np.zeros_like(x.data)
        full[rows, indices] = grad
        x._accumulate(full)

    return Tensor._from_op(out_data, (x,), backward_fn)


def concatenate(tensors, axis=0):
    """Concatenate tensors along an axis (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor._from_op(out_data, tuple(tensors), backward_fn)


def stack(tensors, axis=0):
    """Stack equal-shape tensors along a new axis (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad):
        slices = np.moveaxis(grad, axis, 0)
        for t, piece in zip(tensors, slices):
            t._accumulate(piece)

    return Tensor._from_op(out_data, tuple(tensors), backward_fn)


def mse_loss(prediction, target):
    """Mean squared error; ``target`` is treated as constant."""
    prediction = as_tensor(prediction)
    target = as_tensor(target).detach()
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction, target, delta=1.0):
    """Huber loss (quadratic near zero, linear in the tails).

    Useful as a robust alternative critic loss under shot noise.
    """
    prediction = as_tensor(prediction)
    target = as_tensor(target).detach()
    diff = prediction.data - target.data
    quadratic = np.abs(diff) <= delta

    out_data = np.where(
        quadratic, 0.5 * diff**2, delta * (np.abs(diff) - 0.5 * delta)
    ).mean()

    def backward_fn(grad):
        local = np.where(quadratic, diff, delta * np.sign(diff))
        prediction._accumulate(grad * local / diff.size)

    return Tensor._from_op(out_data, (prediction,), backward_fn)
