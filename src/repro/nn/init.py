"""Weight initialisers for linear layers."""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_fan_in", "xavier_uniform", "zeros"]


def uniform_fan_in(rng, fan_in, shape):
    """PyTorch's default Linear init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(rng, fan_in, fan_out, shape):
    """Glorot/Xavier uniform init."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape):
    """All-zero init (biases)."""
    return np.zeros(shape)
