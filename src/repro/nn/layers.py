"""Neural-network modules: the classical half of the hybrid models.

A tiny PyTorch-shaped module system.  Modules discover their parameters (and
sub-modules' parameters) by attribute reflection; ``state_dict`` /
``load_state_dict`` enable the target-critic synchronisation step of the
paper's Algorithm 1 (line 18, ``phi <- psi``).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init as _init
from repro.nn.tensor import Parameter, Tensor, as_tensor

__all__ = [
    "Module",
    "Linear",
    "Tanh",
    "ReLU",
    "Sigmoid",
    "Sequential",
    "mlp",
    "count_parameters",
]


class Module:
    """Base class with parameter discovery and (de)serialisation."""

    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def named_parameters(self, prefix=""):
        """Yield ``(name, Parameter)`` pairs, recursing into sub-modules."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{i}", item

    def parameters(self):
        """All trainable parameters as a list."""
        return [p for _, p in self.named_parameters()]

    def zero_grad(self):
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self):
        """Total trainable scalar count (the paper's parameter budget)."""
        return sum(p.size for p in self.parameters())

    def state_dict(self):
        """Copy of every parameter's data, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state):
        """Load parameter data (shapes must match exactly)."""
        own = dict(self.named_parameters())
        if set(own) != set(state):
            missing = set(own) - set(state)
            extra = set(state) - set(own)
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, p in own.items():
            incoming = np.asarray(state[name], dtype=np.float64)
            if incoming.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{incoming.shape} vs {p.data.shape}"
                )
            p.data = incoming.copy()

    def __repr__(self):
        return f"{type(self).__name__}(n_parameters={self.n_parameters()})"


class Linear(Module):
    """Affine map ``y = x W + b``.

    Args:
        in_features: Input width.
        out_features: Output width.
        rng: Generator for weight initialisation.
        bias: Include a bias term.
    """

    def __init__(self, in_features, out_features, rng, bias=True):
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            _init.uniform_fan_in(rng, in_features, (in_features, out_features))
        )
        self.bias = (
            Parameter(_init.uniform_fan_in(rng, in_features, (out_features,)))
            if bias
            else None
        )

    def forward(self, x):
        """Apply the affine map to a ``(B, in_features)`` tensor."""
        x = as_tensor(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_features)
        return out

    def __repr__(self):
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Tanh(Module):
    """Tanh activation module."""

    def forward(self, x):
        return F.tanh(x)


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x):
        return F.relu(x)


class Sigmoid(Module):
    """Sigmoid activation module."""

    def forward(self, x):
        return F.sigmoid(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules):
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x

    def __repr__(self):
        inner = ", ".join(repr(m) for m in self.modules)
        return f"Sequential({inner})"


_ACTIVATIONS = {"tanh": Tanh, "relu": ReLU, "sigmoid": Sigmoid}


def mlp(sizes, rng, activation="tanh", output_activation=None):
    """Build a multi-layer perceptron.

    Args:
        sizes: Layer widths including input and output,
            e.g. ``(4, 64, 64, 4)``.
        rng: Generator for initialisation.
        activation: Hidden activation name.
        output_activation: Optional final activation name.
    """
    if len(sizes) < 2:
        raise ValueError("mlp needs at least input and output sizes")
    if activation not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}")
    modules = []
    for i in range(len(sizes) - 1):
        modules.append(Linear(sizes[i], sizes[i + 1], rng))
        if i < len(sizes) - 2:
            modules.append(_ACTIVATIONS[activation]())
    if output_activation is not None:
        if output_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {output_activation!r}")
        modules.append(_ACTIVATIONS[output_activation]())
    return Sequential(*modules)


def count_parameters(sizes):
    """Parameter count of an :func:`mlp` with the given sizes (incl. biases)."""
    return sum(
        sizes[i] * sizes[i + 1] + sizes[i + 1] for i in range(len(sizes) - 1)
    )
