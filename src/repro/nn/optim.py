"""Gradient-descent optimisers (Table II specifies Adam)."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, parameters, lr):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = float(lr)

    def zero_grad(self):
        """Clear gradients on every managed parameter."""
        for p in self.parameters:
            p.zero_grad()

    def step(self):
        """Apply one update; subclasses must override."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters, lr, momentum=0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        """``v = m*v + g;  p -= lr * v`` (parameters with no grad are skipped)."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, parameters, lr, betas=(0.9, 0.999), eps=1e-8):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        """One Adam update (parameters with no grad are skipped)."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters, max_norm):
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Stabilises MAPG updates when TD targets
    spike (e.g. early training with large queue-overflow penalties).
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in parameters))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in parameters:
            p.grad *= scale
    return total
