"""Gradient-descent optimisers (Table II specifies Adam)."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "gradient_norm"]


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, parameters, lr):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = float(lr)

    def zero_grad(self):
        """Clear gradients on every managed parameter."""
        for p in self.parameters:
            p.zero_grad()

    def step(self):
        """Apply one update; subclasses must override."""
        raise NotImplementedError

    def state_dict(self):
        """Mutable optimiser state as ``name -> array`` (copies).

        Subclasses with per-parameter slots override; the base optimiser is
        stateless so resuming needs nothing beyond the parameters themselves.
        """
        return {}

    def load_state_dict(self, state):
        """Restore state captured by :meth:`state_dict` (strict on keys/shapes)."""
        if state:
            raise KeyError(f"unexpected optimizer state keys: {sorted(state)}")

    def _check_state_keys(self, state, expected):
        missing = set(expected) - set(state)
        unexpected = set(state) - set(expected)
        if missing or unexpected:
            raise KeyError(
                f"optimizer state mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )

    def _load_slots(self, state, name):
        """Validate and copy per-parameter slot arrays ``{name}.{i}``."""
        slots = []
        for i, p in enumerate(self.parameters):
            value = np.asarray(state[f"{name}.{i}"], dtype=p.data.dtype)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"optimizer slot {name}.{i} has shape {value.shape}, "
                    f"parameter has {p.data.shape}"
                )
            slots.append(value.copy())
        return slots


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters, lr, momentum=0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        """``v = m*v + g;  p -= lr * v`` (parameters with no grad are skipped)."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def state_dict(self):
        return {f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state):
        expected = [f"velocity.{i}" for i in range(len(self.parameters))]
        self._check_state_keys(state, expected)
        self._velocity = self._load_slots(state, "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, parameters, lr, betas=(0.9, 0.999), eps=1e-8):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        """One Adam update (parameters with no grad are skipped)."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self):
        state = {"step_count": np.asarray(self._step_count, dtype=np.int64)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state):
        n = len(self.parameters)
        expected = ["step_count"]
        expected += [f"m.{i}" for i in range(n)]
        expected += [f"v.{i}" for i in range(n)]
        self._check_state_keys(state, expected)
        m = self._load_slots(state, "m")
        v = self._load_slots(state, "v")
        self._step_count = int(state["step_count"])
        self._m = m
        self._v = v


def clip_grad_norm(parameters, max_norm):
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Stabilises MAPG updates when TD targets
    spike (e.g. early training with large queue-overflow penalties).
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in parameters))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in parameters:
            p.grad *= scale
    return total
def gradient_norm(parameters):
    """Global L2 norm of the current gradients (no clipping).

    The telemetry-side companion of :func:`clip_grad_norm` for runs without
    a clip bound; same accounting (parameters without gradients are
    skipped, 0.0 when none carry one).
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    return np.sqrt(sum(float(np.sum(p.grad**2)) for p in parameters))
