"""The hybrid bridge: a VQC as an autodiff module.

``QuantumLayer`` makes a variational quantum circuit behave exactly like any
other :class:`~repro.nn.layers.Module`: its forward pass runs the circuit on
a backend and returns measured expectation values as a Tensor; its backward
pass computes the vector-Jacobian product with respect to both the circuit
weights and the classical inputs using adjoint differentiation (default) or
the parameter-shift rule (required for noisy / shot-based backends).

This is the piece that lets a quantum actor's softmax policy, a quantum
critic's value head, and classical layers train end-to-end under one
optimiser — the paper's hybrid quantum-classical training loop.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Parameter, Tensor, as_tensor
from repro.quantum.backends import StatevectorBackend
from repro.quantum.gradients import backward as _qbackward

__all__ = ["QuantumLayer"]


class QuantumLayer(Module):
    """Adapt a :class:`~repro.quantum.vqc.VQC` into an autodiff module.

    Args:
        vqc: The circuit bundle (encoder + ansatz + observables).
        rng: Generator for weight initialisation.
        backend: Execution backend; defaults to exact statevector.
        gradient_method: ``"adjoint"`` (default, exact backends only),
            ``"parameter_shift"`` or ``"finite_diff"``.
    """

    def __init__(self, vqc, rng, backend=None, gradient_method="adjoint"):
        self.vqc = vqc
        self.backend = backend if backend is not None else StatevectorBackend()
        if gradient_method == "adjoint" and not self.backend.supports_adjoint:
            raise ValueError(
                f"backend {self.backend!r} cannot use adjoint differentiation; "
                "pass gradient_method='parameter_shift'"
            )
        if gradient_method == "adjoint" and self.backend.shots is not None:
            raise ValueError(
                "adjoint differentiation needs exact expectations (shots=None)"
            )
        self.gradient_method = gradient_method
        self.weights = Parameter(vqc.initial_weights(rng))

    def forward(self, x):
        """Run the circuit on a ``(B, n_features)`` batch of inputs.

        Returns a ``(B, n_outputs)`` tensor of expectation values wired into
        the autodiff graph through both ``x`` and the circuit weights.
        """
        x = as_tensor(x)
        if x.data.ndim != 2:
            raise ValueError(f"expected (B, features) input, got {x.shape}")
        if x.data.shape[1] != self.vqc.n_features:
            raise ValueError(
                f"circuit expects {self.vqc.n_features} features, "
                f"got {x.data.shape[1]}"
            )
        weights = self.weights
        vqc = self.vqc
        backend = self.backend
        method = self.gradient_method

        out_data = backend.run(vqc.circuit, vqc.observables, x.data, weights.data)

        def backward_fn(grad):
            # The backend is passed for every method: the adjoint path
            # inherits its array backend (device-resident reverse sweep),
            # the shift/finite-diff paths execute on it directly.  Results
            # are host numpy arrays either way.
            input_grads, weight_grads = _qbackward(
                vqc.circuit,
                vqc.observables,
                x.data,
                weights.data,
                grad,
                method=method,
                backend=backend,
            )
            if weight_grads is not None:
                weights._accumulate(weight_grads)
            if input_grads is not None:
                x._accumulate(input_grads)

        return Tensor._from_op(out_data, (x, weights), backward_fn)

    def __repr__(self):
        return (
            f"QuantumLayer(n_qubits={self.vqc.n_qubits}, "
            f"n_features={self.vqc.n_features}, "
            f"n_weights={self.vqc.n_weights}, "
            f"gradient_method={self.gradient_method!r})"
        )
