"""A small reverse-mode automatic differentiation engine over numpy.

This is the substrate the paper gets from PyTorch: enough autodiff to train
multi-layer perceptrons and hybrid quantum-classical models end-to-end.
Design follows the classic tape-less recipe — every operation returns a new
:class:`Tensor` holding a closure that knows how to push its output gradient
back into its parents; :meth:`Tensor.backward` topologically sorts the graph
and runs the closures once each.

Only float64 arrays flow through the graph.  Broadcasting is supported on
elementwise ops; gradients are un-broadcast (summed) back to parent shapes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "Parameter", "as_tensor"]


def _unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape`` (reversing numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with a gradient and a backward closure.

    Args:
        data: Array-like; stored as float64.
        requires_grad: Whether gradients should be accumulated into ``grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad=False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._parents = ()
        self._backward_fn = None

    # -- graph construction ---------------------------------------------------

    @classmethod
    def _from_op(cls, data, parents, backward_fn):
        out = cls(data)
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        out.requires_grad = any(p.requires_grad for p in parents)
        if out.requires_grad:
            out._parents = parents
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad):
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- properties -------------------------------------------------------

    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self):
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self):
        """Total element count."""
        return self.data.size

    def item(self):
        """Python float of a scalar tensor."""
        return float(self.data)

    def numpy(self):
        """The raw array (shared, not copied)."""
        return self.data

    def detach(self):
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self):
        """Reset the accumulated gradient."""
        self.grad = None

    # -- backward pass ------------------------------------------------------

    def backward(self, grad=None):
        """Backpropagate from this tensor.

        Args:
            grad: Seed gradient; defaults to 1 and requires a scalar tensor.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)

        # Topological order via iterative DFS (no recursion limits).
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # -- elementwise arithmetic ----------------------------------------------

    def __add__(self, other):
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward_fn(grad):
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._from_op(out_data, (self, other), backward_fn)

    __radd__ = __add__

    def __neg__(self):
        def backward_fn(grad):
            self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward_fn)

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __mul__(self, other):
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward_fn(grad):
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._from_op(out_data, (self, other), backward_fn)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward_fn(grad):
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._from_op(out_data, (self, other), backward_fn)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward_fn(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward_fn)

    # -- linear algebra --------------------------------------------------------

    def __matmul__(self, other):
        other = as_tensor(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError(
                f"matmul expects 2-D tensors, got {self.shape} @ {other.shape}"
            )
        out_data = self.data @ other.data

        def backward_fn(grad):
            self._accumulate(grad @ other.data.T)
            other._accumulate(self.data.T @ grad)

        return Tensor._from_op(out_data, (self, other), backward_fn)

    # -- shape manipulation ----------------------------------------------------

    def reshape(self, *shape):
        """Reshaped view with gradient routed back through the reshape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward_fn(grad):
            self._accumulate(grad.reshape(original))

        return Tensor._from_op(out_data, (self,), backward_fn)

    def transpose(self):
        """2-D transpose."""
        if self.data.ndim != 2:
            raise ValueError("transpose() supports 2-D tensors")

        def backward_fn(grad):
            self._accumulate(grad.T)

        return Tensor._from_op(self.data.T, (self,), backward_fn)

    def __getitem__(self, key):
        out_data = self.data[key]

        def backward_fn(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._from_op(out_data, (self,), backward_fn)

    # -- reductions -----------------------------------------------------------

    def sum(self, axis=None, keepdims=False):
        """Summation with gradient broadcast back to the input shape."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward_fn(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, shape))

        return Tensor._from_op(out_data, (self,), backward_fn)

    def mean(self, axis=None, keepdims=False):
        """Mean via sum with the appropriate scale."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- repr -------------------------------------------------------------------

    def __repr__(self):
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self):
        return len(self.data)


class Parameter(Tensor):
    """A trainable tensor — always requires gradients."""

    __slots__ = ()

    def __init__(self, data):
        super().__init__(data, requires_grad=True)

    def __repr__(self):
        return f"Parameter(shape={self.shape})"


def as_tensor(value):
    """Coerce scalars / arrays to (non-differentiable) tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
