"""repro.obs — the unified telemetry subsystem.

One near-zero-overhead surface for every tier of the repo (see
``docs/observability.md``):

- a process-global metrics registry of counters, gauges, and fixed
  log-bucket histograms (:mod:`repro.obs.registry`), returning a shared
  no-op singleton while telemetry is disabled so hot paths pay one flag
  check;
- span tracing over monotonic clocks with optional JSONL export
  (:mod:`repro.obs.spans`);
- causal trace context — trace/span/parent ids, cross-process propagation
  over the ``Transport`` seam, clock alignment, and a Chrome-trace
  converter CLI ``python -m repro.obs.trace`` (:mod:`repro.obs.trace`);
- an always-on crash flight recorder with postmortem dumps
  (:mod:`repro.obs.flight`);
- snapshot/merge cross-process aggregation (rollout workers attach
  registry snapshots to their control-channel replies; the parent merges
  deterministically);
- a report CLI: ``python -m repro.obs.report trace.jsonl``
  (:mod:`repro.obs.report`).

Telemetry defaults **off**; enable with ``REPRO_OBS=1``, with
:func:`set_enabled`, or scoped via ``with obs.telemetry(): ...``.  By
contract it never touches an RNG stream or reorders work — the cross-engine
bit-identity harness passes with telemetry enabled (pinned by
``tests/test_obs.py``).
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    NullMetric,
    counter,
    enabled,
    gauge,
    global_registry,
    histogram,
    histogram_quantile,
    merge_snapshot,
    reset,
    set_enabled,
    snapshot,
    telemetry,
)
from repro.obs import flight
from repro.obs import trace
from repro.obs.spans import (
    close_export,
    export_event,
    export_path,
    export_snapshot,
    set_export_path,
    span,
)
from repro.obs.trace import (
    begin_trace,
    current_span_id,
    end_trace,
    trace_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NullMetric",
    "begin_trace",
    "close_export",
    "counter",
    "current_span_id",
    "enabled",
    "end_trace",
    "export_event",
    "export_path",
    "export_snapshot",
    "flight",
    "gauge",
    "global_registry",
    "histogram",
    "histogram_quantile",
    "merge_snapshot",
    "reset",
    "set_enabled",
    "set_export_path",
    "snapshot",
    "span",
    "telemetry",
    "trace",
    "trace_id",
]
