"""Flight recorder: an always-on ring of recent events for postmortems.

The crash restart-and-requeue paths (``ShardedRolloutCollector``,
``ShardedPolicyEngine``) deliberately swallow the evidence — the worker is
dead, its state discarded, the work replayed.  The flight recorder keeps a
fixed-size, lock-cheap ring of the last N structured events per process
(span begin/end, commands, restarts, overflow terminations) so that when a
worker crashes, an exception goes unhandled, or a serving shard restarts,
the moments *before* the failure can be dumped to a postmortem file.

Two ring backends:

- **memory** (default): a ``collections.deque(maxlen=N)`` of event dicts.
  Appends are GIL-atomic — no lock on the hot path — which is what makes
  "always on" affordable.
- **file**: an mmap-backed fixed-slot ring (:func:`attach_file`).  A
  SIGKILLed process can't dump its own ring, so workers write theirs to a
  file the *parent* recovers after the kill.  Slots carry a sequence
  number and a JSON payload; recovery drops torn slots and orders by
  sequence.

Dumping is gated on a configured directory (``REPRO_OBS_FLIGHT_DIR`` or
:func:`set_dump_dir`): with no directory, :func:`dump` is a no-op, so
deliberately crash-heavy test suites don't litter postmortems.  Recording
itself is on by default (``REPRO_OBS_FLIGHT=0`` disables) but span events
only reach the ring while telemetry is also enabled — the telemetry-off
hot path stays a single flag check.
"""

from __future__ import annotations

import collections
import io
import json
import mmap
import os
import struct
import sys
import threading
import time
import traceback

from repro.obs import trace as _trace

__all__ = [
    "FlightRecorder",
    "attach_file",
    "dump",
    "dump_dir",
    "enabled",
    "install_excepthook",
    "read_file",
    "record",
    "recorder",
    "set_dump_dir",
    "set_enabled",
]

DEFAULT_CAPACITY = 256
DEFAULT_SLOT_BYTES = 512

# File-ring layout: header then n_slots fixed slots.
#   header: magic "FLR1" | u32 version | u32 n_slots | u32 slot_bytes
#   slot:   u64 seq (0 = empty) | u32 payload_len | payload (JSON, utf-8)
_MAGIC = b"FLR1"
_HEADER = struct.Struct("<4sIII")
_SLOT_HEADER = struct.Struct("<QI")


class FlightRecorder:
    """A fixed-capacity drop-oldest ring of structured events."""

    def __init__(self, capacity=DEFAULT_CAPACITY, path=None,
                 slot_bytes=DEFAULT_SLOT_BYTES):
        self.capacity = int(capacity)
        self.path = path
        if path is None:
            self._ring = collections.deque(maxlen=self.capacity)
            self._mmap = None
        else:
            self._ring = None
            self._slot_bytes = int(slot_bytes)
            self._seq = 0
            self._lock = threading.Lock()
            self._open_file(path)

    # -- file backend -------------------------------------------------

    def _open_file(self, path):
        size = _HEADER.size + self.capacity * self._slot_bytes
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            os.ftruncate(fd, size)
            self._mmap = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        self._mmap[:_HEADER.size] = _HEADER.pack(
            _MAGIC, 1, self.capacity, self._slot_bytes
        )

    def _write_slot(self, payload):
        self._seq += 1
        seq = self._seq
        index = (seq - 1) % self.capacity
        offset = _HEADER.size + index * self._slot_bytes
        room = self._slot_bytes - _SLOT_HEADER.size
        if len(payload) > room:
            payload = payload[:room]  # torn JSON; recovery drops it
        # Payload first, live sequence number last: a write cut anywhere
        # leaves either the old valid slot or a seq whose JSON fails to
        # parse — never a silently wrong event.
        self._mmap[offset:offset + _SLOT_HEADER.size] = _SLOT_HEADER.pack(
            0, len(payload)
        )
        start = offset + _SLOT_HEADER.size
        self._mmap[start:start + len(payload)] = payload
        self._mmap[offset:offset + _SLOT_HEADER.size] = _SLOT_HEADER.pack(
            seq, len(payload)
        )

    # -- shared API ---------------------------------------------------

    def record(self, event):
        """Append one event dict, dropping the oldest beyond capacity."""
        if self._ring is not None:
            self._ring.append(event)
            return
        payload = json.dumps(event, sort_keys=True).encode()
        with self._lock:
            self._write_slot(payload)

    def events(self):
        """The retained events, oldest first."""
        if self._ring is not None:
            return list(self._ring)
        with self._lock:
            return _read_slots(self._mmap)

    def close(self):
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None


def _read_slots(buf):
    magic, version, n_slots, slot_bytes = _HEADER.unpack_from(buf, 0)
    if magic != _MAGIC or version != 1:
        return []
    found = []
    for index in range(n_slots):
        offset = _HEADER.size + index * slot_bytes
        seq, length = _SLOT_HEADER.unpack_from(buf, offset)
        if seq == 0 or length > slot_bytes - _SLOT_HEADER.size:
            continue
        start = offset + _SLOT_HEADER.size
        try:
            event = json.loads(buf[start:start + length].decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue  # torn slot
        if isinstance(event, dict):
            found.append((seq, event))
    found.sort(key=lambda item: item[0])
    return [event for _, event in found]


def read_file(path):
    """Recover the events of a (possibly dead) process's file ring."""
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError:
        return []
    if len(buf) < _HEADER.size:
        return []
    return _read_slots(buf)


# ---------------------------------------------------------------------------
# Process-global recorder
# ---------------------------------------------------------------------------

_LOCK = threading.Lock()
_ENABLED = os.environ.get("REPRO_OBS_FLIGHT", "1") != "0"
_DUMP_DIR = os.environ.get("REPRO_OBS_FLIGHT_DIR") or None
_RECORDER = None
_DUMP_COUNTER = 0


def enabled():
    return _ENABLED


def set_enabled(flag):
    """Toggle recording; returns the previous value."""
    global _ENABLED
    prior = _ENABLED
    _ENABLED = bool(flag)
    return prior


def recorder():
    """The process's recorder, created (memory-backed) on first use."""
    global _RECORDER
    if _RECORDER is None:
        with _LOCK:
            if _RECORDER is None:
                capacity = int(
                    os.environ.get("REPRO_OBS_FLIGHT_CAPACITY",
                                   DEFAULT_CAPACITY)
                )
                _RECORDER = FlightRecorder(capacity)
    return _RECORDER


def attach_file(path, capacity=None):
    """Re-back the process recorder with a file ring at ``path``.

    Events already in the memory ring carry over, so nothing recorded
    before the worker learned its ring path is lost.
    """
    global _RECORDER
    with _LOCK:
        prior = _RECORDER
        if capacity is None:
            capacity = prior.capacity if prior is not None else int(
                os.environ.get("REPRO_OBS_FLIGHT_CAPACITY", DEFAULT_CAPACITY)
            )
        fresh = FlightRecorder(capacity, path=path)
        if prior is not None:
            for event in prior.events():
                fresh.record(event)
            prior.close()
        _RECORDER = fresh
    return _RECORDER


def record(kind, **fields):
    """Ring one event: ``kind`` plus fields, stamped t_us/pid/tid."""
    if not _ENABLED:
        return
    event = {
        "kind": kind,
        "t_us": _trace.now_us(),
        "pid": os.getpid(),
        "tid": threading.get_native_id(),
    }
    if fields:
        event.update(fields)
    recorder().record(event)


# ---------------------------------------------------------------------------
# Postmortem dumps
# ---------------------------------------------------------------------------


def dump_dir():
    return _DUMP_DIR


def set_dump_dir(path):
    """Configure where postmortems land (None disables dumping)."""
    global _DUMP_DIR
    prior = _DUMP_DIR
    _DUMP_DIR = path
    return prior


def dump(reason, extra=None, worker_events=None):
    """Write a postmortem JSON file; returns its path (None when gated).

    The document carries this process's ring, optional recovered
    ``worker_events`` (a dead worker's file ring), and free-form ``extra``
    context — enough to see the commands and spans leading up to the
    failure.
    """
    global _DUMP_COUNTER
    if _DUMP_DIR is None or not _ENABLED:
        return None
    with _LOCK:
        _DUMP_COUNTER += 1
        count = _DUMP_COUNTER
    document = {
        "reason": reason,
        "pid": os.getpid(),
        "unix_time": time.time(),
        "trace_id": _trace.trace_id(),
        "events": recorder().events(),
    }
    if worker_events is not None:
        document["worker_events"] = worker_events
    if extra:
        document["extra"] = extra
    os.makedirs(_DUMP_DIR, exist_ok=True)
    safe_reason = "".join(
        c if c.isalnum() or c in "-_" else "_" for c in str(reason)
    )
    path = os.path.join(
        _DUMP_DIR, f"flight-{safe_reason}-{os.getpid()}-{count}.json"
    )
    with open(path, "w") as f:
        json.dump(document, f, sort_keys=True, indent=1)
        f.write("\n")
    return path


def install_excepthook():
    """Dump the ring on any unhandled exception, then defer to the prior hook."""
    prior = sys.excepthook

    def _hook(exc_type, exc_value, tb):
        try:
            detail = io.StringIO()
            traceback.print_exception(exc_type, exc_value, tb, file=detail)
            record("unhandled_exception", error=str(exc_value))
            dump("unhandled-exception", extra={
                "exception": detail.getvalue(),
            })
        except Exception:
            pass
        prior(exc_type, exc_value, tb)

    _hook._repro_flight = True
    if getattr(prior, "_repro_flight", False):
        return prior
    sys.excepthook = _hook
    return _hook


def reset():
    """Test hook: drop the recorder and restore env-derived settings."""
    global _RECORDER, _ENABLED, _DUMP_DIR, _DUMP_COUNTER
    with _LOCK:
        if _RECORDER is not None:
            _RECORDER.close()
        _RECORDER = None
        _DUMP_COUNTER = 0
    _ENABLED = os.environ.get("REPRO_OBS_FLIGHT", "1") != "0"
    _DUMP_DIR = os.environ.get("REPRO_OBS_FLIGHT_DIR") or None
