"""The metrics registry: counters, gauges, and log-bucket histograms.

The design centre is a *near-zero* disabled cost, because the registry is
consulted from the hottest paths in the repo (compiled-kernel dispatch, the
shm ring, the micro-batcher).  Telemetry is a single module-level flag:

- **disabled** (the default) — every accessor (:func:`counter`,
  :func:`gauge`, :func:`histogram`) returns the shared :data:`NULL_METRIC`
  singleton whose methods are empty, so an instrumented call site costs one
  flag check and nothing else, and :func:`span` hands out a no-op context
  manager without reading a clock;
- **enabled** (:func:`set_enabled`, the :func:`telemetry` scope, or the
  ``REPRO_OBS`` environment variable) — accessors resolve real metric
  objects in the process-global :class:`MetricsRegistry`.

All metric objects are thread-safe (the serving tier records from the event
loop *and* the checkpoint-watcher thread; tests hammer one counter from
many threads).  Histograms use **fixed log-spaced buckets** — geometric
edges frozen at creation — so two histograms of the same name always share
edges and cross-process snapshots merge by plain bucket-wise addition.

Cross-process aggregation is snapshot-based: a worker calls
:func:`snapshot` (usually with ``reset=True``), ships the plain-dict result
over its control channel, and the parent folds it in with
:func:`merge_snapshot`.  Merging is deterministic: counters and histogram
buckets add, gauges take the incoming value, and the caller controls
ordering by merging replies in worker-index order.  Telemetry never touches
an RNG stream — nothing here draws randomness or reorders work.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NullMetric",
    "counter",
    "enabled",
    "gauge",
    "global_registry",
    "histogram",
    "histogram_quantile",
    "merge_snapshot",
    "reset",
    "set_enabled",
    "snapshot",
    "telemetry",
]


class NullMetric:
    """The shared do-nothing metric handed out while telemetry is disabled.

    Implements the full surface of every metric kind so call sites never
    branch on the telemetry state beyond the accessor's one flag check.
    """

    __slots__ = ()

    def inc(self, amount=1):
        return None

    def add(self, amount):
        return None

    def set(self, value):
        return None

    def observe(self, value):
        return None


NULL_METRIC = NullMetric()


class Counter:
    """A monotonically increasing integer (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount=1):
        with self._lock:
            self._value += int(amount)

    # Byte/row totals read better as add(); same operation.
    add = inc

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A last-write-wins float (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value):
        with self._lock:
            self._value = float(value)

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """Fixed log-spaced-bucket histogram with exact count/sum/min/max.

    Bucket edges are frozen at creation as the geometric series
    ``min_edge * base**i`` for ``i in range(n_buckets)``; observation ``v``
    lands in the first bucket whose edge satisfies ``v <= edge`` (values at
    an edge belong to that edge's bucket), and anything beyond the last
    edge lands in a dedicated overflow bucket.  The defaults
    (``1 * 2**i``, 40 buckets) span twelve decades — enough for
    microsecond latencies and byte counts alike — at ~41 ints of memory.
    """

    __slots__ = ("name", "edges", "_lock", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name, min_edge=1.0, n_buckets=40, base=2.0):
        if min_edge <= 0:
            raise ValueError(f"min_edge must be > 0, got {min_edge!r}")
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets!r}")
        if base <= 1.0:
            raise ValueError(f"base must be > 1, got {base!r}")
        self.name = name
        self.edges = [float(min_edge) * float(base) ** i
                      for i in range(int(n_buckets))]
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.edges) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value):
        value = float(value)
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def quantile(self, q):
        """Deterministic quantile estimate from the bucket counts.

        Finds the bucket holding the ``ceil(q * count)``-th observation and
        interpolates linearly inside it, clamped to the exact observed
        ``[min, max]`` — so single-observation histograms and the overflow
        bucket report true values, not edge artefacts.
        """
        return histogram_quantile(self.state(), q)

    def state(self):
        """Plain-dict snapshot of this histogram (JSON- and merge-ready)."""
        with self._lock:
            return {
                "edges": list(self.edges),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    def merge_state(self, state):
        """Fold another histogram's :meth:`state` in (bucket-wise add)."""
        if list(state["edges"]) != self.edges:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched bucket "
                f"edges ({len(state['edges'])} vs {len(self.edges)})"
            )
        with self._lock:
            for i, count in enumerate(state["counts"]):
                self._counts[i] += int(count)
            self._count += int(state["count"])
            self._sum += float(state["sum"])
            if state["min"] is not None and state["min"] < self._min:
                self._min = float(state["min"])
            if state["max"] is not None and state["max"] > self._max:
                self._max = float(state["max"])

    def __repr__(self):
        return (
            f"Histogram({self.name!r}, count={self._count}, "
            f"buckets={len(self.edges)})"
        )


def histogram_quantile(state, q):
    """Quantile from a histogram snapshot dict (see :meth:`Histogram.state`).

    Shared by live histograms, the report CLI, and the server's
    ``/metrics`` document, so every surface computes percentiles
    identically.  Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    total = int(state["count"])
    if total == 0:
        return 0.0
    edges = state["edges"]
    target = max(1, math.ceil(q * total))
    cumulative = 0
    for index, bucket_count in enumerate(state["counts"]):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            if index >= len(edges):
                return float(state["max"])
            upper = edges[index]
            lower = edges[index - 1] if index > 0 else 0.0
            fraction = (target - cumulative) / bucket_count
            value = lower + fraction * (upper - lower)
            return float(min(max(value, state["min"]), state["max"]))
        cumulative += bucket_count
    return float(state["max"])  # pragma: no cover — count/counts agree


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge semantics.

    One process-global instance backs the module accessors; tests may
    build private registries.  Creation is thread-safe and idempotent —
    concurrent :meth:`counter` calls for one name return the same object.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}

    def _resolve(self, name, cls, kwargs=None):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, **(kwargs or {}))
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already exists as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name):
        return self._resolve(name, Counter)

    def gauge(self, name):
        return self._resolve(name, Gauge)

    def histogram(self, name, **kwargs):
        return self._resolve(name, Histogram, kwargs)

    def get(self, name):
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def snapshot(self, reset=False):
        """All metric values as plain nested dicts (picklable, JSON-able).

        With ``reset=True`` the registry is emptied atomically after the
        capture — the worker-side idiom for shipping per-collect deltas.
        """
        with self._lock:
            metrics = dict(self._metrics)
            if reset:
                self._metrics.clear()
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.state()
        return out

    def merge(self, snap):
        """Fold a :meth:`snapshot` in: counters/buckets add, gauges adopt.

        Deterministic given the call order — the cross-process aggregators
        merge worker replies in worker-index order, so repeated runs fold
        identically.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snap.get("histograms", {}).items():
            edges = state["edges"]
            histogram = self._metrics.get(name)
            if histogram is None:
                base = edges[1] / edges[0] if len(edges) > 1 else 2.0
                histogram = self.histogram(
                    name, min_edge=edges[0], n_buckets=len(edges), base=base
                )
            histogram.merge_state(state)

    def reset(self):
        """Drop every metric."""
        with self._lock:
            self._metrics.clear()

    def __len__(self):
        return len(self._metrics)


# ---------------------------------------------------------------------------
# The process-global registry and the enabled flag
# ---------------------------------------------------------------------------

_GLOBAL = MetricsRegistry()
_ENABLED = os.environ.get("REPRO_OBS", "") not in ("", "0", "false", "off")


def enabled():
    """Whether telemetry currently records (the one hot-path check)."""
    return _ENABLED


def set_enabled(flag):
    """Flip telemetry recording; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def telemetry(flag=True):
    """Scope telemetry on (or off) and restore the prior state on exit."""
    previous = set_enabled(flag)
    try:
        yield _GLOBAL
    finally:
        set_enabled(previous)


def global_registry():
    """The process-global registry behind the module accessors."""
    return _GLOBAL


def counter(name):
    """The named global counter, or :data:`NULL_METRIC` while disabled."""
    return _GLOBAL.counter(name) if _ENABLED else NULL_METRIC


def gauge(name):
    """The named global gauge, or :data:`NULL_METRIC` while disabled."""
    return _GLOBAL.gauge(name) if _ENABLED else NULL_METRIC


def histogram(name, **kwargs):
    """The named global histogram, or :data:`NULL_METRIC` while disabled."""
    return _GLOBAL.histogram(name, **kwargs) if _ENABLED else NULL_METRIC


def snapshot(reset=False):
    """Snapshot the global registry (see :meth:`MetricsRegistry.snapshot`)."""
    return _GLOBAL.snapshot(reset=reset)


def merge_snapshot(snap):
    """Merge a snapshot into the global registry."""
    _GLOBAL.merge(snap)


def reset():
    """Drop every global metric (test isolation)."""
    _GLOBAL.reset()
