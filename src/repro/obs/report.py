"""Summarise a telemetry JSONL trace into a timing/counter table.

Usage::

    PYTHONPATH=src python -m repro.obs.report trace.jsonl

where ``trace.jsonl`` was produced by running with ``REPRO_OBS=1
REPRO_OBS_EXPORT=trace.jsonl`` (or :func:`repro.obs.set_export_path`).
Span events aggregate into a per-name table — count, total ms, mean µs,
exact p50/p99 over the individual durations, and each span's share of the
summed span time — and ``snapshot`` events merge into one registry whose
counters, gauges, and histogram percentiles print below the table.

The module is import-light on purpose (stdlib only), so the CLI works in
any environment the library does.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.registry import MetricsRegistry, histogram_quantile

__all__ = ["summarize", "format_report", "main"]


def _percentile(sorted_values, q):
    """Exact nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))  # ceil
    rank = min(rank, len(sorted_values))
    return sorted_values[rank - 1]


def summarize(path):
    """Aggregate one trace file; returns a plain-dict summary.

    ``{"spans": {name: {count, total_us, mean_us, p50_us, p99_us}},
    "counters": {...}, "gauges": {...}, "histograms": {name: {count,
    p50, p99, ...}}, "events": n, "skipped": n}``.
    """
    durations = {}
    registry = MetricsRegistry()
    events = skipped = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            events += 1
            kind = event.get("kind")
            if kind == "span":
                durations.setdefault(event["name"], []).append(
                    float(event["dur_us"])
                )
            elif kind == "snapshot":
                registry.merge(event.get("data", {}))
            else:
                skipped += 1

    spans = {}
    for name, values in sorted(durations.items()):
        values.sort()
        total = sum(values)
        spans[name] = {
            "count": len(values),
            "total_us": total,
            "mean_us": total / len(values),
            "p50_us": _percentile(values, 0.50),
            "p99_us": _percentile(values, 0.99),
        }

    snap = registry.snapshot()
    histograms = {}
    for name, state in snap["histograms"].items():
        histograms[name] = {
            "count": state["count"],
            "sum": state["sum"],
            "min": state["min"],
            "max": state["max"],
            "p50": histogram_quantile(state, 0.50),
            "p99": histogram_quantile(state, 0.99),
        }
    return {
        "spans": spans,
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histograms": histograms,
        "events": events,
        "skipped": skipped,
    }


def format_report(summary, top=None):
    """Render a summary as the human-facing table.

    ``top`` limits the span table to the N largest by total time (shares
    stay relative to the full sum, so the cut is visible).
    """
    lines = []
    spans = summary["spans"]
    if spans:
        grand_total = sum(s["total_us"] for s in spans.values()) or 1.0
        width = max(len(name) for name in spans)
        lines.append(
            f"{'span':<{width}}  {'count':>7}  {'total ms':>10}  "
            f"{'mean us':>10}  {'p50 us':>10}  {'p99 us':>10}  {'share':>6}"
        )
        ordered = sorted(
            spans.items(), key=lambda item: item[1]["total_us"], reverse=True
        )
        if top is not None:
            hidden = len(ordered) - top
            ordered = ordered[:top]
        else:
            hidden = 0
        for name, stats in ordered:
            lines.append(
                f"{name:<{width}}  {stats['count']:>7}  "
                f"{stats['total_us'] / 1000.0:>10.2f}  "
                f"{stats['mean_us']:>10.1f}  {stats['p50_us']:>10.1f}  "
                f"{stats['p99_us']:>10.1f}  "
                f"{stats['total_us'] / grand_total:>6.1%}"
            )
        if hidden > 0:
            lines.append(f"... ({hidden} more spans; widen with --top)")
    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(summary["counters"].items()):
            lines.append(f"  {name} = {value}")
    if summary["gauges"]:
        lines.append("")
        lines.append("gauges:")
        for name, value in sorted(summary["gauges"].items()):
            lines.append(f"  {name} = {value:g}")
    if summary["histograms"]:
        lines.append("")
        lines.append("histograms:")
        for name, stats in sorted(summary["histograms"].items()):
            lines.append(
                f"  {name}: count={stats['count']} p50={stats['p50']:.1f} "
                f"p99={stats['p99']:.1f} max={stats['max']}"
            )
    if not lines:
        lines.append("(no telemetry events)")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="JSONL trace written via REPRO_OBS_EXPORT")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of a table")
    parser.add_argument("--top", type=int, default=None, metavar="N",
                        help="show only the N spans with the most total time")
    args = parser.parse_args(argv)
    if args.top is not None and args.top < 1:
        print("error: --top must be at least 1", file=sys.stderr)
        return 2
    try:
        summary = summarize(args.path)
    except OSError as exc:
        print(f"error: cannot read trace file {args.path!r}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    if summary["events"] == 0:
        print(f"error: {args.path!r} contains no telemetry events "
              "(was the run exported with REPRO_OBS_EXPORT?)",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_report(summary, top=args.top))
        if summary["skipped"]:
            print(f"\n({summary['skipped']} unparseable lines skipped)")
    return 0


if __name__ == "__main__":
    main()
