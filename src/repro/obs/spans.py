"""Span tracing: monotonic-clock timers over the metrics registry.

``with span("trainer.update"):`` times a block on
:func:`time.perf_counter_ns` and records three metrics under a naming
convention the report CLI understands:

- ``span.<name>.calls`` — counter of completed spans;
- ``span.<name>.total_ns`` — counter of summed wall time;
- ``span.<name>.us`` — log-bucket histogram of per-span durations
  (microseconds), for p50/p99.

Because spans are plain counters and histograms, worker-side spans ride the
same snapshot/merge path as every other metric — rollout-vs-update time
aggregates across processes with no extra machinery.

While telemetry is disabled :func:`span` returns a shared no-op context
manager — no clock read, no allocation beyond the call itself.

Optionally, completed spans are appended to a JSONL trace file
(:func:`set_export_path`, or the ``REPRO_OBS_EXPORT`` environment
variable): one ``{"kind": "span", ...}`` object per line carrying the
aligned start time (``t_us``), duration, pid, and thread id — enough to
rebuild a timeline — plus whole-registry ``{"kind": "snapshot", ...}``
events from :func:`export_snapshot`.  While a trace is open
(:mod:`repro.obs.trace`) each span also carries ``trace_id`` /
``span_id`` / ``parent_id`` causal links; nesting is tracked in a
context variable so threads and asyncio tasks each see their own stack.
``python -m repro.obs.report trace.jsonl`` summarises such a file and
``python -m repro.obs.trace`` converts it for chrome://tracing.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.obs import flight as _flight
from repro.obs import registry as _registry
from repro.obs import trace as _trace

__all__ = [
    "close_export",
    "export_event",
    "export_path",
    "export_snapshot",
    "set_export_path",
    "span",
]


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One timed block; created per use (spans may nest and overlap)."""

    __slots__ = ("name", "span_id", "parent_id", "_start", "_token")

    def __init__(self, name, parent_id=None):
        self.name = name
        self.span_id = None
        self.parent_id = parent_id
        self._start = 0
        self._token = None

    def __enter__(self):
        if _trace.active():
            self.span_id = _trace.new_span_id()
            self.parent_id = _trace.effective_parent(self.parent_id)
            self._token = _trace._push_current(self.span_id)
        if _flight.enabled():
            _flight.record("span_begin", name=self.name)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc_value, tb):
        duration_ns = time.perf_counter_ns() - self._start
        if self._token is not None:
            _trace._pop_current(self._token)
            self._token = None
        if _flight.enabled():
            _flight.record(
                "span_end", name=self.name, dur_us=duration_ns / 1000.0
            )
        # Re-check: telemetry may have been disabled mid-span (the worker
        # toggle); record only when still on, so snapshots stay consistent.
        if _registry.enabled():
            registry = _registry.global_registry()
            registry.counter(f"span.{self.name}.calls").inc()
            registry.counter(f"span.{self.name}.total_ns").inc(duration_ns)
            registry.histogram(f"span.{self.name}.us").observe(
                duration_ns / 1000.0
            )
            if _EXPORT_PATH is not None:
                event = {
                    "kind": "span",
                    "name": self.name,
                    "t_us": _trace.align_us(self._start / 1000.0),
                    "dur_us": duration_ns / 1000.0,
                    "pid": os.getpid(),
                    "tid": threading.get_native_id(),
                }
                if self.span_id is not None:
                    event["trace_id"] = _trace.trace_id()
                    event["span_id"] = self.span_id
                    if self.parent_id is not None:
                        event["parent_id"] = self.parent_id
                export_event(event)
        return False


def span(name, parent_id=None):
    """A context manager timing ``name`` — no-op while telemetry is off.

    ``parent_id`` overrides causal-parent resolution (enclosing span, then
    the process default) for work executed on behalf of a span that isn't
    on the current call stack — e.g. a batch flushed by an event-loop
    timer on behalf of the server's root span.
    """
    if _registry.enabled():
        return Span(name, parent_id=parent_id)
    return _NULL_SPAN


# ---------------------------------------------------------------------------
# JSONL export
# ---------------------------------------------------------------------------

_EXPORT_LOCK = threading.Lock()
_EXPORT_PATH = os.environ.get("REPRO_OBS_EXPORT") or None
_EXPORT_FILE = None
_EXPORT_FILE_PID = None


def export_path():
    """The configured JSONL sink path, or None."""
    return _EXPORT_PATH


def set_export_path(path):
    """Point the JSONL trace sink at ``path`` (None closes and disables).

    Parent directories are created eagerly so timelines can be exported
    straight into a per-run directory.
    """
    global _EXPORT_PATH, _EXPORT_FILE
    with _EXPORT_LOCK:
        if _EXPORT_FILE is not None:
            _EXPORT_FILE.close()
            _EXPORT_FILE = None
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
        _EXPORT_PATH = path


def close_export():
    """Flush and close the trace sink, keeping the path configured."""
    global _EXPORT_FILE
    with _EXPORT_LOCK:
        if _EXPORT_FILE is not None:
            _EXPORT_FILE.close()
            _EXPORT_FILE = None


def export_event(event):
    """Append one JSON object to the trace file (no-op without a path)."""
    global _EXPORT_FILE, _EXPORT_FILE_PID
    if _EXPORT_PATH is None:
        return
    line = json.dumps(event, sort_keys=True)
    with _EXPORT_LOCK:
        if _EXPORT_PATH is None:  # closed while we serialised
            return
        if _EXPORT_FILE is not None and _EXPORT_FILE_PID != os.getpid():
            # Forked child inheriting the parent's handle: writing through
            # it would interleave with the parent mid-line.  Reopen our own.
            _EXPORT_FILE.close()
            _EXPORT_FILE = None
        if _EXPORT_FILE is None:
            _EXPORT_FILE = open(_EXPORT_PATH, "a", buffering=1)
            _EXPORT_FILE_PID = os.getpid()
        _EXPORT_FILE.write(line + "\n")


def export_snapshot(reset=False):
    """Write the whole registry as one ``snapshot`` trace event."""
    export_event({
        "kind": "snapshot",
        "pid": os.getpid(),
        "data": _registry.snapshot(reset=reset),
    })
