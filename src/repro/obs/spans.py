"""Span tracing: monotonic-clock timers over the metrics registry.

``with span("trainer.update"):`` times a block on
:func:`time.perf_counter_ns` and records three metrics under a naming
convention the report CLI understands:

- ``span.<name>.calls`` — counter of completed spans;
- ``span.<name>.total_ns`` — counter of summed wall time;
- ``span.<name>.us`` — log-bucket histogram of per-span durations
  (microseconds), for p50/p99.

Because spans are plain counters and histograms, worker-side spans ride the
same snapshot/merge path as every other metric — rollout-vs-update time
aggregates across processes with no extra machinery.

While telemetry is disabled :func:`span` returns a shared no-op context
manager — no clock read, no allocation beyond the call itself.

Optionally, completed spans are appended to a JSONL trace file
(:func:`set_export_path`, or the ``REPRO_OBS_EXPORT`` environment
variable): one ``{"kind": "span", "name": ..., "dur_us": ..., "pid": ...}``
object per line, plus whole-registry ``{"kind": "snapshot", ...}`` events
from :func:`export_snapshot`.  ``python -m repro.obs.report trace.jsonl``
summarises such a file.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.obs import registry as _registry

__all__ = [
    "close_export",
    "export_event",
    "export_snapshot",
    "set_export_path",
    "span",
]


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One timed block; created per use (spans may nest and overlap)."""

    __slots__ = ("name", "_start")

    def __init__(self, name):
        self.name = name
        self._start = 0

    def __enter__(self):
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc_value, tb):
        duration_ns = time.perf_counter_ns() - self._start
        # Re-check: telemetry may have been disabled mid-span (the worker
        # toggle); record only when still on, so snapshots stay consistent.
        if _registry.enabled():
            registry = _registry.global_registry()
            registry.counter(f"span.{self.name}.calls").inc()
            registry.counter(f"span.{self.name}.total_ns").inc(duration_ns)
            registry.histogram(f"span.{self.name}.us").observe(
                duration_ns / 1000.0
            )
            if _EXPORT_PATH is not None:
                export_event({
                    "kind": "span",
                    "name": self.name,
                    "dur_us": duration_ns / 1000.0,
                    "pid": os.getpid(),
                })
        return False


def span(name):
    """A context manager timing ``name`` — no-op while telemetry is off."""
    return Span(name) if _registry.enabled() else _NULL_SPAN


# ---------------------------------------------------------------------------
# JSONL export
# ---------------------------------------------------------------------------

_EXPORT_LOCK = threading.Lock()
_EXPORT_PATH = os.environ.get("REPRO_OBS_EXPORT") or None
_EXPORT_FILE = None


def set_export_path(path):
    """Point the JSONL trace sink at ``path`` (None closes and disables)."""
    global _EXPORT_PATH, _EXPORT_FILE
    with _EXPORT_LOCK:
        if _EXPORT_FILE is not None:
            _EXPORT_FILE.close()
            _EXPORT_FILE = None
        _EXPORT_PATH = path


def close_export():
    """Flush and close the trace sink, keeping the path configured."""
    global _EXPORT_FILE
    with _EXPORT_LOCK:
        if _EXPORT_FILE is not None:
            _EXPORT_FILE.close()
            _EXPORT_FILE = None


def export_event(event):
    """Append one JSON object to the trace file (no-op without a path)."""
    global _EXPORT_FILE
    if _EXPORT_PATH is None:
        return
    line = json.dumps(event, sort_keys=True)
    with _EXPORT_LOCK:
        if _EXPORT_FILE is None:
            if _EXPORT_PATH is None:  # closed while we serialised
                return
            _EXPORT_FILE = open(_EXPORT_PATH, "a")
        _EXPORT_FILE.write(line + "\n")
        _EXPORT_FILE.flush()


def export_snapshot(reset=False):
    """Write the whole registry as one ``snapshot`` trace event."""
    export_event({
        "kind": "snapshot",
        "pid": os.getpid(),
        "data": _registry.snapshot(reset=reset),
    })
