"""Causal trace context + Chrome-trace conversion.

This module adds *causality* to the span layer (:mod:`repro.obs.spans`):
while a trace is active every completed span carries a ``trace_id``, its
own ``span_id``, and a ``parent_id`` link, so the JSONL export describes a
parent→child tree instead of a flat bag of durations.

Three pieces:

- **Trace context.**  :func:`begin_trace` opens a process-local trace
  (random 64-bit hex id); the *current* span is tracked in a
  :class:`contextvars.ContextVar` so nesting works across threads and
  asyncio tasks.  :func:`propagation_context` captures ``(trace_id,
  parent_span_id, export path)`` for shipping over the ``Transport`` seam;
  :func:`adopt` installs it on the far side, pointing the worker's JSONL
  export at a per-pid sibling file (``<base>.<pid>``) so processes never
  interleave writes.

- **Clock alignment.**  Each process timestamps spans on its own
  ``time.perf_counter_ns``, whose epoch is arbitrary per process.  At
  worker handshake the parent measures a round trip and computes
  :func:`compute_clock_offset` (RTT midpoint); the worker installs it via
  :func:`set_clock_offset_us`, after which :func:`now_us` ticks on the
  parent's timeline and cross-process spans line up.

- **Chrome-trace export.**  ``python -m repro.obs.trace merged.jsonl -o
  out.json`` converts one or more JSONL trace files (plus their
  ``<path>.<pid>`` siblings, picked up automatically) into the Chrome
  trace-event JSON that ``chrome://tracing`` / Perfetto load: one ``X``
  (complete) event per span in a pid/tid lane, ``M`` metadata rows naming
  each process, and ``s``/``f`` flow arrows for every parent→child link
  that crosses a process or thread.

By contract nothing here touches a numpy RNG stream: trace ids come from
``os.urandom`` and span ids from a per-process counter, so enabling
tracing cannot perturb training determinism.
"""

from __future__ import annotations

import argparse
import contextvars
import glob
import itertools
import json
import os
import sys
import time

__all__ = [
    "active",
    "adopt",
    "begin_trace",
    "clock_offset_us",
    "compute_clock_offset",
    "current_span_id",
    "emit_manual_span",
    "end_trace",
    "main",
    "new_span_id",
    "now_us",
    "process_label",
    "propagation_context",
    "raw_now_us",
    "set_clock_offset_us",
    "set_default_parent",
    "set_process_label",
    "to_chrome_trace",
    "trace_id",
    "validate_chrome_trace",
]

# Process-global trace state.  The *current span* is a ContextVar (nesting
# must follow task/thread structure); everything else is genuinely
# process-wide: one trace, one clock offset, one label per process.
_TRACE_ID = None
_DEFAULT_PARENT = None  # remote parent: adopted spans attach here
_CLOCK_OFFSET_US = 0
_PROCESS_LABEL = None
_CURRENT = contextvars.ContextVar("repro_obs_current_span", default=None)
_SPAN_COUNTER = itertools.count(1)


def new_span_id():
    """A span id unique within the trace: ``<pid hex>-<counter>``."""
    return f"{os.getpid():x}-{next(_SPAN_COUNTER)}"


def active():
    """True while a trace is open in this process."""
    return _TRACE_ID is not None


def trace_id():
    """The open trace's id, or None."""
    return _TRACE_ID


def current_span_id():
    """The innermost open span's id in this context, or None."""
    return _CURRENT.get()


def _push_current(span_id):
    return _CURRENT.set(span_id)


def _pop_current(token):
    _CURRENT.reset(token)


def default_parent():
    """The process-wide fallback parent for spans with no local parent."""
    return _DEFAULT_PARENT


def set_default_parent(span_id):
    """Set the fallback parent (the remote/root span adopted spans join)."""
    global _DEFAULT_PARENT
    _DEFAULT_PARENT = span_id


def effective_parent(explicit=None):
    """Resolve a span's parent: explicit > enclosing local > default."""
    if explicit is not None:
        return explicit
    current = _CURRENT.get()
    if current is not None:
        return current
    return _DEFAULT_PARENT


def process_label():
    """This process's lane label in the merged timeline, or None."""
    return _PROCESS_LABEL


def set_process_label(label):
    global _PROCESS_LABEL
    _PROCESS_LABEL = label


# ---------------------------------------------------------------------------
# Clock alignment
# ---------------------------------------------------------------------------


def raw_now_us():
    """This process's unaligned monotonic clock, microseconds."""
    return time.perf_counter_ns() // 1000


def now_us():
    """Monotonic microseconds on the *parent's* timeline."""
    return time.perf_counter_ns() // 1000 + _CLOCK_OFFSET_US


def align_us(raw_us):
    """Map a :func:`raw_now_us` reading onto the parent's timeline."""
    return raw_us + _CLOCK_OFFSET_US


def clock_offset_us():
    return _CLOCK_OFFSET_US


def set_clock_offset_us(offset_us):
    """Install the negotiated offset (workers call this at handshake)."""
    global _CLOCK_OFFSET_US
    _CLOCK_OFFSET_US = int(offset_us)


def compute_clock_offset(t0_us, t1_us, remote_now_us):
    """Offset the remote should add to land on this process's timeline.

    ``t0``/``t1`` are this process's *aligned* clock readings around a
    probe round trip and ``remote_now_us`` the remote's raw clock sampled
    in between; the RTT midpoint estimates what our clock read at that
    instant, so the error is bounded by half the round trip (locally,
    tens of microseconds).
    """
    midpoint = (t0_us + t1_us) // 2
    return midpoint - int(remote_now_us)


# ---------------------------------------------------------------------------
# Trace lifecycle + cross-process propagation
# ---------------------------------------------------------------------------


def begin_trace(trace_id=None, label=None):
    """Open a trace in this process; returns its id.

    Idempotent on the id: beginning while a trace is open keeps the open
    one (nested ``train_epoch`` calls share a single tree).
    """
    global _TRACE_ID
    if _TRACE_ID is None:
        _TRACE_ID = trace_id or os.urandom(8).hex()
        if label is not None:
            set_process_label(label)
        _emit_process_event()
    return _TRACE_ID


def end_trace():
    """Close the trace; spans recorded after this carry no trace ids."""
    global _TRACE_ID, _DEFAULT_PARENT
    _TRACE_ID = None
    _DEFAULT_PARENT = None
    _CURRENT.set(None)


def propagation_context():
    """The dict shipped to a worker so its spans join this trace.

    Returns None when no trace is open — callers forward it blindly and
    :func:`adopt` treats None as "don't trace".
    """
    if _TRACE_ID is None:
        return None
    from repro.obs import spans as _spans

    return {
        "trace_id": _TRACE_ID,
        "parent_span_id": effective_parent(),
        "export": _spans.export_path(),
    }


def adopt(ctx, label=None):
    """Install a :func:`propagation_context` in a worker process.

    Joins the parent's trace, parents local spans to the sender's span,
    and points the JSONL export at ``<base>.<pid>`` so each process owns
    its file (the trace CLI merges the siblings back together).
    """
    global _TRACE_ID
    if ctx is None:
        return
    from repro.obs import spans as _spans

    fresh = _TRACE_ID != ctx["trace_id"]
    _TRACE_ID = ctx["trace_id"]
    set_default_parent(ctx.get("parent_span_id"))
    if label is not None:
        set_process_label(label)
    base = ctx.get("export")
    if base is not None:
        own = f"{base}.{os.getpid()}"
        if _spans.export_path() != own:
            _spans.set_export_path(own)
    if fresh:
        _emit_process_event()


def _emit_process_event():
    from repro.obs import spans as _spans

    _spans.export_event({
        "kind": "process",
        "pid": os.getpid(),
        "label": _PROCESS_LABEL or f"pid {os.getpid()}",
        "trace_id": _TRACE_ID,
    })


def emit_manual_span(name, t_us, dur_us, parent_id=None, span_id=None,
                     **args):
    """Export a span that wasn't timed via ``with obs.span(...)``.

    For retroactive intervals (e.g. a request's queue wait, measured from
    its enqueue timestamp once the batch flushes) and for root spans whose
    id was handed out before the interval closed (``span_id=``).  ``t_us``
    must already be on the aligned timeline.  Returns the event's span id.
    """
    import threading

    from repro.obs import spans as _spans

    if _TRACE_ID is not None and span_id is None:
        span_id = new_span_id()
    event = {
        "kind": "span",
        "name": name,
        "t_us": float(t_us),
        "dur_us": float(dur_us),
        "pid": os.getpid(),
        "tid": threading.get_native_id(),
    }
    if _TRACE_ID is not None:
        event["trace_id"] = _TRACE_ID
        event["span_id"] = span_id
        parent = effective_parent(parent_id)
        # Never self-parent: a root span emitted while it is itself the
        # process default parent must stay a root.
        if parent is not None and parent != span_id:
            event["parent_id"] = parent
    if args:
        event["args"] = args
    _spans.export_event(event)
    return span_id


def reset():
    """Test hook: clear every piece of process-global trace state."""
    global _TRACE_ID, _DEFAULT_PARENT, _CLOCK_OFFSET_US, _PROCESS_LABEL
    _TRACE_ID = None
    _DEFAULT_PARENT = None
    _CLOCK_OFFSET_US = 0
    _PROCESS_LABEL = None
    _CURRENT.set(None)


# ---------------------------------------------------------------------------
# Chrome-trace conversion
# ---------------------------------------------------------------------------


def load_events(paths):
    """Read span/process events from JSONL files plus ``<path>.<pid>`` siblings."""
    seen = set()
    files = []
    for path in paths:
        for candidate in [path] + sorted(glob.glob(glob.escape(path) + ".*")):
            real = os.path.abspath(candidate)
            if real not in seen and os.path.isfile(candidate):
                seen.add(real)
                files.append(candidate)
    events = []
    for path in files:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    return events


def to_chrome_trace(events):
    """Convert JSONL events into a Chrome trace-event document.

    Spans become ``X`` (complete) events in their ``pid``/``tid`` lane;
    ``process`` events become ``process_name`` metadata; every parent→child
    link that crosses a process or thread becomes an ``s``→``f`` flow pair
    so the arrows survive the lane split.
    """
    chrome = []
    spans = []
    labels = {}
    for event in events:
        kind = event.get("kind")
        if kind == "process":
            labels[event["pid"]] = event.get("label") or f"pid {event['pid']}"
        elif kind == "span" and "t_us" in event:
            spans.append(event)

    for pid, label in sorted(labels.items()):
        chrome.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": label},
        })

    by_id = {e["span_id"]: e for e in spans if e.get("span_id")}
    flow_ids = itertools.count(1)
    for event in spans:
        args = {}
        for key in ("trace_id", "span_id", "parent_id"):
            if event.get(key) is not None:
                args[key] = event[key]
        args.update(event.get("args", {}))
        chrome.append({
            "ph": "X",
            "name": event["name"],
            "cat": "span",
            "ts": event["t_us"],
            "dur": event.get("dur_us", 0.0),
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
            "args": args,
        })
        parent = by_id.get(event.get("parent_id"))
        if parent is None:
            continue
        same_lane = (parent.get("pid") == event.get("pid")
                     and parent.get("tid") == event.get("tid"))
        if same_lane:
            continue
        # Anchor the arrow tail inside the parent slice: at the child's
        # start when the parent covers it, else clamped to the parent.
        tail = min(max(event["t_us"], parent["t_us"]),
                   parent["t_us"] + parent.get("dur_us", 0.0))
        flow = next(flow_ids)
        chrome.append({
            "ph": "s", "id": flow, "name": "parent", "cat": "flow",
            "ts": tail, "pid": parent.get("pid", 0),
            "tid": parent.get("tid", 0),
        })
        chrome.append({
            "ph": "f", "bp": "e", "id": flow, "name": "parent",
            "cat": "flow", "ts": event["t_us"],
            "pid": event.get("pid", 0), "tid": event.get("tid", 0),
        })
    return {"traceEvents": chrome, "displayTimeUnit": "ms"}


_REQUIRED = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "M": ("name", "pid", "args"),
    "s": ("id", "ts", "pid", "tid"),
    "f": ("id", "ts", "pid", "tid"),
}


def validate_chrome_trace(doc):
    """Schema-check a Chrome trace document; returns a list of problems."""
    problems = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    flows = {}
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph not in _REQUIRED:
            problems.append(f"event {i}: unknown ph {ph!r}")
            continue
        for field in _REQUIRED[ph]:
            if field not in event:
                problems.append(f"event {i} (ph={ph}): missing {field!r}")
        if ph == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {i}: ts not numeric")
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(f"event {i}: dur not numeric")
            elif event["dur"] < 0:
                problems.append(f"event {i}: negative dur")
        if ph in ("s", "f"):
            flows.setdefault(event.get("id"), set()).add(ph)
    for flow, phases in sorted(flows.items(), key=lambda kv: str(kv[0])):
        if phases != {"s", "f"}:
            problems.append(f"flow {flow}: unpaired ({sorted(phases)})")
    return problems


def connected_roots(events):
    """Trace-tree sanity: the set of root span ids among traced spans.

    A span is a root when it has no parent or its parent id never appears
    as a recorded span (e.g. the parent predates the export).  A fully
    connected tree has exactly one root.
    """
    spans = [e for e in events
             if e.get("kind") == "span" and e.get("span_id")]
    ids = {e["span_id"] for e in spans}
    return sorted(e["span_id"] for e in spans
                  if e.get("parent_id") not in ids)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Convert obs JSONL traces to Chrome/Perfetto JSON.")
    parser.add_argument("inputs", nargs="+",
                        help="JSONL trace file(s); <path>.<pid> worker "
                             "siblings are merged automatically")
    parser.add_argument("-o", "--output", default=None,
                        help="write Chrome JSON here (default: stdout)")
    parser.add_argument("--check", action="store_true",
                        help="schema-check the output; nonzero exit on "
                             "problems")
    args = parser.parse_args(argv)

    events = load_events(args.inputs)
    if not events:
        print(f"error: no trace events found in {', '.join(args.inputs)}",
              file=sys.stderr)
        return 2
    doc = to_chrome_trace(events)
    if args.check:
        problems = validate_chrome_trace(doc)
        if problems:
            for problem in problems:
                print(f"schema: {problem}", file=sys.stderr)
            return 1
    rendered = json.dumps(doc, sort_keys=True)
    if args.output:
        directory = os.path.dirname(args.output)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.output, "w") as f:
            f.write(rendered + "\n")
        n_spans = sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
        print(f"wrote {args.output}: {n_spans} spans, "
              f"{len(doc['traceEvents'])} events")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
