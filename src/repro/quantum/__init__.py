"""Quantum substrate: gates, simulators, circuits, gradients and analysis.

This package is a self-contained, numpy-only quantum circuit simulator
purpose-built for variational quantum circuits:

- :mod:`~repro.quantum.gates` — gate matrices, generators, registry;
- :mod:`~repro.quantum.statevector` — exact batched pure-state simulation;
- :mod:`~repro.quantum.density` / :mod:`~repro.quantum.channels` — noisy
  mixed-state simulation with Kraus channels;
- :mod:`~repro.quantum.circuit` — symbolic circuit IR with input / weight /
  fixed parameter references;
- :mod:`~repro.quantum.backends` — executors (exact, shot-based, noisy);
- :mod:`~repro.quantum.observables` — Pauli strings and Hamiltonians;
- :mod:`~repro.quantum.templates` / :mod:`~repro.quantum.encoding` — the
  paper's random variational layers and multi-layer angle state encoding;
- :mod:`~repro.quantum.gradients` — adjoint, parameter-shift and
  finite-difference differentiation;
- :mod:`~repro.quantum.vqc` — assembled encoder+ansatz+measurement bundles;
- :mod:`~repro.quantum.bloch` — partial traces, Bloch vectors, Fig.-4 grids.
"""

from repro.quantum.backends import DensityMatrixBackend, StatevectorBackend
from repro.quantum.channels import (
    KrausChannel,
    NoiseModel,
    amplitude_damping,
    bit_flip,
    depolarizing,
    phase_damping,
    phase_flip,
)
from repro.quantum.circuit import Operation, ParameterRef, QuantumCircuit
from repro.quantum.compile import CompiledCircuit, split_index
from repro.quantum.program import (
    CircuitProgram,
    compile_program,
    program_enabled,
    set_program_enabled,
    using_program,
)
from repro.quantum.encoding import (
    AngleEncoding,
    DataReuploadingEncoding,
    MultiLayerAngleEncoding,
)
from repro.quantum.gradients import backward, jacobians
from repro.quantum.observables import Hamiltonian, PauliString, all_z_observables
from repro.quantum.statevector import Statevector
from repro.quantum.templates import (
    BasicEntanglerTemplate,
    RandomLayerTemplate,
    StronglyEntanglingTemplate,
)
from repro.quantum.vqc import VQC, build_vqc, make_template

__all__ = [
    "StatevectorBackend",
    "DensityMatrixBackend",
    "KrausChannel",
    "NoiseModel",
    "depolarizing",
    "bit_flip",
    "phase_flip",
    "amplitude_damping",
    "phase_damping",
    "QuantumCircuit",
    "Operation",
    "ParameterRef",
    "CompiledCircuit",
    "split_index",
    "CircuitProgram",
    "compile_program",
    "program_enabled",
    "set_program_enabled",
    "using_program",
    "AngleEncoding",
    "MultiLayerAngleEncoding",
    "DataReuploadingEncoding",
    "backward",
    "jacobians",
    "PauliString",
    "Hamiltonian",
    "all_z_observables",
    "Statevector",
    "RandomLayerTemplate",
    "BasicEntanglerTemplate",
    "StronglyEntanglingTemplate",
    "VQC",
    "build_vqc",
    "make_template",
]
