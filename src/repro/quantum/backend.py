"""Array-API backend seam under the quantum kernels.

The program-compiled kernel tier (:mod:`repro.quantum.program`) and the
statevector helpers express their hot loops through a small *array
namespace* object — an :class:`ArrayBackend` exposing the ~15 array ops the
kernels actually use (``take``/gather, ``multiply``, ``matmul``/``einsum``,
``concatenate``, ``asarray``, dtype-preserving constructors) plus the three
device-boundary primitives (``device_constant``, ``asarray`` uploads,
``to_host`` downloads).  The namespace is resolved **once per compiled
program** and cached per ``(program, backend)``, so the numpy default pays
no per-call dispatch: every op attribute is a direct reference to the numpy
function and ``device_constant``/``to_host`` are identities.

Four backends:

- ``numpy`` — the default and the bit-identity reference.  Same ops, same
  op order, same dtypes as the pre-seam kernels.
- ``mock`` — numpy wrapped in a :class:`MockDeviceArray` marker subclass
  that *counts* host↔device transfers and **rejects implicit host
  round-trips**: any kernel-level operation mixing a device array with a
  plain host ``ndarray`` raises :class:`MockTransferError`.  This makes the
  device-residency contract testable in CPU-only CI, with values that stay
  bitwise equal to the numpy path (it is numpy underneath).
- ``cupy`` / ``torch`` — duck-typed adapters, built lazily and only when the
  library is importable; detection of which namespace owns an array goes
  through :func:`array_namespace` (``__array_namespace__``-style dispatch on
  the array's owning module).

Selection: ``StatevectorBackend(array_backend=...)`` per backend instance,
:func:`set_default_array_backend` / :func:`using_array_backend` globally, or
the ``REPRO_QUANTUM_BACKEND`` environment variable at import time.

Device-residency contract (see ``docs/quantum_kernels.md``):

- compile-time constants (phase vectors, index tables, generator data,
  fused unitaries) are uploaded **once** per (program, backend) via
  ``device_constant`` and cached;
- per-call host data (encoding angles, cos/sin vectors, per-sample phase
  tables) is computed on the host and uploaded one-way via ``asarray``;
- results come back to the host only at explicit boundaries — ``measure``,
  ``probabilities``, and the adjoint gradient returns — via ``to_host``.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager

import numpy as np

__all__ = [
    "ArrayBackend",
    "MockArrayBackend",
    "MockDeviceArray",
    "MockTransferError",
    "array_namespace",
    "available_array_backends",
    "default_array_backend",
    "get_array_backend",
    "set_default_array_backend",
    "to_host",
    "using_array_backend",
]


class MockTransferError(RuntimeError):
    """An implicit host↔device transfer inside a kernel (mock backend)."""


# ---------------------------------------------------------------------------
# numpy backend: the zero-overhead default
# ---------------------------------------------------------------------------


class ArrayBackend:
    """The numpy array namespace — and the base class of every other one.

    Every op is a direct reference to the numpy function (no wrappers), and
    the device-boundary primitives are identities, so kernels routed through
    this object execute the exact same calls as pre-seam code.
    """

    name = "numpy"
    is_host = True
    # Whether kernels may reuse preallocated scratch via ``out=`` kwargs.
    supports_scratch = True

    asarray = staticmethod(np.asarray)
    empty = staticmethod(np.empty)
    zeros = staticmethod(np.zeros)
    zeros_like = staticmethod(np.zeros_like)
    take = staticmethod(np.take)
    multiply = staticmethod(np.multiply)
    matmul = staticmethod(np.matmul)
    einsum = staticmethod(np.einsum)
    concatenate = staticmethod(np.concatenate)
    stack = staticmethod(np.stack)
    transpose = staticmethod(np.transpose)
    swapaxes = staticmethod(np.swapaxes)
    conj = staticmethod(np.conjugate)
    real = staticmethod(np.real)
    imag = staticmethod(np.imag)
    sum = staticmethod(np.sum)
    sqrt = staticmethod(np.sqrt)
    abs = staticmethod(np.abs)

    def device_constant(self, array):
        """Materialise a compile-time constant on the device (identity here)."""
        return array

    def to_host(self, array):
        """Bring an array back to the host (identity here)."""
        if isinstance(array, np.ndarray):
            return array
        return np.asarray(array)

    def __repr__(self):
        return f"<ArrayBackend {self.name!r}>"


# ---------------------------------------------------------------------------
# Mock device backend: numpy values, accelerator semantics
# ---------------------------------------------------------------------------


def _unwrap_tree(obj):
    """Strip the device marker from operands; reject plain host arrays.

    Scalars and 0-d host arrays pass through (accelerator libraries accept
    python/numpy scalars in kernels without a transfer); any host array with
    data in it is an implicit round-trip and raises.
    """
    if isinstance(obj, MockDeviceArray):
        return obj.view(np.ndarray)
    if isinstance(obj, np.ndarray):
        if obj.ndim:
            raise MockTransferError(
                "implicit host<->device transfer: a plain numpy array met a "
                "mock device array inside a kernel; upload it first with "
                "asarray()/device_constant(), or bring the device array back "
                "with to_host()"
            )
        return obj
    if isinstance(obj, (tuple, list)):
        return type(obj)(_unwrap_tree(o) for o in obj)
    if isinstance(obj, dict):
        return {k: _unwrap_tree(v) for k, v in obj.items()}
    return obj


def _wrap_device(result):
    if isinstance(result, tuple):
        return tuple(_wrap_device(r) for r in result)
    if isinstance(result, np.ndarray):
        return result.view(MockDeviceArray)
    if isinstance(result, np.generic):
        # Reductions on a real accelerator return 0-d device arrays, not
        # host scalars — keep the result resident.
        return np.asarray(result).view(MockDeviceArray)
    return result


class MockDeviceArray(np.ndarray):
    """Marker subclass standing in for a device-resident array.

    Values and dtypes are plain numpy (so the mock path stays bitwise equal
    to the numpy path), but every ufunc, array function, indexing and
    assignment checks that *all* array operands are device-resident and
    re-wraps results — mixing in a host array raises
    :class:`MockTransferError` instead of silently "transferring".
    """

    __slots__ = ()

    def __array_ufunc__(self, ufunc, method, *inputs, out=None, **kwargs):
        inputs = tuple(_unwrap_tree(x) for x in inputs)
        if out is not None:
            kwargs["out"] = tuple(_unwrap_tree(o) for o in out)
        result = getattr(ufunc, method)(*inputs, **kwargs)
        return _wrap_device(result)

    def __array_function__(self, func, types, args, kwargs):
        args = _unwrap_tree(args)
        kwargs = _unwrap_tree(kwargs)
        return _wrap_device(func(*args, **kwargs))

    def __getitem__(self, key):
        key = _unwrap_tree(key)
        return _wrap_device(self.view(np.ndarray)[key])

    def __setitem__(self, key, value):
        key = _unwrap_tree(key)
        value = _unwrap_tree(value)
        self.view(np.ndarray)[key] = value


class MockArrayBackend(ArrayBackend):
    """A fake accelerator for CPU-only CI: counts transfers, rejects mixing.

    ``counts`` tracks ``h2d`` (uploads via :meth:`asarray`), ``d2h``
    (downloads via :meth:`to_host`) and ``constant_uploads`` (distinct
    compile-time constants materialised via :meth:`device_constant`).
    Device-side allocation (``zeros``/``empty``) is free, as on a real
    device.  All math inherits the numpy functions — the
    :class:`MockDeviceArray` protocol keeps results device-resident.
    """

    name = "mock"
    is_host = False
    supports_scratch = True

    def __init__(self):
        self.counts = {"h2d": 0, "d2h": 0, "constant_uploads": 0}
        self._constants = {}

    def reset_counts(self):
        for key in self.counts:
            self.counts[key] = 0

    def asarray(self, array, dtype=None):
        if isinstance(array, MockDeviceArray):
            if dtype is None or array.dtype == dtype:
                return array
            return array.astype(dtype)  # on-device cast, no transfer
        host = np.asarray(array, dtype=dtype)
        self.counts["h2d"] += 1
        return host.copy().view(MockDeviceArray)

    def device_constant(self, array):
        key = id(array)
        entry = self._constants.get(key)
        if entry is not None and entry[0] is array:
            return entry[1]
        self.counts["constant_uploads"] += 1
        device = np.asarray(array).copy().view(MockDeviceArray)
        # Hold the host array so id() keys can never be reused while cached.
        self._constants[key] = (array, device)
        return device

    def to_host(self, array):
        if isinstance(array, MockDeviceArray):
            self.counts["d2h"] += 1
            return np.array(array.view(np.ndarray))
        return super().to_host(array)

    def empty(self, shape, dtype=None):
        return np.empty(shape, dtype=dtype).view(MockDeviceArray)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype).view(MockDeviceArray)

    def zeros_like(self, array):
        return np.zeros_like(array).view(MockDeviceArray)

    def __repr__(self):
        return f"<MockArrayBackend counts={self.counts}>"


# ---------------------------------------------------------------------------
# Optional accelerator adapters (duck-typed, lazily constructed)
# ---------------------------------------------------------------------------

_DELEGATED_OPS = (
    "asarray", "empty", "zeros", "zeros_like", "take", "multiply", "matmul",
    "einsum", "concatenate", "stack", "transpose", "swapaxes", "conj",
    "real", "imag", "sum", "sqrt", "abs",
)


class _ConstantMemo:
    """Per-backend id-keyed memo for ``device_constant`` uploads."""

    def __init__(self, upload):
        self._upload = upload
        self._entries = {}

    def __call__(self, array):
        key = id(array)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is array:
            return entry[1]
        device = self._upload(array)
        self._entries[key] = (array, device)
        return device


class CupyArrayBackend(ArrayBackend):
    """cupy adapter: numpy-compatible namespace, GPU-resident arrays."""

    name = "cupy"
    is_host = False
    supports_scratch = False

    def __init__(self):
        import cupy

        self._cupy = cupy
        for op in _DELEGATED_OPS:
            setattr(self, op, getattr(cupy, op))
        self.device_constant = _ConstantMemo(cupy.asarray)

    def to_host(self, array):
        return self._cupy.asnumpy(array)


class TorchArrayBackend(ArrayBackend):
    """torch adapter: maps the seam ops onto tensor equivalents."""

    name = "torch"
    is_host = False
    supports_scratch = False

    _DTYPES = {
        "float32": "float32", "float64": "float64",
        "complex64": "complex64", "complex128": "complex128",
        "int32": "int32", "int64": "int64",
    }

    def __init__(self, device=None):
        import torch

        self._torch = torch
        self.device = device or ("cuda" if torch.cuda.is_available() else "cpu")
        self.device_constant = _ConstantMemo(self._upload)

    def _dtype(self, dtype):
        if dtype is None:
            return None
        name = np.dtype(dtype).name
        mapped = self._DTYPES.get(name, "int64" if name == "int64" else None)
        if np.dtype(dtype) == np.intp:
            mapped = "int64"
        if mapped is None:
            raise TypeError(f"no torch dtype for {dtype!r}")
        return getattr(self._torch, mapped)

    def _upload(self, array):
        return self._torch.as_tensor(
            np.asarray(array), device=self.device
        )

    def asarray(self, array, dtype=None):
        torch = self._torch
        if torch.is_tensor(array):
            if dtype is None:
                return array
            return array.to(self._dtype(dtype))
        tensor = torch.as_tensor(np.asarray(array), device=self.device)
        if dtype is not None:
            tensor = tensor.to(self._dtype(dtype))
        return tensor

    def to_host(self, array):
        if self._torch.is_tensor(array):
            return array.detach().cpu().numpy()
        return np.asarray(array)

    def empty(self, shape, dtype=None):
        return self._torch.empty(
            shape, dtype=self._dtype(dtype), device=self.device
        )

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(
            shape, dtype=self._dtype(dtype), device=self.device
        )

    def zeros_like(self, array):
        return self._torch.zeros_like(array)

    def take(self, array, indices, axis=None, out=None):
        if axis is None:
            return self._torch.take(array, indices)
        return self._torch.index_select(array, axis, indices)

    def multiply(self, a, b, out=None):
        if out is None:
            return self._torch.mul(a, b)
        return self._torch.mul(a, b, out=out)

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def einsum(self, subscripts, *operands):
        return self._torch.einsum(subscripts, *operands)

    def concatenate(self, arrays, axis=0):
        return self._torch.cat(tuple(arrays), dim=axis)

    def stack(self, arrays, axis=0):
        return self._torch.stack(tuple(arrays), dim=axis)

    def transpose(self, array, axes):
        return array.permute(tuple(axes))

    def swapaxes(self, array, axis1, axis2):
        return self._torch.transpose(array, axis1, axis2)

    def conj(self, array):
        return self._torch.conj(array)

    def real(self, array):
        return self._torch.real(array)

    def imag(self, array):
        return self._torch.imag(array)

    def sum(self, array, axis=None):
        if axis is None:
            return self._torch.sum(array)
        return self._torch.sum(array, dim=axis)

    def sqrt(self, array):
        return self._torch.sqrt(array)

    def abs(self, array):
        return self._torch.abs(array)


# ---------------------------------------------------------------------------
# Registry, default selection and namespace detection
# ---------------------------------------------------------------------------

_BUILDERS = {
    "numpy": ArrayBackend,
    "mock": MockArrayBackend,
    "cupy": CupyArrayBackend,
    "torch": TorchArrayBackend,
}

_REGISTRY: dict[str, ArrayBackend] = {}


def get_array_backend(spec=None):
    """Resolve a backend spec (name, instance or ``None`` for the default)."""
    if spec is None:
        spec = _DEFAULT
    if isinstance(spec, ArrayBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"array backend must be a name or an ArrayBackend, got {spec!r}"
        )
    backend = _REGISTRY.get(spec)
    if backend is None:
        builder = _BUILDERS.get(spec)
        if builder is None:
            raise ValueError(
                f"unknown array backend {spec!r}; choose from "
                f"{sorted(_BUILDERS)}"
            )
        try:
            backend = builder()
        except ImportError as exc:
            raise ImportError(
                f"array backend {spec!r} needs the {spec!r} library, which "
                f"is not importable here: {exc}"
            ) from exc
        _REGISTRY[spec] = backend
    return backend


def default_array_backend():
    """The backend new programs compile against when none is requested."""
    return get_array_backend(_DEFAULT)


def set_default_array_backend(spec):
    """Set the global default backend; returns the previous spec."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = get_array_backend(spec) if spec is not None else "numpy"
    return previous


@contextmanager
def using_array_backend(spec):
    """Context manager scoping :func:`set_default_array_backend`."""
    previous = set_default_array_backend(spec)
    try:
        yield get_array_backend(None)
    finally:
        set_default_array_backend(previous)


def available_array_backends():
    """Backend names usable on this machine (always numpy + mock)."""
    names = ["numpy", "mock"]
    for optional in ("cupy", "torch"):
        try:
            if importlib.util.find_spec(optional) is not None:
                names.append(optional)
        except (ImportError, ValueError):
            continue
    return names


def array_namespace(array):
    """The :class:`ArrayBackend` owning ``array``.

    ``__array_namespace__``-style dispatch: plain ndarrays (and scalars /
    None) resolve to numpy, :class:`MockDeviceArray` to the mock backend,
    and cupy/torch arrays to their adapters by owning module.  This lets
    library code (statevector helpers, observables) follow the residency of
    whatever state array it is handed without an explicit backend handle.
    """
    if isinstance(array, MockDeviceArray):
        return get_array_backend("mock")
    if type(array) is np.ndarray or isinstance(array, np.ndarray):
        return get_array_backend("numpy")
    if array is None or isinstance(array, (np.generic, float, int, complex)):
        return get_array_backend("numpy")
    module = type(array).__module__.partition(".")[0]
    if module in ("cupy", "torch"):
        return get_array_backend(module)
    namespace = getattr(array, "__array_namespace__", None)
    if namespace is not None:
        return get_array_backend("numpy")
    raise TypeError(
        f"no array backend owns objects of type {type(array).__name__}"
    )


def to_host(array):
    """Bring any backend's array to the host (identity for numpy)."""
    return array_namespace(array).to_host(array)


_DEFAULT = os.environ.get("REPRO_QUANTUM_BACKEND", "numpy") or "numpy"
