"""Execution backends: exact statevector, shot-sampled, and noisy density matrix.

A backend turns a symbolic :class:`~repro.quantum.circuit.QuantumCircuit`
plus concrete ``inputs`` (batched feature vectors) and ``weights`` (trainable
angles) into measurement expectation values.

Three execution regimes are supported, mirroring how the paper's experiments
and future-work axis are set up:

- ``StatevectorBackend(shots=None)`` — exact expectations, the regime the
  paper's torchquantum experiments run in;
- ``StatevectorBackend(shots=k)`` — exact evolution, sampled measurement
  (finite-shot estimation noise);
- ``DensityMatrixBackend(noise_model=...)`` — Kraus noise after every gate,
  modelling NISQ gate errors.
"""

from __future__ import annotations

import numpy as np

from repro.quantum import backend as _backend
from repro.quantum import density as _dm
from repro.quantum import gates as _gates
from repro.quantum import program as _program
from repro.quantum import statevector as _sv
from repro.quantum.channels import NoiseModel
from repro.quantum.observables import Hamiltonian, PauliString

__all__ = ["StatevectorBackend", "DensityMatrixBackend"]

# Basis-change gates mapping X/Y measurement onto the computational basis:
# X = H Z H,  Y = (S^+ H)^+ ... applied as  rot Z rot^+  with rot below.
_BASIS_ROTATIONS = {
    "X": _gates.HADAMARD,
    "Y": _gates.HADAMARD @ _gates.S_GATE.conj().T,
}


def _pauli_string_signs(pauli, n_qubits):
    """Diagonal eigenvalues of the Z-basis version of a Pauli string.

    Cached per ``(n_qubits, wires)`` — after the basis rotation every
    factor measures as Z, so only the wire set matters.
    """
    return _sv.pauli_z_string_signs(n_qubits, pauli.wires)


def _rotate_to_z_basis_sv(psi, pauli, n_qubits):
    """Apply basis rotations so every factor of ``pauli`` measures as Z."""
    out = psi
    for wire, p in pauli.terms.items():
        rotation = _BASIS_ROTATIONS.get(p)
        if rotation is not None:
            out = _sv.apply_matrix(out, rotation, (wire,), n_qubits)
    return out


def _sample_mean_signs(probs, signs, shots, rng):
    """Monte-Carlo estimate of ``sum_i p_i s_i`` from ``shots`` samples.

    All rows are drawn through one batched inverse-CDF pass, consuming the
    generator identically to per-sample ``rng.choice`` loops (see
    :func:`repro.quantum.statevector.batched_inverse_cdf_sample`).
    """
    probs = np.clip(probs, 0.0, None)
    probs /= probs.sum(axis=1, keepdims=True)
    drawn = _sv.batched_inverse_cdf_sample(probs, shots, rng)
    return signs[drawn].mean(axis=1)


def _normalise_run_args(circuit, inputs, batch_size):
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        if inputs.shape[1] < circuit.n_inputs:
            raise ValueError(
                f"circuit needs {circuit.n_inputs} input features, "
                f"got {inputs.shape[1]}"
            )
        return inputs, inputs.shape[0]
    if circuit.n_inputs > 0:
        raise ValueError("circuit references inputs but none were given")
    return None, batch_size if batch_size is not None else 1


class StatevectorBackend:
    """Exact (optionally shot-sampled) pure-state execution.

    Args:
        shots: ``None`` for exact expectation values, otherwise the number of
            measurement samples used to estimate each expectation.
        rng: ``numpy.random.Generator`` used for shot sampling.
        program: ``True``/``False`` forces the program-compiled /
            interpreted gate tier for this backend; ``None`` (default)
            follows the global :func:`repro.quantum.program.program_enabled`
            switch.
        array_backend: Array backend the compiled-program tier runs on —
            a name (``"numpy"``, ``"mock"``, ``"cupy"``, ``"torch"``), an
            :class:`~repro.quantum.backend.ArrayBackend` instance, or
            ``None`` (default) to follow the process-wide default
            (``REPRO_QUANTUM_BACKEND`` /
            :func:`repro.quantum.backend.set_default_array_backend`).
            Measurement results always come back as host numpy arrays;
            the interpreted oracle path ignores this and stays on numpy.
    """

    name = "statevector"
    supports_adjoint = True

    def __init__(self, shots=None, rng=None, program=None, array_backend=None):
        if shots is not None and shots < 1:
            raise ValueError("shots must be None or >= 1")
        self.shots = shots
        self.rng = rng if rng is not None else np.random.default_rng()
        self.program = program
        self.array_backend = array_backend

    def _use_program(self):
        if self.program is not None:
            return self.program
        return _program.program_enabled()

    def _array_backend(self):
        return _backend.get_array_backend(self.array_backend)

    def evolve(self, circuit, inputs=None, weights=None, batch_size=None):
        """Run the circuit, returning the final state batch ``(B, 2**n)``.

        Dispatches to the program-compiled kernel tier (pre-planned, fused
        gate applications — see :mod:`repro.quantum.program`) unless the
        tier is disabled, in which case the interpreted per-gate reference
        loop runs.  Both produce the same states to float round-off.
        """
        inputs, batch = _normalise_run_args(circuit, inputs, batch_size)
        if self._use_program():
            return _program.compile_program(circuit, self._array_backend()).evolve(
                inputs, weights, batch
            )
        psi = _sv.zero_state(circuit.n_qubits, batch)
        for op in circuit.operations:
            theta = circuit.resolve_angle(op, inputs, weights)
            psi = _sv.apply_gate(psi, op.gate, op.wires, circuit.n_qubits, theta)
        return psi

    def run(self, circuit, observables, inputs=None, weights=None, batch_size=None):
        """Expectation values, shape ``(B, n_observables)``."""
        psi = self.evolve(circuit, inputs, weights, batch_size)
        return self.measure(psi, observables, circuit.n_qubits)

    def measure(self, psi, observables, n_qubits):
        """Measure prepared states: exact or shot-estimated expectations.

        On the exact path all diagonal (Z-string) observables share one
        probability pass and a single matmul against their stacked cached
        sign diagonals — the common case (the paper measures ``Z`` on every
        qubit) costs one ``|psi|^2`` and one ``(B, dim) @ (dim, m)``.

        The whole measurement runs under this backend's effective tier
        (``program=`` override or the global switch), so a
        ``program=False`` backend measures through the interpreted
        reference path even when the global tier is on, and vice versa.

        Device states cross back to the host exactly once: shot sampling
        converts ``psi`` up front (the sampler uses the host RNG), the
        exact path converts the stacked result after all expectations are
        computed on device.
        """
        if self.shots is not None:
            psi = _backend.to_host(psi)
        with _program.using_program(self._use_program()):
            columns = [None] * len(observables)
            if self.shots is None and self._use_program():
                diag_indices = [
                    j
                    for j, obs in enumerate(observables)
                    if isinstance(obs, PauliString)
                    and obs.is_diagonal
                    and not obs.is_identity()
                ]
                if diag_indices:
                    xp = _backend.array_namespace(psi)
                    probs = _sv.probabilities(psi)
                    signs = xp.device_constant(
                        _sv.stacked_z_signs(
                            n_qubits,
                            tuple(observables[j].wires for j in diag_indices),
                        )
                    )
                    values = probs @ signs
                    for column, j in enumerate(diag_indices):
                        columns[j] = values[:, column]
            for j, obs in enumerate(observables):
                if columns[j] is None:
                    columns[j] = self._measure_one(psi, obs, n_qubits)
            return _backend.to_host(np.stack(columns, axis=1))

    def _measure_one(self, psi, obs, n_qubits):
        if isinstance(obs, Hamiltonian):
            total = _backend.array_namespace(psi).zeros(psi.shape[0])
            for j, pauli in enumerate(obs.paulis):
                coeff = obs.coefficients[..., j]
                total = total + coeff * self._measure_one(psi, pauli, n_qubits)
            return total
        if not isinstance(obs, PauliString):
            raise TypeError(f"unsupported observable type {type(obs).__name__}")
        if self.shots is None:
            return obs.expectation(psi, n_qubits)
        rotated = _rotate_to_z_basis_sv(psi, obs, n_qubits)
        probs = _sv.probabilities(rotated)
        signs = _pauli_string_signs(obs, n_qubits)
        return _sample_mean_signs(probs, signs, self.shots, self.rng)

    def probabilities(self, circuit, inputs=None, weights=None, batch_size=None):
        """Computational-basis probabilities of the final state (host array)."""
        psi = self.evolve(circuit, inputs, weights, batch_size)
        return _backend.to_host(_sv.probabilities(psi))

    def __repr__(self):
        return f"StatevectorBackend(shots={self.shots})"


class DensityMatrixBackend:
    """Mixed-state execution with per-gate Kraus noise.

    Args:
        noise_model: :class:`~repro.quantum.channels.NoiseModel` applied
            after every gate (default: noiseless).
        shots: ``None`` for exact expectations, else sample count.
        rng: Generator for shot sampling.
    """

    name = "density_matrix"
    supports_adjoint = False

    def __init__(self, noise_model=None, shots=None, rng=None):
        if shots is not None and shots < 1:
            raise ValueError("shots must be None or >= 1")
        self.noise_model = noise_model if noise_model is not None else NoiseModel()
        self.shots = shots
        self.rng = rng if rng is not None else np.random.default_rng()

    def evolve(self, circuit, inputs=None, weights=None, batch_size=None):
        """Run the circuit with noise, returning ``(B, 2**n, 2**n)`` states."""
        inputs, batch = _normalise_run_args(circuit, inputs, batch_size)
        rho = _dm.zero_density(circuit.n_qubits, batch)
        for op in circuit.operations:
            theta = circuit.resolve_angle(op, inputs, weights)
            rho = _dm.apply_gate(rho, op.gate, op.wires, circuit.n_qubits, theta)
            for channel, wire in self.noise_model.channels_after(op):
                rho = _dm.apply_channel(rho, channel, (wire,), circuit.n_qubits)
        return rho

    def run(self, circuit, observables, inputs=None, weights=None, batch_size=None):
        """Expectation values, shape ``(B, n_observables)``."""
        rho = self.evolve(circuit, inputs, weights, batch_size)
        return self.measure(rho, observables, circuit.n_qubits)

    def measure(self, rho, observables, n_qubits):
        """Measure prepared density matrices."""
        columns = [self._measure_one(rho, obs, n_qubits) for obs in observables]
        return np.stack(columns, axis=1)

    def _measure_one(self, rho, obs, n_qubits):
        if isinstance(obs, Hamiltonian):
            total = np.zeros(rho.shape[0])
            for j, pauli in enumerate(obs.paulis):
                coeff = obs.coefficients[..., j]
                total = total + coeff * self._measure_one(rho, pauli, n_qubits)
            return total
        if not isinstance(obs, PauliString):
            raise TypeError(f"unsupported observable type {type(obs).__name__}")
        if self.shots is None:
            return _dm.expectation(rho, obs.matrix(n_qubits))
        rotated = rho
        for wire, p in obs.terms.items():
            rotation = _BASIS_ROTATIONS.get(p)
            if rotation is not None:
                rotated = _dm.apply_matrix(rotated, rotation, (wire,), n_qubits)
        probs = _dm.probabilities(rotated)
        signs = _pauli_string_signs(obs, n_qubits)
        return _sample_mean_signs(probs, signs, self.shots, self.rng)

    def probabilities(self, circuit, inputs=None, weights=None, batch_size=None):
        """Computational-basis probabilities of the final mixed state."""
        rho = self.evolve(circuit, inputs, weights, batch_size)
        return _dm.probabilities(rho)

    def __repr__(self):
        return (
            f"DensityMatrixBackend(noise_model={self.noise_model!r}, "
            f"shots={self.shots})"
        )
