"""State analysis: partial traces, Bloch vectors and amplitude grids.

Supports the paper's Fig. 4 demonstration, which renders the actor's
4-qubit state as a 4x4 grid of complex amplitudes (magnitude + phase mapped
to an HLS colour) and as per-qubit-pair reduced states.
"""

from __future__ import annotations

import numpy as np

from repro.quantum import gates as _gates

__all__ = [
    "partial_trace",
    "bloch_vector",
    "all_bloch_vectors",
    "amplitude_grid",
    "magnitude_phase",
]


def partial_trace(psi, keep, n_qubits):
    """Reduced density matrices over the ``keep`` wires for a state batch.

    Args:
        psi: ``(B, 2**n_qubits)`` statevector batch.
        keep: Wires to keep, in the order they should appear in the output.
        n_qubits: Total number of qubits.

    Returns:
        ``(B, 2**len(keep), 2**len(keep))`` density matrices.
    """
    keep = tuple(int(w) for w in keep)
    if len(set(keep)) != len(keep):
        raise ValueError(f"duplicate wires in {keep}")
    for w in keep:
        if not 0 <= w < n_qubits:
            raise ValueError(f"wire {w} out of range for {n_qubits} qubits")
    batch = psi.shape[0]
    drop = [w for w in range(n_qubits) if w not in keep]

    tensor = psi.reshape((batch,) + (2,) * n_qubits)
    # Move kept axes first (after batch), dropped axes last.
    order = [0] + [w + 1 for w in keep] + [w + 1 for w in drop]
    tensor = np.transpose(tensor, order)
    dim_keep = 2 ** len(keep)
    dim_drop = 2 ** len(drop)
    tensor = tensor.reshape(batch, dim_keep, dim_drop)
    return np.einsum("bik,bjk->bij", tensor, np.conjugate(tensor))


def bloch_vector(rho_1q):
    """Bloch vectors ``(<X>, <Y>, <Z>)`` of single-qubit density matrices.

    Args:
        rho_1q: ``(B, 2, 2)`` batch of single-qubit states.

    Returns:
        ``(B, 3)`` real array; norm <= 1 with equality for pure states.
    """
    rho_1q = np.asarray(rho_1q)
    if rho_1q.shape[-2:] != (2, 2):
        raise ValueError(f"expected single-qubit states, got {rho_1q.shape}")
    x = np.real(np.einsum("ij,bji->b", _gates.PAULI_X, rho_1q))
    y = np.real(np.einsum("ij,bji->b", _gates.PAULI_Y, rho_1q))
    z = np.real(np.einsum("ij,bji->b", _gates.PAULI_Z, rho_1q))
    return np.stack([x, y, z], axis=1)


def all_bloch_vectors(psi, n_qubits):
    """Bloch vector of every qubit: shape ``(B, n_qubits, 3)``."""
    vectors = []
    for wire in range(n_qubits):
        rho = partial_trace(psi, (wire,), n_qubits)
        vectors.append(bloch_vector(rho))
    return np.stack(vectors, axis=1)


def amplitude_grid(psi, rows, cols):
    """Reshape a statevector batch into ``(B, rows, cols)`` amplitude grids.

    For the paper's 4-qubit actor, ``rows = cols = 4`` arranges the 16
    amplitudes so the first two qubits index the row and the last two the
    column — the layout of Fig. 4's heatmaps.
    """
    psi = np.asarray(psi)
    if psi.ndim == 1:
        psi = psi[None, :]
    if rows * cols != psi.shape[-1]:
        raise ValueError(
            f"grid {rows}x{cols} incompatible with dim {psi.shape[-1]}"
        )
    return psi.reshape(psi.shape[0], rows, cols)


def magnitude_phase(amplitudes):
    """Split complex amplitudes into ``(magnitude, phase)`` arrays.

    Phases are in ``[-pi, pi]``; the phase of a (near-)zero amplitude is 0.
    """
    amplitudes = np.asarray(amplitudes)
    magnitude = np.abs(amplitudes)
    phase = np.where(magnitude > 1e-12, np.angle(amplitudes), 0.0)
    return magnitude, phase
