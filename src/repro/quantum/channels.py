"""Quantum noise channels in Kraus form, and per-gate noise models.

The paper's motivation for its compact state encoding is NISQ noise: gate
errors accumulate with circuit width and depth, so a CTDE critic whose qubit
count grows with the number of agents becomes untrainable.  This module
provides the standard single-qubit error channels used to study that effect
on the density-matrix backend, plus a :class:`NoiseModel` that attaches a
channel after every gate (the standard "gate error" model).
"""

from __future__ import annotations

import numpy as np

from repro.quantum import gates as _gates

__all__ = [
    "KrausChannel",
    "depolarizing",
    "bit_flip",
    "phase_flip",
    "bit_phase_flip",
    "amplitude_damping",
    "phase_damping",
    "NoiseModel",
]


class KrausChannel:
    """A completely-positive trace-preserving map ``rho -> sum_k K rho K^+``."""

    def __init__(self, name, kraus_operators, atol=1e-10):
        operators = [np.asarray(k, dtype=np.complex128) for k in kraus_operators]
        if not operators:
            raise ValueError("a channel needs at least one Kraus operator")
        dim = operators[0].shape[0]
        for k in operators:
            if k.shape != (dim, dim):
                raise ValueError("all Kraus operators must share a square shape")
        completeness = sum(k.conj().T @ k for k in operators)
        if not np.allclose(completeness, np.eye(dim), atol=atol):
            raise ValueError(
                f"channel {name!r} is not trace preserving: sum K^+K != I"
            )
        self.name = name
        self.kraus_operators = operators
        self.dim = dim

    @property
    def n_qubits(self):
        """Number of qubits the channel acts on."""
        return int(np.log2(self.dim))

    def __repr__(self):
        return (
            f"KrausChannel({self.name!r}, n_kraus={len(self.kraus_operators)}, "
            f"dim={self.dim})"
        )


def _probability(p):
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    return p


def depolarizing(p):
    """Single-qubit depolarising channel with error probability ``p``.

    With probability ``p`` the qubit is replaced by the maximally mixed
    state, implemented as uniform X/Y/Z errors of probability ``p/3`` each.
    """
    p = _probability(p)
    return KrausChannel(
        f"depolarizing({p})",
        [
            np.sqrt(1.0 - p) * _gates.I2,
            np.sqrt(p / 3.0) * _gates.PAULI_X,
            np.sqrt(p / 3.0) * _gates.PAULI_Y,
            np.sqrt(p / 3.0) * _gates.PAULI_Z,
        ],
    )


def bit_flip(p):
    """X error with probability ``p``."""
    p = _probability(p)
    return KrausChannel(
        f"bit_flip({p})",
        [np.sqrt(1.0 - p) * _gates.I2, np.sqrt(p) * _gates.PAULI_X],
    )


def phase_flip(p):
    """Z error with probability ``p``."""
    p = _probability(p)
    return KrausChannel(
        f"phase_flip({p})",
        [np.sqrt(1.0 - p) * _gates.I2, np.sqrt(p) * _gates.PAULI_Z],
    )


def bit_phase_flip(p):
    """Y error with probability ``p``."""
    p = _probability(p)
    return KrausChannel(
        f"bit_phase_flip({p})",
        [np.sqrt(1.0 - p) * _gates.I2, np.sqrt(p) * _gates.PAULI_Y],
    )


def amplitude_damping(gamma):
    """Energy relaxation (T1 decay) with damping rate ``gamma``."""
    gamma = _probability(gamma)
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]], dtype=np.complex128)
    return KrausChannel(f"amplitude_damping({gamma})", [k0, k1])


def phase_damping(gamma):
    """Pure dephasing (T2) with rate ``gamma``."""
    gamma = _probability(gamma)
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0.0, 0.0], [0.0, np.sqrt(gamma)]], dtype=np.complex128)
    return KrausChannel(f"phase_damping({gamma})", [k0, k1])


class NoiseModel:
    """Attaches error channels to gate applications.

    The default construction models uniform gate error: after every gate, a
    single-qubit channel (built by ``channel_factory(p)``) is applied to each
    wire the gate touched.  Two-qubit gates may use a (typically larger)
    error probability, reflecting real NISQ calibration data.

    Args:
        single_qubit_error: Error probability after 1-qubit gates.
        two_qubit_error: Error probability after multi-qubit gates
            (defaults to ``10 *`` the single-qubit error, a common ratio on
            superconducting hardware).
        channel_factory: Callable ``p -> KrausChannel`` (default
            :func:`depolarizing`).
    """

    def __init__(
        self,
        single_qubit_error=0.0,
        two_qubit_error=None,
        channel_factory=depolarizing,
    ):
        if two_qubit_error is None:
            two_qubit_error = min(1.0, 10.0 * single_qubit_error)
        self.single_qubit_error = _probability(single_qubit_error)
        self.two_qubit_error = _probability(two_qubit_error)
        self._factory = channel_factory
        self._single_channel = (
            channel_factory(self.single_qubit_error)
            if self.single_qubit_error > 0
            else None
        )
        self._two_channel = (
            channel_factory(self.two_qubit_error)
            if self.two_qubit_error > 0
            else None
        )

    @property
    def is_noiseless(self):
        """True when no channel would ever be applied."""
        return self._single_channel is None and self._two_channel is None

    def channels_after(self, operation):
        """Channels to apply after one circuit operation.

        Returns a list of ``(channel, wire)`` pairs: one single-qubit channel
        per touched wire, with the error rate chosen by gate arity.
        """
        if len(operation.wires) == 1:
            channel = self._single_channel
        else:
            channel = self._two_channel
        if channel is None:
            return []
        return [(channel, wire) for wire in operation.wires]

    def __repr__(self):
        return (
            f"NoiseModel(single_qubit_error={self.single_qubit_error}, "
            f"two_qubit_error={self.two_qubit_error})"
        )
