"""Circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of gate operations whose angles
reference one of three parameter sources:

- ``input`` — a feature of the classical input vector (the paper's state
  encoder ``U_enc``, green block of Fig. 1),
- ``weight`` — a trainable variational parameter (the paper's ``U_var``,
  blue block of Fig. 1),
- ``fixed`` — a constant angle.

The circuit itself is purely symbolic; executing it against concrete inputs
and weights is the job of the backends in :mod:`repro.quantum.backends`, and
differentiating it is the job of :mod:`repro.quantum.gradients`.  Keeping the
IR symbolic lets one circuit serve simultaneously as the forward model, the
adjoint-differentiation target and the parameter-shift target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantum import gates as _gates

__all__ = ["ParameterRef", "Operation", "QuantumCircuit"]


@dataclass(frozen=True)
class ParameterRef:
    """Reference to where a gate angle comes from.

    Attributes:
        kind: ``"input"``, ``"weight"`` or ``"fixed"``.
        index: Feature / weight index for input and weight kinds.
        value: Constant angle for the fixed kind.
        scale: Multiplier applied to the referenced value (used e.g. to map
            normalised features onto rotation angles, ``theta = scale * x``).
    """

    kind: str
    index: int = None
    value: float = None
    scale: float = 1.0

    def __post_init__(self):
        if self.kind not in ("input", "weight", "fixed"):
            raise ValueError(f"unknown parameter kind {self.kind!r}")
        if self.kind in ("input", "weight"):
            if self.index is None or self.index < 0:
                raise ValueError(f"{self.kind} reference needs a non-negative index")
        elif self.value is None:
            raise ValueError("fixed reference needs a value")

    @classmethod
    def input(cls, index, scale=1.0):
        """Angle taken from input feature ``index`` (times ``scale``)."""
        return cls(kind="input", index=int(index), scale=float(scale))

    @classmethod
    def weight(cls, index, scale=1.0):
        """Angle taken from trainable weight ``index`` (times ``scale``)."""
        return cls(kind="weight", index=int(index), scale=float(scale))

    @classmethod
    def fixed(cls, value):
        """Constant angle."""
        return cls(kind="fixed", value=float(value))


@dataclass(frozen=True)
class Operation:
    """One gate application inside a circuit."""

    gate: str
    wires: tuple
    param: ParameterRef = None

    def __post_init__(self):
        spec = _gates.get_gate_spec(self.gate)
        object.__setattr__(self, "wires", tuple(int(w) for w in self.wires))
        if len(self.wires) != spec.n_qubits:
            raise ValueError(
                f"gate {self.gate!r} needs {spec.n_qubits} wires, got {self.wires}"
            )
        if spec.n_params == 1 and self.param is None:
            raise ValueError(f"gate {self.gate!r} requires a parameter")
        if spec.n_params == 0 and self.param is not None:
            raise ValueError(f"gate {self.gate!r} takes no parameter")

    @property
    def spec(self):
        """The :class:`~repro.quantum.gates.GateSpec` for this operation."""
        return _gates.get_gate_spec(self.gate)

    @property
    def is_parameterised(self):
        """True when the gate has a (symbolic) angle."""
        return self.param is not None

    @property
    def is_trainable(self):
        """True when the angle references a trainable weight."""
        return self.param is not None and self.param.kind == "weight"

    @property
    def is_input(self):
        """True when the angle references an input feature."""
        return self.param is not None and self.param.kind == "input"


class QuantumCircuit:
    """An ordered sequence of operations on ``n_qubits`` wires.

    Example — the paper's 4-qubit actor circuit skeleton::

        circuit = QuantumCircuit(4)
        for w in range(4):
            circuit.add("rx", (w,), ParameterRef.input(w, scale=np.pi))
        circuit.add("ry", (0,), ParameterRef.weight(0))
        circuit.add("cnot", (0, 1))
    """

    def __init__(self, n_qubits):
        if n_qubits < 1:
            raise ValueError("n_qubits must be >= 1")
        self.n_qubits = int(n_qubits)
        self.operations = []

    # -- construction -------------------------------------------------------

    def add(self, gate, wires, param=None):
        """Append one operation; returns ``self`` for chaining."""
        op = Operation(gate=gate, wires=tuple(wires), param=param)
        for w in op.wires:
            if not 0 <= w < self.n_qubits:
                raise ValueError(f"wire {w} out of range for {self.n_qubits} qubits")
        self.operations.append(op)
        return self

    def extend(self, other):
        """Append all operations of another circuit; returns ``self``."""
        if other.n_qubits != self.n_qubits:
            raise ValueError(
                f"cannot extend a {self.n_qubits}-qubit circuit with a "
                f"{other.n_qubits}-qubit circuit"
            )
        for op in other.operations:
            self.operations.append(op)
        return self

    def copy(self):
        """Shallow copy (operations are immutable, so this is safe)."""
        dup = QuantumCircuit(self.n_qubits)
        dup.operations = list(self.operations)
        return dup

    # -- introspection -------------------------------------------------------

    @property
    def n_operations(self):
        """Total number of gate applications."""
        return len(self.operations)

    @property
    def n_inputs(self):
        """Number of distinct input features referenced (max index + 1)."""
        indices = [op.param.index for op in self.operations if op.is_input]
        return max(indices) + 1 if indices else 0

    @property
    def n_weights(self):
        """Number of distinct trainable weights referenced (max index + 1)."""
        indices = [op.param.index for op in self.operations if op.is_trainable]
        return max(indices) + 1 if indices else 0

    @property
    def trainable_operations(self):
        """Operations whose angle references a trainable weight."""
        return [op for op in self.operations if op.is_trainable]

    def gate_counts(self):
        """Histogram of gate names, e.g. ``{"rx": 12, "cnot": 3}``."""
        counts = {}
        for op in self.operations:
            counts[op.gate] = counts.get(op.gate, 0) + 1
        return counts

    def validate(self):
        """Check internal consistency; raises ``ValueError`` on problems.

        Verifies that weight indices are contiguous starting at 0 so a dense
        weight vector can drive the circuit with no dead entries.
        """
        weight_indices = {
            op.param.index for op in self.operations if op.is_trainable
        }
        if weight_indices and weight_indices != set(range(len(weight_indices))):
            raise ValueError(
                f"weight indices are not contiguous from 0: {sorted(weight_indices)}"
            )
        return self

    # -- angle resolution ----------------------------------------------------

    def resolve_angle(self, op, inputs=None, weights=None):
        """Concrete angle for one operation.

        Args:
            op: The operation (must belong to this circuit's gate set).
            inputs: ``(B, n_inputs)`` feature batch, required when any
                operation references an input.
            weights: ``(n_weights,)`` trainable vector shared across the
                batch, or ``(B, n_weights)`` per-sample weights (used to
                evaluate an *ensemble* of same-structure circuits — e.g. all
                agents' actors — in one batched call).

        Returns:
            ``None`` for fixed gates, a scalar for weight/fixed angles, or a
            ``(B,)`` array for input-encoded or per-sample-weight angles.
        """
        if op.param is None:
            return None
        ref = op.param
        if ref.kind == "fixed":
            return ref.value * ref.scale
        if ref.kind == "weight":
            if weights is None:
                raise ValueError("circuit references weights but none were given")
            weights = np.asarray(weights)
            if weights.ndim == 2:
                return weights[:, ref.index] * ref.scale
            return float(weights[ref.index]) * ref.scale
        if inputs is None:
            raise ValueError("circuit references inputs but none were given")
        return np.asarray(inputs)[:, ref.index] * ref.scale

    # -- rendering -----------------------------------------------------------

    def draw(self, max_ops=None):
        """Compact text rendering, one operation per line."""
        lines = [f"QuantumCircuit({self.n_qubits} qubits, {self.n_operations} ops)"]
        ops = self.operations if max_ops is None else self.operations[:max_ops]
        for i, op in enumerate(ops):
            wires = ",".join(str(w) for w in op.wires)
            if op.param is None:
                angle = ""
            elif op.param.kind == "fixed":
                angle = f"({op.param.value:.4g})"
            else:
                prefix = "x" if op.param.kind == "input" else "w"
                scale = (
                    "" if op.param.scale == 1.0 else f"*{op.param.scale:.4g}"
                )
                angle = f"({prefix}[{op.param.index}]{scale})"
            lines.append(f"  {i:3d}: {op.gate}{angle} @ [{wires}]")
        if max_ops is not None and self.n_operations > max_ops:
            lines.append(f"  ... {self.n_operations - max_ops} more")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"QuantumCircuit(n_qubits={self.n_qubits}, "
            f"n_ops={self.n_operations}, n_inputs={self.n_inputs}, "
            f"n_weights={self.n_weights})"
        )
