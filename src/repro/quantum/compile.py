"""Circuit compilation: cache the variational block as one unitary.

During decentralised execution (and between gradient updates during
training) a VQC's *variational* gates are frozen — only the data-encoding
gates change per input.  Rollouts therefore re-simulate 50 identical gates
for every observation.  This module splits a circuit at the last
input-dependent operation, compiles everything after it into a single
``2**n x 2**n`` unitary (by evolving the identity basis batch once), and
caches that unitary keyed on the weight values.  Executing the circuit then
costs one encoding pass plus one small matmul.

The compiled path is numerically identical to gate-by-gate simulation (it
is the same linear map, just associatively regrouped) and is validated
against the uncompiled backend in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.quantum import backend as _backend
from repro.quantum import program as _program
from repro.quantum import statevector as _sv
from repro.quantum.backends import StatevectorBackend, _normalise_run_args
from repro.quantum.program import weights_key as _weights_key

__all__ = ["split_index", "CompiledCircuit"]


def split_index(circuit):
    """Index of the first operation after the last input-dependent one.

    Everything from this index on depends only on weights and constants and
    can be compiled into a fixed unitary for given weight values.
    """
    last_input = -1
    for i, op in enumerate(circuit.operations):
        if op.is_input:
            last_input = i
    return last_input + 1


class CompiledCircuit:
    """A circuit with its weight-only suffix compiled and cached.

    Args:
        circuit: The symbolic circuit (validated on construction).
        observables: Default measurement set for :meth:`run`.

    The suffix unitary is recomputed automatically whenever the weight
    *values* change (detected by content hash), so the object can be held
    across training updates.  Supports per-sample weight matrices
    ``(N, n_weights)`` for ensemble evaluation — the cache then holds ``N``
    stacked unitaries.
    """

    def __init__(self, circuit, observables=None, array_backend=None):
        circuit.validate()
        self.circuit = circuit
        self.observables = list(observables) if observables is not None else None
        self.split = split_index(circuit)
        self._prefix = circuit.operations[: self.split]
        self._suffix = circuit.operations[self.split :]
        self._cache_key = None
        self._cached_unitary = None
        self.array_backend = array_backend
        self._backend = StatevectorBackend(array_backend=array_backend)
        # Program-compiled kernel plans for the two circuit halves, built
        # lazily so the interpreted tier pays no compile cost; keyed per
        # array backend so the cached unitary stays device-resident.
        self._prefix_programs = {}
        self._suffix_programs = {}

    def _array_backend(self):
        return _backend.get_array_backend(self.array_backend)

    def _half_program(self, programs, operations):
        xp = self._array_backend()
        prog = programs.get(id(xp))
        if prog is None:
            prog = programs[id(xp)] = _program.CircuitProgram(
                self.circuit.n_qubits, operations, xp
            )
        return prog

    @property
    def n_compiled_operations(self):
        """Gate count folded into the cached unitary."""
        return len(self._suffix)

    def suffix_unitary(self, weights):
        """The unitary of the weight-only block (cached by weight content).

        Returns ``(dim, dim)`` for a weight vector, or ``(N, dim, dim)`` for
        an ``(N, n_weights)`` weight matrix.
        """
        key = (
            id(self._array_backend()),
            _program.program_enabled(),
            _weights_key(weights),
        )
        if key == self._cache_key:
            if obs.enabled():
                obs.counter("program.suffix_hit").inc()
            return self._cached_unitary
        if obs.enabled():
            obs.counter("program.suffix_build").inc()
        n = self.circuit.n_qubits
        dim = 2**n
        weights_arr = None if weights is None else np.asarray(weights)

        if weights_arr is not None and weights_arr.ndim == 2:
            n_sets = weights_arr.shape[0]
            basis = np.tile(np.eye(dim, dtype=np.complex128), (n_sets, 1))
            expanded = np.repeat(weights_arr, dim, axis=0)
            psi = self._evolve_suffix(basis, expanded)
            # Row b of each block is U|b>, so each block is U^T.
            xp = _backend.array_namespace(psi)
            unitary = xp.transpose(psi.reshape(n_sets, dim, dim), (0, 2, 1))
        else:
            basis = np.eye(dim, dtype=np.complex128)
            psi = self._evolve_suffix(basis, weights_arr)
            unitary = _backend.array_namespace(psi).transpose(psi, (1, 0))

        self._cache_key = key
        self._cached_unitary = unitary
        return unitary

    def _evolve_suffix(self, psi, weights):
        n = self.circuit.n_qubits
        if _program.program_enabled():
            prog = self._half_program(self._suffix_programs, self._suffix)
            # The identity-basis batch is built on the host; one explicit
            # upload per (rare) unitary rebuild.
            return prog.apply(prog.array_backend.asarray(psi), None, weights)
        for op in self._suffix:
            theta = self.circuit.resolve_angle(op, None, weights)
            psi = _sv.apply_gate(psi, op.gate, op.wires, n, theta)
        return psi

    def _evolve_prefix(self, batch, inputs, weights):
        n = self.circuit.n_qubits
        if _program.program_enabled():
            prog = self._half_program(self._prefix_programs, self._prefix)
            return prog.apply(prog.zero_state(batch), inputs, weights)
        psi = _sv.zero_state(n, batch)
        for op in self._prefix:
            theta = self.circuit.resolve_angle(op, inputs, weights)
            psi = _sv.apply_gate(psi, op.gate, op.wires, n, theta)
        return psi

    def evolve(self, inputs=None, weights=None, batch_size=None):
        """Final states: encoding pass + one cached-unitary matmul.

        With 2-D weights ``(G, n_weights)``, the input batch must have
        ``k * G`` rows for integer ``k >= 1``; row ``b`` uses weight row
        ``b % G`` (group-major tiling).  ``k = 1`` is the plain ensemble
        evaluation used for team rollouts; ``k > 1`` is the vectorized
        rollout over ``k`` lockstep env copies.  Only the ``G`` distinct
        suffix unitaries are ever compiled and cached — the cache key does
        not depend on ``k``, so alternating batch sizes (collection vs.
        serial evaluation) never recompiles.
        """
        inputs_arr, batch = _normalise_run_args(self.circuit, inputs, batch_size)
        n = self.circuit.n_qubits
        weights_arr = None if weights is None else np.asarray(weights)
        prefix_weights = weights_arr
        if weights_arr is not None and weights_arr.ndim == 2:
            n_sets = weights_arr.shape[0]
            if batch != n_sets:
                if batch % n_sets:
                    raise ValueError(
                        f"{n_sets} weight rows for batch {batch}"
                    )
                prefix_weights = np.tile(weights_arr, (batch // n_sets, 1))
        psi = self._evolve_prefix(batch, inputs_arr, prefix_weights)

        unitary = self.suffix_unitary(weights_arr)
        xp = _backend.array_namespace(psi)
        if unitary.ndim == 3:
            n_sets, dim = unitary.shape[0], unitary.shape[1]
            if batch != n_sets:
                psi = psi.reshape(batch // n_sets, n_sets, dim)
                psi = xp.einsum("gij,kgj->kgi", unitary, psi)
                return psi.reshape(batch, dim)
            return xp.einsum("bij,bj->bi", unitary, psi)
        return xp.matmul(psi, xp.transpose(unitary, (1, 0)))

    def run(self, inputs=None, weights=None, observables=None, batch_size=None):
        """Expectation values ``(B, n_observables)`` via the compiled path."""
        observables = observables if observables is not None else self.observables
        if observables is None:
            raise ValueError("no observables given and no default set")
        psi = self.evolve(inputs, weights, batch_size)
        return self._backend.measure(psi, observables, self.circuit.n_qubits)

    def evolve_rows(self, inputs, weights, rows):
        """Final states where row ``b`` uses weight row ``rows[b]``.

        The ragged-gather counterpart of :meth:`evolve`'s group-major
        tiling: ``weights`` is the full ``(G, n_weights)`` matrix and
        ``rows`` picks an arbitrary weight row per input — a micro-batch
        mixing agents in any order and multiplicity.  Only the ``G``
        distinct suffix unitaries are compiled, in the *same* cache entry
        the tiled path uses, so alternating between the two never
        recompiles.
        """
        inputs_arr, batch = _normalise_run_args(self.circuit, inputs, None)
        weights_arr = np.asarray(weights)
        if weights_arr.ndim != 2:
            raise ValueError(
                f"evolve_rows needs a (G, n_weights) matrix, got "
                f"shape {weights_arr.shape}"
            )
        rows = np.asarray(rows, dtype=np.intp)
        if rows.shape != (batch,):
            raise ValueError(
                f"rows must have shape ({batch},), got {rows.shape}"
            )
        psi = self._evolve_prefix(batch, inputs_arr, weights_arr[rows])
        unitary = self.suffix_unitary(weights_arr)
        xp = _backend.array_namespace(psi)
        return xp.einsum("bij,bj->bi", unitary[xp.asarray(rows)], psi)

    def run_rows(self, inputs, weights, rows, observables=None):
        """Expectation values ``(B, n_observables)`` for gathered weight rows."""
        observables = observables if observables is not None else self.observables
        if observables is None:
            raise ValueError("no observables given and no default set")
        psi = self.evolve_rows(inputs, weights, rows)
        return self._backend.measure(psi, observables, self.circuit.n_qubits)

    def invalidate(self):
        """Drop the cached unitary (normally unnecessary — keys are content hashes)."""
        self._cache_key = None
        self._cached_unitary = None

    def __repr__(self):
        return (
            f"CompiledCircuit(n_qubits={self.circuit.n_qubits}, "
            f"prefix={self.split} ops, compiled={self.n_compiled_operations} ops)"
        )
