"""Batched density-matrix simulation (for noisy / NISQ studies).

States are ``(B, 2**n, 2**n)`` complex density matrices.  Unitary gates act
as ``U rho U^+``; noise channels act as ``sum_k K rho K^+``.  For the 4-qubit
circuits of the paper the density matrix is 16x16, so exact noisy simulation
is cheap even on a laptop.

Qubit-ordering convention matches :mod:`repro.quantum.statevector` (qubit 0
is the most-significant bit).
"""

from __future__ import annotations

import numpy as np

from repro.quantum import gates as _gates

__all__ = [
    "zero_density",
    "from_statevector",
    "apply_matrix",
    "apply_gate",
    "apply_channel",
    "purity",
    "traces",
    "probabilities",
    "expectation",
]


def zero_density(n_qubits, batch_size=1):
    """The ``|0...0><0...0|`` state, batched: shape ``(B, 2**n, 2**n)``."""
    dim = 2**n_qubits
    rho = np.zeros((batch_size, dim, dim), dtype=np.complex128)
    rho[:, 0, 0] = 1.0
    return rho


def from_statevector(psi):
    """Outer products ``|psi><psi|`` for a batch of pure states."""
    return np.einsum("bi,bj->bij", psi, np.conjugate(psi))


def apply_matrix(rho, matrix, wires, n_qubits):
    """Apply ``M rho M^+`` with ``M`` acting on ``wires``; returns new array.

    Implemented as two batched statevector-style applications: ``M`` on the
    row index group (folding the column index into the batch), then
    ``conj(M)`` on the column index group.  This keeps the per-gate cost at
    the same axis-shuffle-plus-small-matmul as pure-state simulation instead
    of materialising the full ``2**n x 2**n`` operator.
    """
    from repro.quantum import statevector as _sv

    matrix = np.asarray(matrix, dtype=np.complex128)
    batch = rho.shape[0]
    dim = 2**n_qubits
    if rho.shape[1:] != (dim, dim):
        raise ValueError(f"rho shape {rho.shape} incompatible with {n_qubits} qubits")
    batched = matrix.ndim == 3
    # Per-sample matrices must be repeated for every folded index.
    folded_matrix = np.repeat(matrix, dim, axis=0) if batched else matrix

    # Left multiply (rows): out[b,i,j] = sum_k M[i,k] rho[b,k,j].
    folded = np.swapaxes(rho, 1, 2).reshape(batch * dim, dim)
    folded = _sv.apply_matrix(folded, folded_matrix, wires, n_qubits)
    out = np.swapaxes(folded.reshape(batch, dim, dim), 1, 2)

    # Right multiply (columns): out[b,i,j] = sum_k conj(M)[j,k] (M rho)[b,i,k].
    folded = out.reshape(batch * dim, dim)
    folded = _sv.apply_matrix(
        folded, np.conjugate(folded_matrix), wires, n_qubits
    )
    return folded.reshape(batch, dim, dim)


def apply_gate(rho, name, wires, n_qubits, theta=None):
    """Apply a registered unitary gate by name to a density-matrix batch."""
    spec = _gates.get_gate_spec(name)
    matrix = spec.matrix(theta) if spec.n_params else spec.matrix()
    return apply_matrix(rho, matrix, wires, n_qubits)


def apply_channel(rho, channel, wires, n_qubits):
    """Apply a Kraus channel ``rho -> sum_k K rho K^+`` on ``wires``."""
    wires = tuple(wires)
    if 2 ** len(wires) != channel.dim:
        raise ValueError(
            f"channel dim {channel.dim} incompatible with wires {wires}"
        )
    out = np.zeros_like(rho)
    for kraus in channel.kraus_operators:
        out += apply_matrix(rho, kraus, wires, n_qubits)
    return out


def traces(rho):
    """Per-sample traces (should be ~1 for physical states)."""
    return np.einsum("bii->b", rho)


def purity(rho):
    """Per-sample purity ``Tr(rho^2)``: 1 for pure, 1/2**n for maximally mixed."""
    return np.real(np.einsum("bij,bji->b", rho, rho))


def probabilities(rho):
    """Computational-basis probabilities: the real diagonal, ``(B, 2**n)``."""
    return np.real(np.einsum("bii->bi", rho))


def expectation(rho, observable_matrix):
    """``Tr(O rho)`` per sample for a dense observable matrix."""
    return np.real(np.einsum("ij,bji->b", observable_matrix, rho))
