"""Classical-to-quantum state encoders (the paper's ``U_enc`` block).

The paper's key scalability device is *multi-layer angle encoding*: instead
of one qubit per feature (which would make the centralised critic's qubit
count grow linearly with the number of agents, amplifying NISQ gate error),
features are folded onto a fixed qubit register by stacking rotation layers
whose axis cycles X -> Y -> Z -> X ... (Fig. 1).  With 4 qubits and 4 layers
this encodes the 16-dimensional joint state of N=4 agents — the
``n_qubit * n_agent / 4`` annotation of Fig. 2.

Encoders append operations referencing *input* features and return the
number of features consumed.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import ParameterRef

__all__ = [
    "AngleEncoding",
    "MultiLayerAngleEncoding",
    "DataReuploadingEncoding",
]

_AXIS_CYCLE = ("rx", "ry", "rz")


class AngleEncoding:
    """One feature per qubit, encoded as a single-axis rotation.

    The naive encoder: register width must equal the feature count, which is
    exactly the scaling problem the paper's multi-layer encoder avoids.
    """

    def __init__(self, n_qubits, rotation="rx", scale=np.pi):
        if rotation not in _AXIS_CYCLE:
            raise ValueError(f"rotation must be one of {_AXIS_CYCLE}")
        self.n_qubits = n_qubits
        self.rotation = rotation
        self.scale = float(scale)

    @property
    def n_features(self):
        """Features consumed by this encoder."""
        return self.n_qubits

    def apply(self, circuit, feature_offset=0):
        """Append encoding rotations; returns the next free feature index."""
        index = feature_offset
        for wire in range(self.n_qubits):
            circuit.add(
                self.rotation, (wire,), ParameterRef.input(index, self.scale)
            )
            index += 1
        return index


class MultiLayerAngleEncoding:
    """The paper's Fig. 1 encoder: stacked rotation layers with cycling axes.

    Layer ``l`` applies ``R_axis(scale * x[l*n_qubits + q])`` on qubit ``q``
    with ``axis`` cycling through X, Y, Z, X, ...  Encodes ``n_features``
    features on ``n_qubits`` qubits using ``ceil(n_features / n_qubits)``
    layers; the final layer may be partial when the feature count is not a
    multiple of the register width.

    Args:
        n_qubits: Register width.
        n_features: Total features to encode (positive).
        scale: Angle scale per feature (features are assumed normalised to
            [0, 1] by the environment; the default ``pi`` maps them onto a
            half rotation).
    """

    def __init__(self, n_qubits, n_features, scale=np.pi):
        if n_features < 1:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.n_qubits = n_qubits
        self.n_features = n_features
        self.n_layers = -(-n_features // n_qubits)  # ceiling division
        self.scale = float(scale)

    def apply(self, circuit, feature_offset=0):
        """Append encoding layers; returns the next free feature index."""
        index = feature_offset
        for feature in range(self.n_features):
            layer, wire = divmod(feature, self.n_qubits)
            rotation = _AXIS_CYCLE[layer % len(_AXIS_CYCLE)]
            circuit.add(rotation, (wire,), ParameterRef.input(index, self.scale))
            index += 1
        return index


class DataReuploadingEncoding:
    """Re-uploading encoder: repeats an inner encoder before each variational block.

    An extension beyond the paper (Perez-Salinas et al. 2020): interleaving
    encoding and variational layers increases the expressible frequency
    spectrum of the circuit without adding qubits.  Used in the ansatz
    ablation.

    Args:
        inner: Any encoder with ``apply``/``n_features``.
        n_repeats: How many times the same features are re-uploaded.
    """

    def __init__(self, inner, n_repeats):
        if n_repeats < 1:
            raise ValueError("n_repeats must be >= 1")
        self.inner = inner
        self.n_repeats = n_repeats
        self.n_qubits = inner.n_qubits

    @property
    def n_features(self):
        """Features consumed (the same block is re-used every repeat)."""
        return self.inner.n_features

    def apply(self, circuit, feature_offset=0):
        """Append one upload block; returns the next free feature index.

        Call once per variational block when assembling a re-uploading
        circuit; every call re-encodes the *same* feature range.
        """
        self.inner.apply(circuit, feature_offset)
        return feature_offset + self.inner.n_features
