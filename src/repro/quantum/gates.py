"""Quantum gate algebra.

This module defines the gate set used throughout the quantum substrate:

- fixed (non-parameterised) gates as constant unitary matrices,
- parameterised rotation gates ``U(theta) = exp(-i * theta / 2 * G)`` built
  from a Hermitian *generator* ``G``,
- a :class:`GateSpec` registry mapping gate names to matrix builders,
  generators, qubit arity and differentiation metadata.

All matrices use the computational-basis convention with qubit 0 as the
most-significant bit, matching :mod:`repro.quantum.statevector`.

Parameterised gates are *batched*: passing an angle array of shape ``(B,)``
returns a stacked matrix of shape ``(B, dim, dim)``.  Scalar angles return a
plain ``(dim, dim)`` matrix.  This is what lets the simulator evaluate a
circuit on a whole batch of differently-encoded inputs in one numpy call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "I2",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "HADAMARD",
    "S_GATE",
    "T_GATE",
    "CNOT",
    "CZ",
    "SWAP",
    "TOFFOLI",
    "rx",
    "ry",
    "rz",
    "phase_shift",
    "crx",
    "cry",
    "crz",
    "rot",
    "controlled",
    "GateSpec",
    "GATE_REGISTRY",
    "get_gate_spec",
    "is_unitary",
]

# ---------------------------------------------------------------------------
# Fixed gates
# ---------------------------------------------------------------------------

I2 = np.eye(2, dtype=np.complex128)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2.0)
S_GATE = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
T_GATE = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)

CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=np.complex128,
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex128)
SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=np.complex128,
)
TOFFOLI = np.eye(8, dtype=np.complex128)
TOFFOLI[[6, 7], [6, 7]] = 0
TOFFOLI[6, 7] = 1
TOFFOLI[7, 6] = 1


def _as_angle_array(theta):
    """Return ``(theta, batched)`` with ``theta`` as a float64 ndarray."""
    arr = np.asarray(theta, dtype=np.float64)
    if arr.ndim > 1:
        raise ValueError(f"gate angles must be scalar or 1-D, got shape {arr.shape}")
    return arr, arr.ndim == 1


def _stack_2x2(a, b, c, d, batched):
    """Assemble a (possibly batched) 2x2 complex matrix from entries."""
    if batched:
        out = np.empty(a.shape + (2, 2), dtype=np.complex128)
    else:
        out = np.empty((2, 2), dtype=np.complex128)
    out[..., 0, 0] = a
    out[..., 0, 1] = b
    out[..., 1, 0] = c
    out[..., 1, 1] = d
    return out


# ---------------------------------------------------------------------------
# Parameterised single-qubit rotations
# ---------------------------------------------------------------------------


def rx(theta):
    """Rotation around X: ``exp(-i * theta / 2 * X)``."""
    theta, batched = _as_angle_array(theta)
    c = np.cos(theta / 2.0)
    s = -1j * np.sin(theta / 2.0)
    return _stack_2x2(c, s, s, c, batched)


def ry(theta):
    """Rotation around Y: ``exp(-i * theta / 2 * Y)``."""
    theta, batched = _as_angle_array(theta)
    c = np.cos(theta / 2.0)
    s = np.sin(theta / 2.0)
    return _stack_2x2(c, -s, s, c, batched)


def rz(theta):
    """Rotation around Z: ``exp(-i * theta / 2 * Z)``."""
    theta, batched = _as_angle_array(theta)
    e_minus = np.exp(-1j * theta / 2.0)
    e_plus = np.exp(1j * theta / 2.0)
    zeros = np.zeros_like(e_minus)
    return _stack_2x2(e_minus, zeros, zeros, e_plus, batched)


def phase_shift(theta):
    """Phase-shift gate ``diag(1, exp(i*theta))``."""
    theta, batched = _as_angle_array(theta)
    ones = np.ones_like(theta, dtype=np.complex128)
    zeros = np.zeros_like(ones)
    return _stack_2x2(ones, zeros, zeros, np.exp(1j * theta), batched)


def rot(phi, theta, omega):
    """General single-qubit rotation ``RZ(omega) @ RY(theta) @ RZ(phi)``."""
    return rz(omega) @ ry(theta) @ rz(phi)


# ---------------------------------------------------------------------------
# Controlled rotations
# ---------------------------------------------------------------------------


def controlled(matrix):
    """Lift a (possibly batched) single-qubit gate to its controlled 4x4 form.

    The control is the first (most-significant) of the two qubits.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    batch_shape = matrix.shape[:-2]
    out = np.zeros(batch_shape + (4, 4), dtype=np.complex128)
    out[..., 0, 0] = 1.0
    out[..., 1, 1] = 1.0
    out[..., 2:, 2:] = matrix
    return out


def crx(theta):
    """Controlled-RX rotation."""
    return controlled(rx(theta))


def cry(theta):
    """Controlled-RY rotation."""
    return controlled(ry(theta))


def crz(theta):
    """Controlled-RZ rotation."""
    return controlled(rz(theta))


# ---------------------------------------------------------------------------
# Generators (for adjoint differentiation and parameter-shift metadata)
# ---------------------------------------------------------------------------

_P1 = np.array([[0, 0], [0, 1]], dtype=np.complex128)  # |1><1| projector


def _controlled_generator(pauli):
    """Generator of a controlled rotation: ``|1><1| (x) P``."""
    return np.kron(_P1, pauli)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateSpec:
    """Static description of one gate type.

    Attributes:
        name: Registry key, lower-case (e.g. ``"rx"``).
        n_qubits: Number of wires the gate acts on.
        n_params: 0 for fixed gates, 1 for single-angle rotations.
        matrix_fn: Builder ``fn(theta) -> matrix`` for parameterised gates,
            or ``None`` for fixed gates.
        fixed_matrix: Constant matrix for non-parameterised gates.
        generator: Hermitian ``G`` with ``U(theta) = exp(-i*theta/2*G)``;
            ``None`` for fixed gates.
        shift_rule: ``"two_term"`` when ``G^2 = I`` (Pauli rotations),
            ``"four_term"`` for controlled rotations, ``None`` otherwise.
    """

    name: str
    n_qubits: int
    n_params: int
    matrix_fn: object = None
    fixed_matrix: np.ndarray = None
    generator: np.ndarray = None
    shift_rule: str = None
    self_inverse: bool = field(default=False)

    def matrix(self, theta=None):
        """Return the (possibly batched) unitary for this gate."""
        if self.n_params == 0:
            if theta is not None:
                raise ValueError(f"gate {self.name!r} takes no parameter")
            return self.fixed_matrix
        if theta is None:
            raise ValueError(f"gate {self.name!r} requires a parameter")
        return self.matrix_fn(theta)

    @property
    def dim(self):
        """Hilbert-space dimension the gate matrix acts on."""
        return 2**self.n_qubits


def _fixed(name, matrix, n_qubits, self_inverse=False):
    return GateSpec(
        name=name,
        n_qubits=n_qubits,
        n_params=0,
        fixed_matrix=matrix,
        self_inverse=self_inverse,
    )


def _rotation(name, matrix_fn, generator, n_qubits, shift_rule):
    return GateSpec(
        name=name,
        n_qubits=n_qubits,
        n_params=1,
        matrix_fn=matrix_fn,
        generator=generator,
        shift_rule=shift_rule,
    )


GATE_REGISTRY = {
    "i": _fixed("i", I2, 1, self_inverse=True),
    "x": _fixed("x", PAULI_X, 1, self_inverse=True),
    "y": _fixed("y", PAULI_Y, 1, self_inverse=True),
    "z": _fixed("z", PAULI_Z, 1, self_inverse=True),
    "h": _fixed("h", HADAMARD, 1, self_inverse=True),
    "s": _fixed("s", S_GATE, 1),
    "t": _fixed("t", T_GATE, 1),
    "cnot": _fixed("cnot", CNOT, 2, self_inverse=True),
    "cz": _fixed("cz", CZ, 2, self_inverse=True),
    "swap": _fixed("swap", SWAP, 2, self_inverse=True),
    "toffoli": _fixed("toffoli", TOFFOLI, 3, self_inverse=True),
    "rx": _rotation("rx", rx, PAULI_X, 1, "two_term"),
    "ry": _rotation("ry", ry, PAULI_Y, 1, "two_term"),
    "rz": _rotation("rz", rz, PAULI_Z, 1, "two_term"),
    "crx": _rotation("crx", crx, _controlled_generator(PAULI_X), 2, "four_term"),
    "cry": _rotation("cry", cry, _controlled_generator(PAULI_Y), 2, "four_term"),
    "crz": _rotation("crz", crz, _controlled_generator(PAULI_Z), 2, "four_term"),
}


def get_gate_spec(name):
    """Look up a :class:`GateSpec` by (case-insensitive) name."""
    try:
        return GATE_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(GATE_REGISTRY))
        raise KeyError(f"unknown gate {name!r}; known gates: {known}") from None


def is_unitary(matrix, atol=1e-10):
    """Check whether ``matrix`` (or each matrix of a batch) is unitary."""
    matrix = np.asarray(matrix)
    dim = matrix.shape[-1]
    eye = np.eye(dim, dtype=np.complex128)
    product = matrix @ np.conjugate(np.swapaxes(matrix, -1, -2))
    return bool(np.all(np.abs(product - eye) < atol))
