"""Differentiation of variational quantum circuits.

Three interchangeable methods, all computing the same mathematical object —
the gradient of measured expectation values with respect to the circuit's
trainable weights *and* its encoded input features (the latter lets the
quantum layer participate in end-to-end classical backpropagation):

- **Adjoint differentiation** (`method="adjoint"`): a single forward pass
  plus one reverse sweep, exact, statevector only.  This is the default
  training path, equivalent to what PennyLane/torchquantum use on
  simulators.  Per-sample upstream gradients are folded into a batched
  *effective observable* so one reverse sweep serves the whole batch and
  every observable simultaneously.
- **Parameter-shift rule** (`method="parameter_shift"`): evaluates the
  circuit at shifted angles; hardware-compatible and valid on noisy /
  shot-based backends.  Pauli rotations use the two-term rule; controlled
  rotations use the four-term rule.
- **Finite differences** (`method="finite_diff"`): central differences,
  used as an independent cross-check in the test suite.

All methods return ``(input_grads, weight_grads)`` with shapes
``(B, n_inputs)`` and ``(n_weights,)`` given an upstream gradient of shape
``(B, n_observables)`` — i.e. they implement the vector-Jacobian product of
the map ``(inputs, weights) -> expectations``.  With *per-sample* weights
``(B, n_weights)`` (ensemble evaluation: each batch row runs its own weight
vector through the shared circuit structure) the weight gradient is returned
per-sample as ``(B, n_weights)`` instead of summed over the batch.
"""

from __future__ import annotations

import numpy as np

from repro.quantum import backend as _backend
from repro.quantum import gates as _gates
from repro.quantum import program as _program
from repro.quantum import statevector as _sv
from repro.quantum.backends import StatevectorBackend
from repro.quantum.observables import Hamiltonian, PauliString

__all__ = [
    "adjoint_backward",
    "parameter_shift_backward",
    "finite_difference_backward",
    "backward",
    "jacobians",
    "GRADIENT_METHODS",
]

# Four-term shift-rule coefficients for controlled rotations
# (generator eigenvalues {0, +-1}; see Anselmetti et al. 2021 / PennyLane).
_SQRT2 = np.sqrt(2.0)
_FOUR_TERM_C1 = (_SQRT2 + 1.0) / (4.0 * _SQRT2)
_FOUR_TERM_C2 = (_SQRT2 - 1.0) / (4.0 * _SQRT2)


def _flatten_observables(observables, upstream):
    """Expand Hamiltonian observables into per-Pauli effective coefficients.

    Returns ``(paulis, coefficients)`` where coefficients has shape
    ``(B, n_paulis)`` and already includes the upstream gradient.
    """
    upstream = np.asarray(upstream, dtype=np.float64)
    batch = upstream.shape[0]
    paulis = []
    columns = []
    for j, obs in enumerate(observables):
        u_j = upstream[:, j]
        if isinstance(obs, PauliString):
            paulis.append(obs)
            columns.append(u_j)
        elif isinstance(obs, Hamiltonian):
            for c, pauli in zip(np.atleast_1d(obs.coefficients.T), obs.paulis):
                paulis.append(pauli)
                columns.append(u_j * c)
        else:
            raise TypeError(f"unsupported observable type {type(obs).__name__}")
    coefficients = np.stack(columns, axis=1).reshape(batch, len(paulis))
    return paulis, coefficients


def _accumulate(op, grad_per_sample, input_grads, weight_grads):
    """Route one gate's per-sample angle gradient to its parameter source.

    ``weight_grads`` is ``(n_weights,)`` for batch-shared weights (the
    per-sample gradients sum over the batch) or ``(B, n_weights)`` for
    per-sample weights (each sample keeps its own row — used when a batch
    row belongs to a different ensemble member, e.g. one stacked update
    pass over every agent's actor).
    """
    ref = op.param
    scaled = grad_per_sample * ref.scale
    if ref.kind == "weight":
        if weight_grads.ndim == 2:
            weight_grads[:, ref.index] += scaled
        else:
            weight_grads[ref.index] += scaled.sum()
    elif ref.kind == "input":
        input_grads[:, ref.index] += scaled


def _weight_grad_buffer(circuit, weights, batch, xp=np):
    """Zeroed weight-gradient buffer, per-sample when ``weights`` is 2-D."""
    if not circuit.n_weights:
        return None
    if weights is not None and np.asarray(weights).ndim == 2:
        return xp.zeros((batch, circuit.n_weights))
    return xp.zeros(circuit.n_weights)


def _inverse_matrix(op, theta):
    """Matrix of the inverse of one operation."""
    spec = op.spec
    if spec.n_params == 1:
        return spec.matrix_fn(-np.asarray(theta))
    if spec.self_inverse:
        return spec.fixed_matrix
    return spec.fixed_matrix.conj().T


def adjoint_backward(circuit, observables, inputs, weights, upstream, array_backend=None):
    """Vector-Jacobian product via adjoint differentiation (exact, pure state).

    Args:
        circuit: The symbolic circuit.
        observables: List of PauliString / Hamiltonian observables.
        inputs: ``(B, n_inputs)`` features or ``None``.
        weights: ``(n_weights,)`` trainable angles shared across the batch,
            ``(B, n_weights)`` per-sample weights (ensemble evaluation — the
            returned weight gradient is then per-sample ``(B, n_weights)``),
            or ``None``.
        upstream: ``(B, n_observables)`` upstream gradient
            ``dL/d<O_j>`` per sample.
        array_backend: Array backend for the program-compiled sweep (name,
            instance, or ``None`` for the process default).  The whole
            reverse sweep — gradient accumulators included — stays on the
            device; results come back as host arrays at the end.

    Returns:
        ``(input_grads, weight_grads)``; ``input_grads`` is ``None`` when the
        circuit encodes no inputs.
    """
    backend = StatevectorBackend(array_backend=array_backend)
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs[None, :]
    upstream = np.asarray(upstream, dtype=np.float64)
    if upstream.ndim == 1:
        upstream = upstream[None, :]
    batch = upstream.shape[0]
    n = circuit.n_qubits

    # Forward pass to the final state.
    psi = backend.evolve(circuit, inputs, weights, batch_size=batch)
    if psi.shape[0] != batch:
        raise ValueError(
            f"upstream batch {batch} != evolved batch {psi.shape[0]}"
        )

    # Effective observable with per-sample coefficients: one reverse sweep
    # then serves every observable and every sample at once.
    paulis, coefficients = _flatten_observables(observables, upstream)
    effective = Hamiltonian(coefficients, paulis)
    bra = effective.apply(psi, n)
    ket = psi

    # Resolve all angles once (cheap) so the reverse sweep can invert gates.
    angles = [
        circuit.resolve_angle(op, inputs, weights) for op in circuit.operations
    ]

    if _program.program_enabled():
        # Program-compiled sweep: each gate's pre-planned inverse kernel is
        # applied to the stacked (2B, dim) bra/ket block in ONE call, and
        # generators run as compiled diagonal/gather kernels (Pauli
        # generators are never dense).  Same math, fewer passes.  Gradient
        # accumulators live on the program's array backend so the whole
        # sweep is device-resident; the final buffers cross to the host
        # exactly once.
        prog = _program.compile_program(circuit, backend._array_backend())
        xp = prog.array_backend
        input_grads = (
            xp.zeros((batch, circuit.n_inputs)) if circuit.n_inputs else None
        )
        weight_grads = _weight_grad_buffer(circuit, weights, batch, xp)
        stacked = xp.concatenate([bra, ket], axis=0)
        for i in range(len(circuit.operations) - 1, -1, -1):
            op = circuit.operations[i]
            theta = angles[i]
            if op.is_trainable or op.is_input:
                # d<H>/dtheta = Im(<bra| G |ket>), ket = psi_i (pre-inverse).
                g_ket = prog.apply_generator(i, stacked[batch:])
                grad = xp.imag(_sv.inner_products(stacked[:batch], g_ket))
                _accumulate(op, grad, input_grads, weight_grads)
            if theta is not None and np.ndim(theta) == 1:
                theta = np.concatenate([theta, theta])
            stacked = prog.apply_inverse(i, stacked, theta)
        if input_grads is not None:
            input_grads = xp.to_host(input_grads)
        if weight_grads is not None:
            weight_grads = xp.to_host(weight_grads)
        return input_grads, weight_grads

    input_grads = (
        np.zeros((batch, circuit.n_inputs)) if circuit.n_inputs else None
    )
    weight_grads = _weight_grad_buffer(circuit, weights, batch)

    for op, theta in zip(reversed(circuit.operations), reversed(angles)):
        needs_grad = op.is_trainable or op.is_input
        if needs_grad:
            # d<H>/dtheta = Im(<bra| G |ket>) with ket = psi_k (pre-inverse).
            g_ket = _sv.apply_matrix(ket, op.spec.generator, op.wires, n)
            grad = np.imag(_sv.inner_products(bra, g_ket))
            _accumulate(op, grad, input_grads, weight_grads)
        inverse = _inverse_matrix(op, theta)
        ket = _sv.apply_matrix(ket, inverse, op.wires, n)
        bra = _sv.apply_matrix(bra, inverse, op.wires, n)

    return input_grads, weight_grads


class _ShiftExecutor:
    """Minimal state-stepping adapter over the two backends.

    Parameter-shift and finite differences only need "init, apply op,
    measure" primitives; this adapter provides them uniformly for pure and
    mixed states (including per-gate noise on the density backend).
    """

    def __init__(self, backend):
        self.backend = backend
        self._is_density = getattr(backend, "name", "") == "density_matrix"

    def initial_state(self, n_qubits, batch):
        if self._is_density:
            from repro.quantum import density as _dm

            return _dm.zero_density(n_qubits, batch)
        return _sv.zero_state(n_qubits, batch)

    def apply_operation(self, state, op, theta, n_qubits):
        if self._is_density:
            from repro.quantum import density as _dm

            state = _dm.apply_gate(state, op.gate, op.wires, n_qubits, theta)
            for channel, wire in self.backend.noise_model.channels_after(op):
                state = _dm.apply_channel(state, channel, (wire,), n_qubits)
            return state
        return _sv.apply_gate(state, op.gate, op.wires, n_qubits, theta)

    def measure_state(self, state, observables, n_qubits):
        return self.backend.measure(state, observables, n_qubits)


def _shifted_expectations(executor, circuit, observables, inputs, weights, op_index, delta):
    from repro.quantum.backends import _normalise_run_args

    inputs_arr, batch = _normalise_run_args(circuit, inputs, None)
    n = circuit.n_qubits
    state = executor.initial_state(n, batch)
    for i, op in enumerate(circuit.operations):
        theta = circuit.resolve_angle(op, inputs_arr, weights)
        if i == op_index:
            theta = np.asarray(theta) + delta
        state = executor.apply_operation(state, op, theta, n)
    return executor.measure_state(state, observables, n)


def _per_gate_angle_grad(executor, circuit, observables, inputs, weights, op_index, rule):
    """d<O_j>/d(theta of one gate occurrence), shape (B, n_obs)."""
    expectation = lambda delta: _shifted_expectations(  # noqa: E731
        executor, circuit, observables, inputs, weights, op_index, delta
    )
    if rule == "two_term":
        return 0.5 * (expectation(np.pi / 2) - expectation(-np.pi / 2))
    if rule == "four_term":
        near = expectation(np.pi / 2) - expectation(-np.pi / 2)
        far = expectation(3 * np.pi / 2) - expectation(-3 * np.pi / 2)
        return _FOUR_TERM_C1 * near - _FOUR_TERM_C2 * far
    raise ValueError(f"gate has no shift rule: {rule!r}")


def parameter_shift_backward(
    circuit, observables, inputs, weights, upstream, backend=None
):
    """Vector-Jacobian product via the parameter-shift rule.

    Works on any backend, including noisy density-matrix execution (the
    shift rule holds channel-wise) and shot-based estimation.
    """
    if backend is None:
        backend = StatevectorBackend()
    executor = _ShiftExecutor(backend)
    upstream = np.asarray(upstream, dtype=np.float64)
    if upstream.ndim == 1:
        upstream = upstream[None, :]
    batch = upstream.shape[0]

    input_grads = (
        np.zeros((batch, circuit.n_inputs)) if circuit.n_inputs else None
    )
    weight_grads = _weight_grad_buffer(circuit, weights, batch)

    for i, op in enumerate(circuit.operations):
        if not (op.is_trainable or op.is_input):
            continue
        rule = op.spec.shift_rule
        grad_obs = _per_gate_angle_grad(
            executor, circuit, observables, inputs, weights, i, rule
        )
        grad = np.sum(grad_obs * upstream, axis=1)
        _accumulate(op, grad, input_grads, weight_grads)

    return input_grads, weight_grads


def finite_difference_backward(
    circuit, observables, inputs, weights, upstream, backend=None, epsilon=1e-6
):
    """Vector-Jacobian product via central finite differences (testing aid)."""
    if backend is None:
        backend = StatevectorBackend()
    executor = _ShiftExecutor(backend)
    upstream = np.asarray(upstream, dtype=np.float64)
    if upstream.ndim == 1:
        upstream = upstream[None, :]
    batch = upstream.shape[0]

    input_grads = (
        np.zeros((batch, circuit.n_inputs)) if circuit.n_inputs else None
    )
    weight_grads = _weight_grad_buffer(circuit, weights, batch)

    for i, op in enumerate(circuit.operations):
        if not (op.is_trainable or op.is_input):
            continue
        plus = _shifted_expectations(
            executor, circuit, observables, inputs, weights, i, epsilon
        )
        minus = _shifted_expectations(
            executor, circuit, observables, inputs, weights, i, -epsilon
        )
        grad_obs = (plus - minus) / (2.0 * epsilon)
        grad = np.sum(grad_obs * upstream, axis=1)
        _accumulate(op, grad, input_grads, weight_grads)

    return input_grads, weight_grads


GRADIENT_METHODS = ("adjoint", "parameter_shift", "finite_diff")


def backward(
    circuit,
    observables,
    inputs,
    weights,
    upstream,
    method="adjoint",
    backend=None,
):
    """Dispatch to one of the gradient methods by name."""
    if method == "adjoint":
        if backend is not None and not getattr(backend, "supports_adjoint", False):
            raise ValueError(
                f"backend {backend!r} does not support adjoint differentiation; "
                "use method='parameter_shift'"
            )
        if backend is not None and backend.shots is not None:
            raise ValueError("adjoint differentiation requires exact expectations")
        return adjoint_backward(
            circuit,
            observables,
            inputs,
            weights,
            upstream,
            array_backend=getattr(backend, "array_backend", None),
        )
    if method == "parameter_shift":
        return parameter_shift_backward(
            circuit, observables, inputs, weights, upstream, backend
        )
    if method == "finite_diff":
        return finite_difference_backward(
            circuit, observables, inputs, weights, upstream, backend
        )
    raise ValueError(
        f"unknown gradient method {method!r}; choose from {GRADIENT_METHODS}"
    )


def jacobians(circuit, observables, inputs, weights, method="adjoint", backend=None):
    """Full Jacobians for testing: ``(d_inputs, d_weights)``.

    Shapes: ``d_inputs[b, j, i] = d<O_j>_b / d inputs[b, i]`` and
    ``d_weights[b, j, k] = d<O_j>_b / d weights[k]`` (per-sample weight
    Jacobian; the VJP sums over the batch).
    """
    n_obs = len(observables)
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        batch = inputs.shape[0]
    else:
        batch = 1

    d_inputs = (
        np.zeros((batch, n_obs, circuit.n_inputs)) if circuit.n_inputs else None
    )
    d_weights = np.zeros((batch, n_obs, circuit.n_weights))

    for b in range(batch):
        row = None if inputs is None else inputs[b : b + 1]
        for j in range(n_obs):
            upstream = np.zeros((1, n_obs))
            upstream[0, j] = 1.0
            gi, gw = backward(
                circuit, observables, row, weights, upstream, method, backend
            )
            if d_inputs is not None and gi is not None:
                d_inputs[b, j] = gi[0]
            if gw is not None:
                d_weights[b, j] = gw
    return d_inputs, d_weights
