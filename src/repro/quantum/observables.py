"""Measurement observables: Pauli strings and weighted sums of them.

The measurement step of a VQC (the ``M`` block of Fig. 1 in the paper)
computes expectation values ``<psi| O |psi>`` for a list of observables.
The quantum actor measures ``Z`` on every qubit to produce action logits;
the quantum critic measures ``Z`` on every qubit and aggregates them into a
scalar state value.

Observables also need to be *applied* to states (``O |psi>``) because the
adjoint differentiation pass seeds its backward-propagated "bra" state with
the observable applied to the final state.
"""

from __future__ import annotations

import numpy as np

from repro.quantum import backend as _backend
from repro.quantum import gates as _gates
from repro.quantum import program as _program
from repro.quantum import statevector as _sv

__all__ = ["PauliString", "Hamiltonian", "all_z_observables", "expectation"]

_PAULI_MATRICES = {
    "X": _gates.PAULI_X,
    "Y": _gates.PAULI_Y,
    "Z": _gates.PAULI_Z,
    "I": _gates.I2,
}


class PauliString:
    """A tensor product of single-qubit Paulis, e.g. ``Z0 X2``.

    Args:
        terms: Mapping or iterable of ``(wire, pauli)`` pairs where pauli is
            one of ``"X"``, ``"Y"``, ``"Z"``.  Identity wires are implicit.

    An empty term set represents the identity observable.
    """

    def __init__(self, terms=()):
        if isinstance(terms, dict):
            items = terms.items()
        else:
            items = list(terms)
        cleaned = {}
        for wire, pauli in items:
            pauli = pauli.upper()
            if pauli == "I":
                continue
            if pauli not in ("X", "Y", "Z"):
                raise ValueError(f"unknown Pauli {pauli!r}")
            wire = int(wire)
            if wire in cleaned:
                raise ValueError(f"duplicate wire {wire} in Pauli string")
            cleaned[wire] = pauli
        self.terms = dict(sorted(cleaned.items()))

    @classmethod
    def z(cls, wire):
        """Single ``Z`` on one wire — the workhorse observable of the paper."""
        return cls({wire: "Z"})

    @property
    def wires(self):
        """Sorted tuple of non-identity wires."""
        return tuple(self.terms)

    def is_identity(self):
        """True when this string has no non-identity factors."""
        return not self.terms

    @property
    def is_diagonal(self):
        """True when every factor is ``Z`` (or the string is the identity)."""
        return all(p == "Z" for p in self.terms.values())

    def z_signs(self, n_qubits):
        """Cached diagonal eigenvalues; only valid for diagonal strings."""
        return _sv.pauli_z_string_signs(n_qubits, self.wires)

    def apply(self, psi, n_qubits):
        """Return ``O |psi>`` for a batch of statevectors."""
        if self.terms and self.is_diagonal and _program.program_enabled():
            xp = _backend.array_namespace(psi)
            return psi * xp.device_constant(self.z_signs(n_qubits))
        out = psi
        for wire, pauli in self.terms.items():
            out = _sv.apply_matrix(out, _PAULI_MATRICES[pauli], (wire,), n_qubits)
        return out

    def expectation(self, psi, n_qubits):
        """``<psi|O|psi>`` per batch sample (real, shape ``(B,)``)."""
        if self.is_identity():
            return np.real(_sv.inner_products(psi, psi))
        if self.is_diagonal and _program.program_enabled():
            # <psi| diag(s) |psi> = sum_i s_i |psi_i|^2: one probability
            # pass and a matvec against the cached sign diagonal.
            xp = _backend.array_namespace(psi)
            return _sv.probabilities(psi) @ xp.device_constant(self.z_signs(n_qubits))
        applied = self.apply(psi, n_qubits)
        return np.real(_sv.inner_products(psi, applied))

    def matrix(self, n_qubits):
        """Dense ``(2**n, 2**n)`` matrix (for density-matrix simulation/tests)."""
        out = np.array([[1.0]], dtype=np.complex128)
        for wire in range(n_qubits):
            factor = _PAULI_MATRICES.get(self.terms.get(wire, "I"))
            out = np.kron(out, factor)
        return out

    def __eq__(self, other):
        return isinstance(other, PauliString) and self.terms == other.terms

    def __hash__(self):
        return hash(tuple(self.terms.items()))

    def __repr__(self):
        if self.is_identity():
            return "PauliString(I)"
        body = " ".join(f"{p}{w}" for w, p in self.terms.items())
        return f"PauliString({body})"


class Hamiltonian:
    """A real-weighted sum of Pauli strings ``sum_j c_j P_j``.

    Used both as a measurable observable and as the *effective observable*
    built during backpropagation through a quantum layer (where the upstream
    gradient supplies per-sample coefficients).
    """

    def __init__(self, coefficients, paulis):
        paulis = list(paulis)
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.ndim not in (1, 2):
            raise ValueError("coefficients must be (n_terms,) or (B, n_terms)")
        if coefficients.shape[-1] != len(paulis):
            raise ValueError(
                f"{coefficients.shape[-1]} coefficients for {len(paulis)} Paulis"
            )
        self.coefficients = coefficients
        self.paulis = paulis

    @property
    def batched(self):
        """True when coefficients vary per batch sample."""
        return self.coefficients.ndim == 2

    def apply(self, psi, n_qubits):
        """Return ``H |psi>`` per batch sample."""
        xp = _backend.array_namespace(psi)
        out = xp.zeros_like(psi)
        # Batched coefficients move to the device once for the whole sum;
        # unbatched ones stay host scalars (portable on every backend).
        coeffs = xp.asarray(self.coefficients) if self.batched else self.coefficients
        for j, pauli in enumerate(self.paulis):
            term = pauli.apply(psi, n_qubits)
            if self.batched:
                out += coeffs[:, j][:, None] * term
            else:
                out += coeffs[j] * term
        return out

    def expectation(self, psi, n_qubits):
        """``<psi|H|psi>`` per batch sample (real, shape ``(B,)``)."""
        applied = self.apply(psi, n_qubits)
        return np.real(_sv.inner_products(psi, applied))

    def matrix(self, n_qubits):
        """Dense matrix form; only valid for unbatched coefficients."""
        if self.batched:
            raise ValueError("batched Hamiltonian has no single matrix")
        dim = 2**n_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        for coeff, pauli in zip(self.coefficients, self.paulis):
            out += coeff * pauli.matrix(n_qubits)
        return out

    def __repr__(self):
        return f"Hamiltonian(n_terms={len(self.paulis)}, batched={self.batched})"


def all_z_observables(n_qubits):
    """``[Z_0, Z_1, ..., Z_{n-1}]`` — the measurement set used by the paper."""
    return [PauliString.z(w) for w in range(n_qubits)]


def expectation(psi, observables, n_qubits):
    """Stack expectations of several observables: shape ``(B, n_obs)``."""
    columns = [obs.expectation(psi, n_qubits) for obs in observables]
    return np.stack(columns, axis=1)
