"""Compiled circuit programs: fused, pre-planned gate kernels.

The interpreted simulator (:func:`repro.quantum.statevector.apply_gate`)
re-derives everything on every call: wire validation, gate-matrix
construction, a generic ``moveaxis``/``reshape``/``einsum`` application.
:func:`compile_program` resolves all of that **once** per circuit into a
:class:`CircuitProgram` — a flat list of pre-planned kernel applications
specialised by gate class:

- **diagonal** gates (``z``/``s``/``t``/``cz`` and parameterised
  ``rz``/``crz``) become a phase-vector elementwise multiply over the full
  state — no axis movement at all;
- **permutation / monomial** gates (``x``/``y``/``cnot``/``swap``/
  ``toffoli``) become a cached full-state index gather (plus a phase
  multiply when the single nonzero per row is not 1);
- **dense** 1–2 qubit gates keep the einsum contraction, but through a
  pre-planned reshape (no ``moveaxis`` copies) with the subscripts and view
  shapes resolved at compile time.

On top of the per-op plans the forward execution path *fuses*:

- runs of adjacent input-independent gates whose combined wire set stays
  within two qubits are pre-merged into single small unitaries (constant
  ones folded at compile time, weight-dependent ones cached by weight
  content — the in-circuit analogue of
  :class:`~repro.quantum.compile.CompiledCircuit`'s suffix folding);
- consecutive constant diagonal/monomial kernels are composed into one
  full-state gather (a CNOT ring collapses to a single index take).

Fusion never crosses an input-dependent operation, so per-sample encoding
angles always see exactly the gates the symbolic circuit specifies.

The per-op (unfused) plans double as the adjoint-differentiation kernels:
each op exposes a compiled **inverse** plan (for the reverse sweep, applied
to the stacked bra/ket array in one call) and a compiled **generator** plan
(Pauli generators are diagonal or monomial, so ``G |ket>`` is a multiply or
a gather instead of an einsum).

Everything here is numerically the same linear map as the interpreted
path — identical gate matrices, associatively regrouped — and is pinned
against it by the equivalence suite in ``tests/test_program.py``.

The kernels dispatch through the array-backend seam
(:mod:`repro.quantum.backend`): each program is compiled **against one**
:class:`~repro.quantum.backend.ArrayBackend` (numpy by default, cupy/torch
when requested, the transfer-counting mock in CI) and its constant data —
phase vectors, index tables, generator diagonals, fused unitaries — is
materialised on that backend's device once at compile time.  Per-call host
data (encoding angles, cos/sin vectors) is uploaded one-way; states never
leave the device inside a program.  On the numpy backend every seam op is
the numpy function itself and the materialisation is the identity, so the
default path runs the exact pre-seam calls bit for bit.
"""

from __future__ import annotations

import hashlib
import os
import weakref
from contextlib import contextmanager

import numpy as np

from repro import obs
from repro.quantum import backend as _backend
from repro.quantum import statevector as _sv

__all__ = [
    "CircuitProgram",
    "compile_program",
    "program_enabled",
    "set_program_enabled",
    "using_program",
    "weights_key",
]

# ---------------------------------------------------------------------------
# Global tier switch
# ---------------------------------------------------------------------------

_ENABLED = os.environ.get("REPRO_QUANTUM_PROGRAM", "1").lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def program_enabled():
    """Whether the program-compiled execution tier is globally enabled."""
    return _ENABLED


def set_program_enabled(enabled):
    """Toggle the program tier globally; returns the previous setting.

    The interpreted path is kept as the semantic reference — equivalence
    tests and the kernel benchmarks flip this switch to compare tiers.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def using_program(enabled):
    """Context manager scoping :func:`set_program_enabled`."""
    previous = set_program_enabled(enabled)
    try:
        yield
    finally:
        set_program_enabled(previous)


# ---------------------------------------------------------------------------
# Weight content keys (shared with CompiledCircuit's unitary cache)
# ---------------------------------------------------------------------------


def weights_key(weights):
    """Content key of a weight array (weights mutate in place under Adam).

    Includes the shape: a ``(1, n)`` per-sample weight matrix and an
    ``(n,)`` vector share bytes but compile to different kernels.
    """
    if weights is None:
        return "none"
    array = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
    digest = hashlib.blake2b(array.tobytes(), digest_size=16).hexdigest()
    return (array.shape, digest)


# ---------------------------------------------------------------------------
# Index algebra: embedding gate-space structure into the full register
# ---------------------------------------------------------------------------


def _sub_indices(indices, wires, n_qubits):
    """Gate-space sub-index of every full basis index (``wires[0]`` MSB)."""
    k = len(wires)
    sub = np.zeros_like(indices)
    for j, w in enumerate(wires):
        sub |= ((indices >> (n_qubits - 1 - w)) & 1) << (k - 1 - j)
    return sub


def _full_diagonal(diag, wires, n_qubits):
    """Spread a gate-space diagonal (length ``2**k``) over the full state."""
    indices = np.arange(2**n_qubits)
    return diag[_sub_indices(indices, wires, n_qubits)]


def _full_gather(source_sub, phase_sub, wires, n_qubits):
    """Lift a gate-space gather (per-row source + phase) to the full state."""
    indices = np.arange(2**n_qubits)
    k = len(wires)
    sub = _sub_indices(indices, wires, n_qubits)
    target = source_sub[sub]
    cleared = indices.copy()
    for w in wires:
        cleared &= ~(1 << (n_qubits - 1 - w))
    source = cleared
    for j, w in enumerate(wires):
        source = source | (((target >> (k - 1 - j)) & 1) << (n_qubits - 1 - w))
    phase = None if phase_sub is None else phase_sub[sub]
    return source, phase


def _kron(a, b):
    """Kronecker product supporting batched (``(B, d, d)``) factors."""
    a = np.asarray(a)
    b = np.asarray(b)
    out = np.einsum("...ij,...kl->...ikjl", a, b)
    da, db = a.shape[-1], b.shape[-1]
    return out.reshape(out.shape[:-4] + (da * db, da * db))


_BIT_SWAP_2Q = np.array([0, 2, 1, 3])


def _embed_matrix(matrix, op_wires, union):
    """Embed a 1–2 qubit gate matrix into the (sorted) fused wire space."""
    op_wires = tuple(op_wires)
    union = tuple(union)
    if op_wires == union:
        return matrix
    if len(op_wires) == 1:
        identity = np.eye(2, dtype=np.complex128)
        if op_wires[0] == union[0]:
            return _kron(matrix, identity)
        return _kron(identity, matrix)
    # Two-qubit gate listed in the opposite wire order: swap its index bits.
    return matrix[..., _BIT_SWAP_2Q, :][..., :, _BIT_SWAP_2Q]


# ---------------------------------------------------------------------------
# Dense kernel: pre-planned reshape/einsum (no moveaxis copies)
# ---------------------------------------------------------------------------


class _DensePlan:
    """Apply a dense 1–2 qubit matrix through a compile-time matmul plan.

    Two strategies, chosen once per (wires, n_qubits) by memory layout:

    - ``bmm`` — when the gate axes are contiguous in the state tensor and
      followed by a reasonably wide trailing block, ``matmul`` broadcasts
      the gate matrix straight onto the ``(..., d_gate, trailing)`` view:
      zero copies, BLAS-backed.
    - ``tmm`` — otherwise the gate axes are transposed to the end once,
      flattened, and contracted as ``t @ m.T``; the two transposes replace
      the interpreted path's ``moveaxis`` copies with a single
      cache-friendly one each way.
    """

    __slots__ = ("_bit_perm", "_strategy", "_view_shape", "_gate_dim",
                 "_fwd_axes", "_back_axes", "dim", "_xp")

    _BMM_MIN_TRAILING = 8

    def bind(self, xp):
        """Attach the array backend; uploads the bit-permutation table."""
        self._xp = xp
        if self._bit_perm is not None:
            self._bit_perm = xp.device_constant(_BIT_SWAP_2Q)

    def __init__(self, wires, n_qubits):
        self._xp = _backend.get_array_backend("numpy")
        wires = tuple(int(w) for w in wires)
        k = len(wires)
        if k not in (1, 2):
            raise ValueError(f"dense plans cover 1-2 wires, got {wires}")
        self.dim = 2**n_qubits
        ordered = tuple(sorted(wires))
        self._bit_perm = None if wires == ordered else _BIT_SWAP_2Q
        self._gate_dim = 2**k
        adjacent = k == 1 or ordered[1] == ordered[0] + 1
        if adjacent:
            left = 2 ** ordered[0]
            trailing = self.dim // (left * self._gate_dim)
            self._view_shape = (left, self._gate_dim, trailing)
            if trailing >= self._BMM_MIN_TRAILING:
                self._strategy = "bmm"
            else:
                self._strategy = "tmm"
                self._fwd_axes = (0, 1, 3, 2)
                self._back_axes = (0, 1, 3, 2)
        else:
            u, v = ordered
            self._strategy = "tmm"
            self._view_shape = (
                2**u, 2, 2 ** (v - u - 1), 2, 2 ** (n_qubits - 1 - v)
            )
            # (B, d1, j, d2, l, d3) -> (B, d1, d2, d3, j, l) and back.
            self._fwd_axes = (0, 1, 3, 5, 2, 4)
            self._back_axes = (0, 1, 4, 2, 5, 3)

    def apply(self, psi, matrix):
        xp = self._xp
        batch = psi.shape[0]
        if matrix.ndim == 3 and matrix.shape[0] != batch:
            raise ValueError(
                f"batched matrix has batch {matrix.shape[0]}, "
                f"state has {batch}"
            )
        if self._bit_perm is not None:
            matrix = matrix[..., self._bit_perm, :][..., :, self._bit_perm]
        view = psi.reshape((batch,) + self._view_shape)
        d = self._gate_dim
        if self._strategy == "bmm":
            operand = matrix if matrix.ndim == 2 else matrix[:, None]
            return xp.matmul(operand, view).reshape(batch, self.dim)
        moved = xp.transpose(view, self._fwd_axes)
        rest_shape = moved.shape
        flat = moved.reshape(batch, self.dim // d, d)
        out = xp.matmul(flat, xp.swapaxes(matrix, -1, -2))
        out = xp.transpose(out.reshape(rest_shape), self._back_axes)
        return out.reshape(batch, self.dim)


# ---------------------------------------------------------------------------
# Matrix classification
# ---------------------------------------------------------------------------


def _monomial_parts(matrix):
    """``(source, phase)`` when each row has at most one nonzero, else None.

    Rows that are entirely zero (Hermitian generators of controlled
    rotations have them) gather from column 0 with phase 0.
    """
    nonzero = matrix != 0
    per_row = nonzero.sum(axis=1)
    if np.any(per_row > 1):
        return None
    rows = np.arange(matrix.shape[0])
    source = np.where(per_row == 1, nonzero.argmax(axis=1), 0)
    phase = matrix[rows, source] * (per_row == 1)
    return source, phase


def _is_diagonal(matrix):
    return np.count_nonzero(matrix - np.diag(np.diag(matrix))) == 0


# Full-state exponent coefficients of the diagonal rotations:
# U = diag(exp(1j * theta * c_i)).
_PARAM_DIAG_COEFFS = {
    "rz": np.array([-0.5, 0.5]),
    "crz": np.array([0.0, 0.0, -0.5, 0.5]),
}


def _diag_phases(theta, unique_coeff, index_map, xp):
    """``exp(1j * theta * coeff)`` for scalar or per-sample ``theta``.

    The exponential runs over the few *unique* coefficients (2–3 for
    ``rz``/``crz``) and is spread over the full state by a precompiled
    index map — same per-element values, a fraction of the transcendental
    work.  The transcendentals run on the host (over 2–3 values per sample);
    only the tiny unique-phase table is uploaded, and the spread to the full
    state is a device-side gather over the materialised index map.
    """
    if np.ndim(theta) == 1:
        phases = np.exp(1j * np.asarray(theta)[:, None] * unique_coeff)
        return xp.take(xp.asarray(phases), index_map, axis=1)
    return xp.take(xp.asarray(np.exp(1j * theta * unique_coeff)), index_map, axis=0)


# ---------------------------------------------------------------------------
# Per-operation plans
# ---------------------------------------------------------------------------


def _resolve(resolver, inputs, weights):
    """Concrete angle(s) for one op — mirrors ``QuantumCircuit.resolve_angle``."""
    kind, index, scale = resolver
    if kind == "weight":
        if weights is None:
            raise ValueError("circuit references weights but none were given")
        if weights.ndim == 2:
            return weights[:, index] * scale
        return float(weights[index]) * scale
    if inputs is None:
        raise ValueError("circuit references inputs but none were given")
    return inputs[:, index] * scale


class _OpPlan:
    """One pre-planned gate application (forward, inverse and generator).

    ``kind`` is one of ``"diag"``/``"gather"``/``"dense"`` (constant
    matrices, fully resolved at compile time) or ``"pdiag"``/``"prot"``/
    ``"pdense"`` (parameterised by an input feature or trainable weight,
    resolved per call through ``resolver``).  ``"prot"`` covers rotations
    whose generator squares to the identity or to a diagonal projector
    (every registry rotation): ``exp(-i*theta/2*G)`` is then applied as
    broadcast arithmetic over the compiled generator kernel —
    ``cos(theta/2) psi - i sin(theta/2) G psi`` — with no per-sample gate
    matrices at all, which is what makes batched-angle application and the
    stacked adjoint sweep cheap.
    """

    __slots__ = (
        "ops", "wires", "kind", "resolver", "phase", "inv_phase", "source",
        "inv_source", "coeff", "matrix", "inv_matrix", "matrix_fn", "dense",
        "gen_kind", "gen_data", "proj", "n_qubits", "xp",
    )

    def __init__(self, ops, wires, kind, n_qubits):
        self.ops = tuple(ops)
        self.wires = tuple(wires)
        self.kind = kind
        self.n_qubits = n_qubits
        self.xp = _backend.get_array_backend("numpy")
        self.resolver = None
        self.phase = self.inv_phase = None
        self.source = self.inv_source = None
        self.coeff = None
        self.matrix = self.inv_matrix = None
        self.matrix_fn = None
        self.dense = None
        self.gen_kind = self.gen_data = None
        self.proj = None

    @property
    def is_identity(self):
        """True for a no-op plan (identity gates, cancelled fusions)."""
        return self.kind == "diag" and self.phase is None

    # -- forward --------------------------------------------------------------

    def apply_forward(self, psi, theta=None, out=None):
        """Forward kernel; ``out`` is an optional scratch target for the
        diag/gather/pdiag kinds (never aliased with ``psi`` by the caller).
        Gather-with-phase multiplies in place on the freshly gathered rows,
        so even without scratch it allocates once instead of twice.
        """
        kind = self.kind
        xp = self.xp
        if kind == "diag":
            if self.phase is None:
                return psi
            if out is not None:
                return xp.multiply(psi, self.phase, out=out)
            return psi * self.phase
        if kind == "gather":
            if out is not None:
                # mode="clip" never clips (source is a compile-time
                # permutation) but skips the bounds-checked buffered path
                # numpy falls into when ``out`` is combined with "raise".
                taken = xp.take(psi, self.source, axis=1, out=out, mode="clip")
            else:
                taken = psi[:, self.source]
            if self.phase is None:
                return taken
            return xp.multiply(taken, self.phase, out=taken)
        if kind == "pdiag":
            unique_coeff, index_map = self.coeff
            phases = _diag_phases(theta, unique_coeff, index_map, xp)
            if phases.ndim == 2:
                # The per-sample phase table is freshly built this call —
                # multiplying into it saves the product allocation.
                return xp.multiply(psi, phases, out=phases)
            if out is not None:
                return xp.multiply(psi, phases, out=out)
            return psi * phases
        if kind == "prot":
            return self._apply_rotation(psi, theta, 1.0)
        if kind == "pdense":
            return self._apply_dense(psi, self.matrix_fn(theta))
        return self._apply_dense(psi, self.matrix)

    # -- adjoint kernels ------------------------------------------------------

    def apply_inverse(self, psi, theta=None):
        kind = self.kind
        xp = self.xp
        if kind == "diag":
            return psi if self.inv_phase is None else psi * self.inv_phase
        if kind == "gather":
            taken = psi[:, self.inv_source]
            if self.inv_phase is None:
                return taken
            return xp.multiply(taken, self.inv_phase, out=taken)
        if kind == "pdiag":
            unique_coeff, index_map = self.coeff
            phases = _diag_phases(-np.asarray(theta), unique_coeff, index_map, xp)
            if phases.ndim == 2:
                return xp.multiply(psi, phases, out=phases)
            return psi * phases
        if kind == "prot":
            return self._apply_rotation(psi, theta, -1.0)
        if kind == "pdense":
            return self._apply_dense(psi, self.matrix_fn(-np.asarray(theta)))
        return self._apply_dense(psi, self.inv_matrix)

    def apply_generator(self, psi):
        if self.gen_kind == "diag":
            return psi * self.gen_data
        if self.gen_kind == "gather":
            source, phase = self.gen_data
            taken = psi[:, source]
            if phase is None:
                return taken
            return self.xp.multiply(taken, phase, out=taken)
        return _sv.apply_matrix(psi, self.gen_data, self.wires, self.n_qubits)

    def _apply_rotation(self, psi, theta, sign):
        """``exp(-i*sign*theta/2*G) |psi>`` through the generator kernel."""
        half = 0.5 * np.asarray(theta)
        cos = np.cos(half)
        sin = np.sin(half) if sign > 0 else -np.sin(half)
        if cos.ndim == 1:
            # Per-sample angles: the cos/sin vectors are per-call host data —
            # upload them one-way (identity on numpy).
            cos = self.xp.asarray(cos[:, None])
            sin = self.xp.asarray(sin[:, None])
        g_psi = self.apply_generator(psi)
        if self.proj is None:
            return cos * psi + (-1j * sin) * g_psi
        # G^2 = P (diagonal projector): rotate only the projected subspace.
        return psi * (1.0 + (cos - 1.0) * self.proj) + (-1j * sin) * g_psi

    def _apply_dense(self, psi, matrix):
        if self.dense is not None:
            return self.dense.apply(psi, self.xp.asarray(matrix))
        return _sv.apply_matrix(psi, matrix, self.wires, self.n_qubits)


def _materialize_plan(plan, xp):
    """Move one plan's compile-time constants onto the backend's device.

    Runs once per (program, backend) right after compilation.  On the numpy
    backend ``device_constant`` is the identity, so this is free and the
    plan keeps the exact arrays the compiler built.  The unique-coefficient
    half of a ``pdiag`` plan stays on the host — the per-call transcendental
    runs there (see :func:`_diag_phases`); only its index map is resident.
    """
    plan.xp = xp
    constant = xp.device_constant
    if plan.phase is not None:
        plan.phase = constant(plan.phase)
    if plan.inv_phase is not None:
        plan.inv_phase = constant(plan.inv_phase)
    if plan.source is not None:
        plan.source = constant(plan.source)
    if plan.inv_source is not None:
        plan.inv_source = constant(plan.inv_source)
    if plan.proj is not None:
        plan.proj = constant(plan.proj)
    if plan.coeff is not None:
        unique_coeff, index_map = plan.coeff
        plan.coeff = (unique_coeff, constant(index_map))
    if plan.matrix is not None:
        plan.matrix = constant(plan.matrix)
    if plan.inv_matrix is not None:
        plan.inv_matrix = constant(plan.inv_matrix)
    if plan.gen_kind == "diag":
        plan.gen_data = constant(plan.gen_data)
    elif plan.gen_kind == "gather":
        source, phase = plan.gen_data
        plan.gen_data = (
            constant(source), None if phase is None else constant(phase)
        )
    # Dense generators stay host-side: they run through the apply_matrix
    # reference fallback, which follows the state's namespace.
    if plan.dense is not None:
        plan.dense.bind(xp)


def _fixed_plan(ops, matrix, wires, n_qubits):
    """Classify a constant matrix into a diag / gather / dense plan."""
    if _is_diagonal(matrix):
        plan = _OpPlan(ops, wires, "diag", n_qubits)
        phase = _full_diagonal(np.diag(matrix).copy(), wires, n_qubits)
        if np.all(phase == 1.0):
            return plan  # identity: phase stays None
        plan.phase = phase
        plan.inv_phase = phase.conj()
        return plan
    parts = _monomial_parts(matrix)
    if parts is not None and np.all((matrix != 0).sum(axis=0) == 1):
        source_sub, phase_sub = parts
        if np.all(phase_sub == 1.0):
            phase_sub = None
        plan = _OpPlan(ops, wires, "gather", n_qubits)
        plan.source, plan.phase = _full_gather(
            source_sub, phase_sub, wires, n_qubits
        )
        plan.inv_source = np.empty_like(plan.source)
        plan.inv_source[plan.source] = np.arange(plan.source.shape[0])
        if plan.phase is None:
            plan.inv_phase = None
        else:
            plan.inv_phase = np.empty_like(plan.phase)
            plan.inv_phase[plan.source] = plan.phase.conj()
        return plan
    plan = _OpPlan(ops, wires, "dense", n_qubits)
    plan.matrix = matrix
    plan.inv_matrix = matrix.conj().T
    if len(wires) <= 2:
        plan.dense = _DensePlan(wires, n_qubits)
    return plan


def _generator_plan(plan, generator, wires, n_qubits):
    """Attach the compiled ``G |psi>`` kernel for adjoint gradients."""
    if _is_diagonal(generator):
        plan.gen_kind = "diag"
        plan.gen_data = _full_diagonal(np.diag(generator).copy(), wires, n_qubits)
        return
    parts = _monomial_parts(generator)
    if parts is not None:
        source_sub, phase_sub = parts
        if np.all(phase_sub == 1.0):
            phase_sub = None
        plan.gen_kind = "gather"
        plan.gen_data = _full_gather(source_sub, phase_sub, wires, n_qubits)
        return
    plan.gen_kind = "dense"
    plan.gen_data = generator


def _rotation_projector(spec, wires, n_qubits):
    """Full-state ``G^2`` diagonal when the generator-rotation form applies.

    Returns ``(ok, proj)``: ``proj`` is ``None`` for involutory generators
    (``G^2 = I``), a full-state 0/1 diagonal for projector generators
    (controlled rotations), and ``ok`` is False when the gate is not of the
    form ``exp(-i*theta/2*G)`` over that structure (verified numerically at
    compile time against ``matrix_fn``).
    """
    generator = spec.generator
    g_squared = generator @ generator
    dim = generator.shape[0]
    eye = np.eye(dim)
    if np.allclose(g_squared, eye, atol=1e-12):
        projector = eye
        proj = None
    elif _is_diagonal(g_squared) and np.all(
        np.isin(np.round(np.diag(g_squared).real, 12), (0.0, 1.0))
    ):
        projector = np.diag(np.diag(g_squared))
        proj = _full_diagonal(np.diag(g_squared).real.copy(), wires, n_qubits)
    else:
        return False, None
    check = 0.737
    reconstructed = (
        eye
        - projector
        + np.cos(check / 2) * projector
        - 1j * np.sin(check / 2) * generator
    )
    if not np.allclose(spec.matrix_fn(check), reconstructed, atol=1e-12):
        return False, None
    return True, proj


def _compile_op(op, n_qubits):
    """Compile one circuit operation into its kernel plan."""
    spec = op.spec
    ref = op.param
    if spec.n_params == 0:
        return _fixed_plan((op,), spec.fixed_matrix, op.wires, n_qubits)
    if ref.kind == "fixed":
        matrix = spec.matrix_fn(ref.value * ref.scale)
        return _fixed_plan((op,), matrix, op.wires, n_qubits)
    resolver = (ref.kind, ref.index, ref.scale)
    coeff = _PARAM_DIAG_COEFFS.get(spec.name)
    if coeff is not None:
        plan = _OpPlan((op,), op.wires, "pdiag", n_qubits)
        full = _full_diagonal(coeff, op.wires, n_qubits)
        unique_coeff, index_map = np.unique(full, return_inverse=True)
        plan.coeff = (unique_coeff, index_map)
        plan.resolver = resolver
        _generator_plan(plan, spec.generator, op.wires, n_qubits)
        return plan
    is_rotation, proj = (
        _rotation_projector(spec, op.wires, n_qubits)
        if spec.generator is not None
        else (False, None)
    )
    if is_rotation:
        plan = _OpPlan((op,), op.wires, "prot", n_qubits)
        plan.proj = proj
    else:
        plan = _OpPlan((op,), op.wires, "pdense", n_qubits)
        if len(op.wires) <= 2:
            plan.dense = _DensePlan(op.wires, n_qubits)
    plan.matrix_fn = spec.matrix_fn
    plan.resolver = resolver
    _generator_plan(plan, spec.generator, op.wires, n_qubits)
    return plan


# ---------------------------------------------------------------------------
# Forward execution steps (fused)
# ---------------------------------------------------------------------------


class _PlanStep:
    """Forward step executing one (possibly fused-constant) op plan."""

    __slots__ = ("plan",)

    def __init__(self, plan):
        self.plan = plan

    @property
    def ops(self):
        return self.plan.ops

    @property
    def kind(self):
        return self.plan.kind

    def apply(self, psi, inputs, weights, key, out=None):
        plan = self.plan
        if plan.resolver is None:
            return plan.apply_forward(psi, out=out)
        return plan.apply_forward(
            psi, _resolve(plan.resolver, inputs, weights), out
        )


class _FusedWeightStep:
    """A run of adjacent weight/constant gates merged into one small unitary.

    The fused matrix is rebuilt only when the weight *content* changes
    (detected through the program-level weights key), so it stays cached
    across every rollout step between optimiser updates — the in-circuit
    counterpart of :class:`~repro.quantum.compile.CompiledCircuit`'s suffix
    unitary cache.  With 2-D per-sample weights, fusing would build a
    batched ``(B, d, d)`` matrix stack per weight change; the constituent
    per-op rotation kernels are cheaper there, so the step falls back to
    applying its ops individually.
    """

    __slots__ = ("ops", "wires", "kind", "_plan", "_parts", "_op_plans",
                 "_key", "_matrix", "_matrix_dev", "xp")

    def bind(self, xp):
        """Attach the array backend (constituent plans bind separately)."""
        self.xp = xp
        self._plan.bind(xp)

    def __init__(self, ops, wires, n_qubits, op_plans):
        self.ops = tuple(ops)
        self.wires = tuple(wires)
        self.kind = "fused"
        self._plan = _DensePlan(self.wires, n_qubits)
        self._op_plans = list(op_plans)
        self._parts = []
        for op in self.ops:
            spec = op.spec
            ref = op.param
            if spec.n_params == 0:
                matrix = _embed_matrix(spec.fixed_matrix, op.wires, self.wires)
                self._parts.append(("const", matrix))
            elif ref.kind == "fixed":
                matrix = _embed_matrix(
                    spec.matrix_fn(ref.value * ref.scale), op.wires, self.wires
                )
                self._parts.append(("const", matrix))
            else:
                self._parts.append(
                    ("weight", spec.matrix_fn, ref.index, ref.scale, op.wires)
                )
        self._key = object()  # sentinel: never equal to a content key
        self._matrix = None
        self._matrix_dev = None
        self.xp = _backend.get_array_backend("numpy")

    def matrix(self, weights, key):
        """Fused unitary for a 1-D weight vector (2-D goes through apply).

        Built on the host per weight-content change and uploaded once per
        build — on the numpy backend the "device" copy *is* the host matrix.
        """
        if key == self._key:
            if obs.enabled():
                obs.counter("program.fused_hit").inc()
            return self._matrix_dev
        if obs.enabled():
            obs.counter("program.fused_build").inc()
        total = None
        for part in self._parts:
            if part[0] == "const":
                matrix = part[1]
            else:
                _, matrix_fn, index, scale, op_wires = part
                theta = float(weights[index]) * scale
                matrix = _embed_matrix(matrix_fn(theta), op_wires, self.wires)
            total = matrix if total is None else matrix @ total
        self._key = key
        self._matrix = total
        self._matrix_dev = self.xp.asarray(total)
        return self._matrix_dev

    def apply(self, psi, inputs, weights, key, out=None):
        if weights is None:
            raise ValueError("circuit references weights but none were given")
        if weights.ndim == 2:
            # Per-sample weights: batched fused matrices cost more than the
            # constituent rotation kernels — run the ops individually.
            for plan in self._op_plans:
                if plan.resolver is None:
                    psi = plan.apply_forward(psi)
                else:
                    psi = plan.apply_forward(
                        psi, _resolve(plan.resolver, inputs, weights)
                    )
            return psi
        return self._plan.apply(psi, self.matrix(weights, key))


def _compose_monomial(first, second, n_qubits):
    """Merge two constant diag/gather plans (``first`` applied first)."""
    sa, pa = first.source, first.phase
    sb, pb = second.source, second.phase
    if sa is None and sb is None:
        source = None
    elif sb is None:
        source = sa
    elif sa is None:
        source = sb
    else:
        source = sa[sb]
    pa_moved = pa if (pa is None or sb is None) else pa[sb]
    if pa_moved is None:
        phase = pb
    elif pb is None:
        phase = pa_moved
    else:
        phase = pa_moved * pb
    if source is not None and np.array_equal(source, np.arange(source.shape[0])):
        source = None
    ops = first.ops + second.ops
    wires = tuple(sorted(set(first.wires) | set(second.wires)))
    if source is None:
        plan = _OpPlan(ops, wires, "diag", n_qubits)
        if phase is not None and not np.all(phase == 1.0):
            plan.phase = phase
            plan.inv_phase = phase.conj()
        return plan
    plan = _OpPlan(ops, wires, "gather", n_qubits)
    plan.source, plan.phase = source, phase
    plan.inv_source = np.empty_like(source)
    plan.inv_source[source] = np.arange(source.shape[0])
    if phase is None:
        plan.inv_phase = None
    else:
        plan.inv_phase = np.empty_like(phase)
        plan.inv_phase[source] = phase.conj()
    return plan


# ---------------------------------------------------------------------------
# The program
# ---------------------------------------------------------------------------


class CircuitProgram:
    """A circuit lowered to pre-planned, fused gate kernels.

    Args:
        n_qubits: Register width.
        operations: Ordered :class:`~repro.quantum.circuit.Operation` list
            (a whole circuit, or a slice of one — e.g.
            :class:`~repro.quantum.compile.CompiledCircuit`'s prefix).
        array_backend: Array backend (name, instance or ``None`` for the
            current default) the program's kernels run on.  Compile-time
            constants are materialised on it once, here.

    Two views of the same circuit are compiled:

    - :attr:`steps` — the fused forward plan used by :meth:`apply` /
      :meth:`evolve`;
    - :attr:`op_plans` — one un-fused plan per operation, exposing
      :meth:`apply_inverse` and :meth:`apply_generator` for the adjoint
      reverse sweep (which needs per-gate granularity).
    """

    # Scratch buffers are kept for at most this many distinct batch shapes.
    _SCRATCH_SHAPE_LIMIT = 8

    def __init__(self, n_qubits, operations, array_backend=None):
        self.n_qubits = int(n_qubits)
        self.dim = 2**self.n_qubits
        self.operations = tuple(operations)
        self.array_backend = _backend.get_array_backend(array_backend)
        self.op_plans = [_compile_op(op, self.n_qubits) for op in self.operations]
        self.steps = self._build_steps()
        self._materialize(self.array_backend)
        # Frozen at compile time so the telemetry publish in apply() is a
        # tuple walk, not a per-call histogram rebuild.
        self._kind_counts = tuple(sorted(self.kernel_counts().items()))
        self._fused_weights = any(
            isinstance(step, _FusedWeightStep) for step in self.steps
        )
        self._has_weight_ops = any(op.is_trainable for op in self.operations)
        # Per-program ping-pong scratch (numpy path): forward diag/gather/
        # pdiag steps write into preallocated buffers instead of allocating a
        # fresh state per step.  The final step always allocates, so returned
        # states never alias program-owned scratch.
        self._scratch = {}
        self._use_scratch = (
            self.array_backend.supports_scratch and len(self.steps) > 1
        )

    def _materialize(self, xp):
        """Upload every plan's constants to ``xp``'s device (once)."""
        seen = set()

        def visit(plan):
            if id(plan) in seen:
                return
            seen.add(id(plan))
            _materialize_plan(plan, xp)

        for plan in self.op_plans:
            visit(plan)
        for step in self.steps:
            if isinstance(step, _FusedWeightStep):
                step.bind(xp)
            else:
                visit(step.plan)

    # -- compilation ----------------------------------------------------------

    def _build_steps(self):
        steps = []
        group = []  # (op, plan) pairs of the pending fusion run
        group_wires = set()

        def flush():
            if not group:
                return
            if len(group) == 1:
                steps.append(_PlanStep(group[0][1]))
            else:
                ops = [op for op, _ in group]
                union = tuple(sorted(group_wires))
                if any(op.is_trainable for op in ops):
                    steps.append(
                        _FusedWeightStep(
                            ops, union, self.n_qubits,
                            [plan for _, plan in group],
                        )
                    )
                else:
                    total = None
                    for op in ops:
                        spec = op.spec
                        if spec.n_params == 0:
                            matrix = spec.fixed_matrix
                        else:
                            ref = op.param
                            matrix = spec.matrix_fn(ref.value * ref.scale)
                        matrix = _embed_matrix(matrix, op.wires, union)
                        total = matrix if total is None else matrix @ total
                    steps.append(
                        _PlanStep(_fixed_plan(ops, total, union, self.n_qubits))
                    )
            group.clear()
            group_wires.clear()

        for op, plan in zip(self.operations, self.op_plans):
            fusable = not op.is_input and len(op.wires) <= 2
            if fusable and len(group_wires | set(op.wires)) <= 2:
                group.append((op, plan))
                group_wires.update(op.wires)
                continue
            flush()
            if fusable:
                group.append((op, plan))
                group_wires.update(op.wires)
            else:
                steps.append(_PlanStep(plan))
        flush()

        # Compose consecutive constant diagonal/monomial kernels into one
        # full-state gather — wire overlap is irrelevant at this level.
        merged = []
        for step in steps:
            if (
                merged
                and isinstance(step, _PlanStep)
                and isinstance(merged[-1], _PlanStep)
                and step.plan.resolver is None
                and merged[-1].plan.resolver is None
                and step.plan.kind in ("diag", "gather")
                and merged[-1].plan.kind in ("diag", "gather")
            ):
                merged[-1] = _PlanStep(
                    _compose_monomial(merged[-1].plan, step.plan, self.n_qubits)
                )
                continue
            merged.append(step)
        return [
            step
            for step in merged
            if not (isinstance(step, _PlanStep) and step.plan.is_identity)
        ]

    # -- execution ------------------------------------------------------------

    def zero_state(self, batch_size=1):
        """``|0...0>`` on this program's device, shape ``(B, 2**n)``."""
        psi = self.array_backend.zeros(
            (batch_size, self.dim), np.complex128
        )
        psi[:, 0] = 1.0
        return psi

    def _scratch_pair(self, shape):
        pair = self._scratch.get(shape)
        if pair is None:
            if len(self._scratch) >= self._SCRATCH_SHAPE_LIMIT:
                self._scratch.clear()
            xp = self.array_backend
            pair = (
                xp.empty(shape, np.complex128),
                xp.empty(shape, np.complex128),
            )
            self._scratch[shape] = pair
        return pair

    def apply(self, psi, inputs=None, weights=None):
        """Run the program on an existing state batch ``(B, 2**n)``."""
        if inputs is not None:
            inputs = np.asarray(inputs, dtype=np.float64)
        weights_arr = None if weights is None else np.asarray(weights)
        if (
            self._has_weight_ops
            and weights_arr is not None
            and weights_arr.ndim == 2
            and weights_arr.shape[0] != psi.shape[0]
        ):
            # Same contract (and message) as the interpreted tier, which
            # rejects the mismatch inside apply_matrix — broadcasting a
            # short per-sample weight matrix would silently diverge.
            raise ValueError(
                f"batched matrix has batch {weights_arr.shape[0]}, "
                f"state has {psi.shape[0]}"
            )
        key = None
        if self._fused_weights and weights_arr is not None:
            key = weights_key(weights_arr)
        if obs.enabled():
            obs.counter("program.evals").inc()
            obs.counter("program.rows").inc(psi.shape[0])
            obs.counter("program.kernel_dispatches").inc(len(self.steps))
            for kind, count in self._kind_counts:
                obs.counter(f"program.kernels.{kind}").inc(count)
        steps = self.steps
        if self._use_scratch and psi.dtype == np.complex128:
            # Strict A/B alternation guarantees a step never writes the
            # buffer its input state may alias; the last step gets no
            # scratch so the returned state is always freshly owned.
            scratch = self._scratch_pair(psi.shape)
            last = len(steps) - 1
            for i, step in enumerate(steps):
                out = scratch[i & 1] if i != last else None
                psi = step.apply(psi, inputs, weights_arr, key, out)
            return psi
        for step in steps:
            psi = step.apply(psi, inputs, weights_arr, key)
        return psi

    def evolve(self, inputs=None, weights=None, batch_size=1):
        """Run the program from ``|0...0>``, returning ``(B, 2**n)``."""
        return self.apply(self.zero_state(batch_size), inputs, weights)

    # -- adjoint kernels ------------------------------------------------------

    def apply_inverse(self, index, psi, theta=None):
        """Apply the compiled inverse of operation ``index`` to ``psi``.

        ``psi`` may be any row-stacked state array — the adjoint sweep
        passes the concatenated ``(2B, dim)`` bra/ket block so each gate
        inversion is one kernel call (``theta`` must then be stacked to
        match when it is per-sample).
        """
        return self.op_plans[index].apply_inverse(psi, theta)

    def apply_generator(self, index, psi):
        """Apply operation ``index``'s generator to ``psi`` (``G |psi>``)."""
        return self.op_plans[index].apply_generator(psi)

    # -- introspection --------------------------------------------------------

    @property
    def n_steps(self):
        """Fused forward step count (``<= len(operations)``)."""
        return len(self.steps)

    def kernel_counts(self):
        """Histogram of forward kernel kinds, e.g. ``{"diag": 3, ...}``."""
        counts = {}
        for step in self.steps:
            counts[step.kind] = counts.get(step.kind, 0) + 1
        return counts

    def __repr__(self):
        return (
            f"CircuitProgram(n_qubits={self.n_qubits}, "
            f"ops={len(self.operations)}, steps={self.n_steps}, "
            f"kernels={self.kernel_counts()})"
        )


# ---------------------------------------------------------------------------
# Program cache
# ---------------------------------------------------------------------------

_PROGRAM_CACHE = {}
_CACHE_FALLBACK_LIMIT = 512


def compile_program(circuit, array_backend=None):
    """Compile (and cache) the program for a symbolic circuit.

    The cache is keyed on (circuit identity, array backend) and validated
    against the operation list, so appending to a circuit after running it
    triggers a clean recompile instead of stale kernels, and each backend
    gets its own device-materialised program.  Entries are evicted when the
    circuit is garbage collected.
    """
    xp = _backend.get_array_backend(array_backend)
    key = (id(circuit), id(xp))
    entry = _PROGRAM_CACHE.get(key)
    if entry is not None:
        snapshot, program, _ref = entry
        ops = circuit.operations
        if len(snapshot) == len(ops) and all(
            a is b for a, b in zip(snapshot, ops)
        ):
            if obs.enabled():
                obs.counter("program.cache_hit").inc()
            return program
    if obs.enabled():
        obs.counter("program.compile").inc()
    program = CircuitProgram(circuit.n_qubits, circuit.operations, xp)
    try:
        ref = weakref.ref(circuit, lambda _r, _k=key: _PROGRAM_CACHE.pop(_k, None))
    except TypeError:
        ref = None
        if len(_PROGRAM_CACHE) >= _CACHE_FALLBACK_LIMIT:
            _PROGRAM_CACHE.clear()
    _PROGRAM_CACHE[key] = (tuple(circuit.operations), program, ref)
    return program
