"""Batched statevector simulation.

States are stored as ``(batch, 2**n_qubits)`` complex arrays with qubit 0 as
the most-significant bit of the basis index.  All gate applications are
vectorised over the batch axis, which is what makes training whole RL batches
through a VQC cheap: one numpy call applies a gate to every transition in the
batch simultaneously.  Gate matrices may themselves be batched (``(B, d, d)``)
so that *data-encoding* rotations can use a different angle per sample while
variational rotations share one angle across the batch.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.quantum import backend as _backend
from repro.quantum import gates as _gates

__all__ = [
    "zero_state",
    "basis_state",
    "apply_matrix",
    "apply_gate",
    "norms",
    "normalize",
    "probabilities",
    "marginal_probabilities",
    "sample_bitstrings",
    "expectation_pauli_z",
    "pauli_z_string_signs",
    "stacked_z_signs",
    "inner_products",
    "Statevector",
]


def zero_state(n_qubits, batch_size=1):
    """Return the ``|0...0>`` state, batched: shape ``(batch_size, 2**n)``."""
    if n_qubits < 1:
        raise ValueError("n_qubits must be >= 1")
    psi = np.zeros((batch_size, 2**n_qubits), dtype=np.complex128)
    psi[:, 0] = 1.0
    return psi


def basis_state(n_qubits, index, batch_size=1):
    """Return a computational basis state ``|index>``, batched."""
    dim = 2**n_qubits
    if not 0 <= index < dim:
        raise ValueError(f"basis index {index} out of range for {n_qubits} qubits")
    psi = np.zeros((batch_size, dim), dtype=np.complex128)
    psi[:, index] = 1.0
    return psi


def _check_wires(n_qubits, wires):
    if len(set(wires)) != len(wires):
        raise ValueError(f"duplicate wires in {wires}")
    for w in wires:
        if not 0 <= w < n_qubits:
            raise ValueError(f"wire {w} out of range for {n_qubits} qubits")


def apply_matrix(psi, matrix, wires, n_qubits):
    """Apply an arbitrary ``(d, d)`` or ``(B, d, d)`` matrix to ``wires``.

    The matrix need not be unitary (adjoint differentiation applies gate
    generators through this same code path).  Returns a new array; ``psi``
    is not modified.

    Args:
        psi: State batch of shape ``(B, 2**n_qubits)``.
        matrix: ``(d, d)`` shared across the batch or ``(B, d, d)``
            per-sample, with ``d == 2**len(wires)``.
        wires: Qubit indices the matrix acts on, in matrix bit order
            (``wires[0]`` is the most-significant bit of the matrix index).
        n_qubits: Total qubit count of ``psi``.
    """
    wires = tuple(int(w) for w in wires)
    _check_wires(n_qubits, wires)
    k = len(wires)
    dim_gate = 2**k
    xp = _backend.array_namespace(psi)
    if not isinstance(psi, np.ndarray):
        # Non-numpy-compatible device arrays (torch/cupy): reference
        # fallback via an explicit host round-trip.  The program tier's
        # compiled kernels never take this path for registry gates.
        host = apply_matrix(xp.to_host(psi), matrix, wires, n_qubits)
        return xp.asarray(host)
    matrix = xp.asarray(matrix, dtype=np.complex128)
    if matrix.shape[-2:] != (dim_gate, dim_gate):
        raise ValueError(
            f"matrix shape {matrix.shape} incompatible with wires {wires}"
        )
    batch = psi.shape[0]

    # View the state as (B, 2, 2, ..., 2) and move the target axes to the end.
    tensor = psi.reshape((batch,) + (2,) * n_qubits)
    axes = tuple(w + 1 for w in wires)
    tensor = np.moveaxis(tensor, axes, tuple(range(1, k + 1)))
    moved_shape = tensor.shape
    tensor = tensor.reshape(batch, dim_gate, -1)

    if matrix.ndim == 2:
        out = np.einsum("ij,bjr->bir", matrix, tensor)
    elif matrix.ndim == 3:
        if matrix.shape[0] != batch:
            raise ValueError(
                f"batched matrix has batch {matrix.shape[0]}, state has {batch}"
            )
        out = np.einsum("bij,bjr->bir", matrix, tensor)
    else:
        raise ValueError(f"matrix must be 2-D or 3-D, got shape {matrix.shape}")

    out = out.reshape(moved_shape)
    out = np.moveaxis(out, tuple(range(1, k + 1)), axes)
    return out.reshape(batch, 2**n_qubits)


def apply_gate(psi, name, wires, n_qubits, theta=None):
    """Apply a registered gate by name (see :data:`~repro.quantum.gates.GATE_REGISTRY`)."""
    spec = _gates.get_gate_spec(name)
    if len(wires) != spec.n_qubits:
        raise ValueError(
            f"gate {name!r} acts on {spec.n_qubits} wires, got {len(wires)}"
        )
    matrix = spec.matrix(theta) if spec.n_params else spec.matrix()
    return apply_matrix(psi, matrix, wires, n_qubits)


def norms(psi):
    """Per-sample 2-norms, shape ``(B,)``."""
    return np.sqrt(np.sum(np.abs(psi) ** 2, axis=-1))


def normalize(psi):
    """Return ``psi`` with each batch sample normalised to unit norm."""
    n = norms(psi)
    if np.any(n == 0):
        raise ValueError("cannot normalise a zero state")
    return psi / n[:, None]


# Per-shape scratch for the imag**2 temporary in probabilities().  The
# returned probability array is always freshly allocated (callers keep it);
# only the intermediate square is recycled.  Keyed by shape, bounded.
_PROB_SCRATCH = {}
_PROB_SCRATCH_LIMIT = 8


def probabilities(psi):
    """Measurement probabilities in the computational basis, ``(B, 2**n)``.

    Computed as ``real**2 + imag**2`` — same quantity as ``abs(psi)**2``
    without the intermediate square root, and this runs once per measured
    observable in every rollout step.  On the host path the ``imag**2``
    temporary is computed into a per-shape scratch buffer so each call
    allocates exactly one array (the result) instead of three.
    """
    re = psi.real
    im = psi.imag
    if type(psi) is np.ndarray:
        out = np.multiply(re, re)
        if len(_PROB_SCRATCH) >= _PROB_SCRATCH_LIMIT and psi.shape not in _PROB_SCRATCH:
            _PROB_SCRATCH.clear()
        tmp = _PROB_SCRATCH.get(psi.shape)
        if tmp is None:
            tmp = _PROB_SCRATCH[psi.shape] = np.empty(psi.shape, dtype=np.float64)
        np.multiply(im, im, out=tmp)
        out += tmp
        return out
    return re * re + im * im


def marginal_probabilities(psi, wires, n_qubits):
    """Marginal probabilities over a subset of wires, ``(B, 2**len(wires))``.

    ``wires[0]`` is the most-significant bit of the marginal outcome index.
    """
    wires = tuple(int(w) for w in wires)
    _check_wires(n_qubits, wires)
    batch = psi.shape[0]
    probs = probabilities(psi).reshape((batch,) + (2,) * n_qubits)
    keep = tuple(w + 1 for w in wires)
    drop = tuple(ax for ax in range(1, n_qubits + 1) if ax not in keep)
    probs = probs.sum(axis=drop, keepdims=True) if drop else probs
    probs = np.moveaxis(probs, keep, tuple(range(1, len(keep) + 1)))
    return probs.reshape(batch, 2 ** len(wires))


def batched_inverse_cdf_sample(probs, shots, rng):
    """One batched categorical draw per probability row: ``(B, shots)``.

    Inverse-CDF sampling (``cumsum`` + right-bisection) consuming the
    generator exactly like ``B`` successive ``rng.choice(dim, size=shots,
    p=probs[b])`` calls: ``choice`` draws ``shots`` uniforms and inverts the
    normalised cumsum, so drawing the whole ``(B, shots)`` uniform block
    row-major reproduces the serial per-sample stream bit-for-bit while
    replacing ``B`` python-level ``choice`` calls with array kernels.

    ``probs`` must be non-negative; rows are renormalised by their own sum
    (mirroring ``choice``'s internal normalisation).
    """
    probs = np.asarray(probs, dtype=np.float64)
    batch, dim = probs.shape
    cdf = np.cumsum(probs, axis=1)
    cdf /= cdf[:, -1:]
    draws = rng.random((batch, shots))
    if batch * dim * shots <= 1 << 22:
        # searchsorted(cdf, v, side="right") == count of cdf entries <= v.
        return (cdf[:, :, None] <= draws[:, None, :]).sum(axis=1, dtype=np.int64)
    out = np.empty((batch, shots), dtype=np.int64)
    for b in range(batch):
        out[b] = np.searchsorted(cdf[b], draws[b], side="right")
    return out


def sample_bitstrings(psi, shots, rng):
    """Sample measurement outcomes for each batch sample.

    Returns an integer array of shape ``(B, shots)`` of basis-state indices.
    """
    if shots < 1:
        raise ValueError("shots must be >= 1")
    # Shot sampling uses the host RNG: device states cross the boundary
    # here, explicitly, once per sampling call.
    psi = _backend.to_host(psi)
    probs = probabilities(psi)
    # Guard against tiny negative round-off and renormalise.
    probs = np.clip(probs, 0.0, None)
    probs /= probs.sum(axis=1, keepdims=True)
    return batched_inverse_cdf_sample(probs, shots, rng)


@functools.lru_cache(maxsize=None)
def _z_signs(n_qubits, wire):
    """Eigenvalue signs (+1/-1) of Pauli-Z on ``wire`` per basis state.

    Cached (and frozen read-only): this diagonal is consulted per measured
    observable in every rollout step.
    """
    indices = np.arange(2**n_qubits)
    bit = (indices >> (n_qubits - 1 - wire)) & 1
    signs = 1.0 - 2.0 * bit
    signs.flags.writeable = False
    return signs


@functools.lru_cache(maxsize=None)
def pauli_z_string_signs(n_qubits, wires):
    """Diagonal eigenvalues of ``prod_{w in wires} Z_w``, cached per key.

    ``wires`` must be a (hashable) tuple.  An empty tuple yields the
    identity diagonal.  The returned array is read-only — it is shared by
    every caller with the same ``(n_qubits, wires)`` key.
    """
    signs = np.ones(2**n_qubits)
    for wire in wires:
        signs = signs * _z_signs(n_qubits, int(wire))
    signs.flags.writeable = False
    return signs


@functools.lru_cache(maxsize=None)
def stacked_z_signs(n_qubits, wire_sets):
    """Column-stacked Z-string diagonals, shape ``(2**n, len(wire_sets))``.

    One cached ``probs @ signs`` operand per group of diagonal observables
    measured together — built once per ``(n_qubits, wire_sets)`` key instead
    of re-stacking the per-observable diagonals on every measure call.
    Read-only, like the per-string diagonals it stacks.
    """
    signs = np.stack(
        [pauli_z_string_signs(n_qubits, ws) for ws in wire_sets], axis=1
    )
    signs.flags.writeable = False
    return signs


def expectation_pauli_z(psi, wire, n_qubits):
    """``<Z_wire>`` for each batch sample, shape ``(B,)``, exact (infinite shots)."""
    _check_wires(n_qubits, (wire,))
    xp = _backend.array_namespace(psi)
    return probabilities(psi) @ xp.device_constant(_z_signs(n_qubits, wire))


def inner_products(bra, ket):
    """Per-sample inner products ``<bra|ket>``, shape ``(B,)``."""
    xp = _backend.array_namespace(bra)
    return xp.sum(xp.conj(bra) * ket, axis=-1)


class Statevector:
    """A convenience object-oriented wrapper over the functional API.

    Most library code uses the functional API directly (it composes better
    with the gradient routines); this class is the ergonomic entry point for
    examples and interactive exploration.
    """

    def __init__(self, n_qubits, batch_size=1, data=None):
        self.n_qubits = int(n_qubits)
        if data is not None:
            data = np.asarray(data, dtype=np.complex128)
            if data.ndim == 1:
                data = data[None, :]
            if data.shape[1] != 2**self.n_qubits:
                raise ValueError(
                    f"data dim {data.shape[1]} != 2**{self.n_qubits}"
                )
            self.data = data.copy()
        else:
            self.data = zero_state(self.n_qubits, batch_size)

    @property
    def batch_size(self):
        """Number of states in the batch."""
        return self.data.shape[0]

    def apply(self, name, wires, theta=None):
        """Apply a named gate in place and return ``self`` for chaining."""
        self.data = apply_gate(self.data, name, wires, self.n_qubits, theta)
        return self

    def apply_matrix(self, matrix, wires):
        """Apply a raw matrix in place and return ``self`` for chaining."""
        self.data = apply_matrix(self.data, matrix, wires, self.n_qubits)
        return self

    def probabilities(self):
        """Computational-basis probabilities, shape ``(B, 2**n)``."""
        return probabilities(self.data)

    def expectation_z(self, wire):
        """``<Z_wire>`` per batch sample."""
        return expectation_pauli_z(self.data, wire, self.n_qubits)

    def copy(self):
        """Deep copy of this statevector."""
        return Statevector(self.n_qubits, data=self.data)

    def __repr__(self):
        return f"Statevector(n_qubits={self.n_qubits}, batch_size={self.batch_size})"
