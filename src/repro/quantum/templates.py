"""Variational ansatz templates (the paper's ``U_var`` block).

The paper parameterises its actors and critic with torchquantum-style
*random layers*: a fixed, seeded random sequence of parameterised rotation
gates — exactly 50 of them in Table II, which is also the trainable-parameter
budget shared by the classical baselines.  Two structured alternatives
(basic entangler and strongly-entangling layers) are provided for the
ansatz ablation.

Every template appends operations to an existing
:class:`~repro.quantum.circuit.QuantumCircuit`, allocating weight indices
sequentially from ``weight_offset``, and returns the next free weight index:

    offset = encoder.apply(circuit)
    n_weights = template.apply(circuit, weight_offset=0)
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import ParameterRef

__all__ = [
    "RandomLayerTemplate",
    "BasicEntanglerTemplate",
    "StronglyEntanglingTemplate",
]

_DEFAULT_POOL = ("rx", "ry", "rz", "crx", "cry", "crz")
_SINGLE_QUBIT = {"rx", "ry", "rz"}


class RandomLayerTemplate:
    """Seeded random sequence of parameterised gates (torchquantum-style).

    Args:
        n_qubits: Circuit width.
        n_gates: Number of gates — equals the number of trainable weights,
            since every sampled gate carries one angle (Table II uses 50).
        seed: Seed for the gate/wire sampling, making the ansatz reproducible.
        gate_pool: Gate names to sample from (all must be 1-parameter gates).
        two_qubit_ratio: Target fraction of entangling gates; the sampler
            draws gate kinds i.i.d. with this probability mass on the
            two-qubit portion of the pool.
    """

    def __init__(
        self,
        n_qubits,
        n_gates,
        seed=0,
        gate_pool=_DEFAULT_POOL,
        two_qubit_ratio=0.25,
    ):
        if n_gates < 1:
            raise ValueError("n_gates must be >= 1")
        if n_qubits < 1:
            raise ValueError("n_qubits must be >= 1")
        single = [g for g in gate_pool if g in _SINGLE_QUBIT]
        double = [g for g in gate_pool if g not in _SINGLE_QUBIT]
        if not single:
            raise ValueError("gate pool needs at least one single-qubit gate")
        if n_qubits == 1 and double:
            double = []
        if not 0.0 <= two_qubit_ratio <= 1.0:
            raise ValueError("two_qubit_ratio must be in [0, 1]")
        self.n_qubits = n_qubits
        self.n_gates = n_gates
        self.seed = seed
        self._single_pool = single
        self._double_pool = double
        self.two_qubit_ratio = two_qubit_ratio if double else 0.0

    @property
    def n_weights(self):
        """Trainable weights introduced by this template."""
        return self.n_gates

    def apply(self, circuit, weight_offset=0):
        """Append the sampled gates to ``circuit``; returns next weight index."""
        if circuit.n_qubits != self.n_qubits:
            raise ValueError(
                f"template built for {self.n_qubits} qubits, "
                f"circuit has {circuit.n_qubits}"
            )
        rng = np.random.default_rng(self.seed)
        index = weight_offset
        for _ in range(self.n_gates):
            use_double = (
                self._double_pool and rng.random() < self.two_qubit_ratio
            )
            if use_double:
                gate = self._double_pool[rng.integers(len(self._double_pool))]
                wires = tuple(
                    rng.choice(self.n_qubits, size=2, replace=False).tolist()
                )
            else:
                gate = self._single_pool[rng.integers(len(self._single_pool))]
                wires = (int(rng.integers(self.n_qubits)),)
            circuit.add(gate, wires, ParameterRef.weight(index))
            index += 1
        return index

    def initial_weights(self, rng):
        """Uniform ``[0, 2*pi)`` initial angles, matching torchquantum."""
        return rng.uniform(0.0, 2.0 * np.pi, size=self.n_weights)


class BasicEntanglerTemplate:
    """Layers of single-axis rotations followed by a CNOT ring.

    ``n_weights = n_layers * n_qubits`` (one angle per qubit per layer).
    """

    def __init__(self, n_qubits, n_layers, rotation="rx"):
        if rotation not in _SINGLE_QUBIT:
            raise ValueError(f"rotation must be one of {_SINGLE_QUBIT}")
        self.n_qubits = n_qubits
        self.n_layers = n_layers
        self.rotation = rotation

    @property
    def n_weights(self):
        """Trainable weights introduced by this template."""
        return self.n_layers * self.n_qubits

    def apply(self, circuit, weight_offset=0):
        """Append the layers to ``circuit``; returns next weight index."""
        index = weight_offset
        for _ in range(self.n_layers):
            for wire in range(self.n_qubits):
                circuit.add(self.rotation, (wire,), ParameterRef.weight(index))
                index += 1
            if self.n_qubits > 1:
                for wire in range(self.n_qubits):
                    circuit.add("cnot", (wire, (wire + 1) % self.n_qubits))
        return index

    def initial_weights(self, rng):
        """Uniform ``[0, 2*pi)`` initial angles."""
        return rng.uniform(0.0, 2.0 * np.pi, size=self.n_weights)


class StronglyEntanglingTemplate:
    """PennyLane-style strongly entangling layers.

    Each layer applies a full ``RZ-RY-RZ`` Euler rotation per qubit (three
    angles) followed by a ring of CNOTs with a layer-dependent range.
    ``n_weights = n_layers * n_qubits * 3``.
    """

    def __init__(self, n_qubits, n_layers):
        self.n_qubits = n_qubits
        self.n_layers = n_layers

    @property
    def n_weights(self):
        """Trainable weights introduced by this template."""
        return self.n_layers * self.n_qubits * 3

    def apply(self, circuit, weight_offset=0):
        """Append the layers to ``circuit``; returns next weight index."""
        index = weight_offset
        for layer in range(self.n_layers):
            for wire in range(self.n_qubits):
                circuit.add("rz", (wire,), ParameterRef.weight(index))
                circuit.add("ry", (wire,), ParameterRef.weight(index + 1))
                circuit.add("rz", (wire,), ParameterRef.weight(index + 2))
                index += 3
            if self.n_qubits > 1:
                hop = (layer % (self.n_qubits - 1)) + 1
                for wire in range(self.n_qubits):
                    circuit.add("cnot", (wire, (wire + hop) % self.n_qubits))
        return index

    def initial_weights(self, rng):
        """Uniform ``[0, 2*pi)`` initial angles."""
        return rng.uniform(0.0, 2.0 * np.pi, size=self.n_weights)
