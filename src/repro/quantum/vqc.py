"""Assembled variational quantum circuits (encoder + ansatz + measurement).

A :class:`VQC` bundles everything needed to treat a quantum circuit as a
parametric function ``f(x; w) -> R^{n_obs}``: the symbolic circuit, the
measurement observables, and the weight initialiser.  The quantum actors and
critics of :mod:`repro.marl` are thin wrappers over these bundles, and
:mod:`repro.nn.quantum_layer` adapts them into autodiff modules.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.encoding import AngleEncoding, MultiLayerAngleEncoding
from repro.quantum.observables import all_z_observables
from repro.quantum.templates import (
    BasicEntanglerTemplate,
    RandomLayerTemplate,
    StronglyEntanglingTemplate,
)

__all__ = ["VQC", "build_vqc", "make_template"]


class VQC:
    """A measurable parameterised circuit: ``f(x; w) = <O_j>_j``.

    Attributes:
        circuit: The symbolic :class:`QuantumCircuit` (encoder + ansatz).
        observables: Measurement observables defining the output vector.
        template: The ansatz template (used for weight initialisation).
    """

    def __init__(self, circuit, observables, template):
        circuit.validate()
        self.circuit = circuit
        self.observables = list(observables)
        self.template = template

    @property
    def n_qubits(self):
        """Register width."""
        return self.circuit.n_qubits

    @property
    def n_features(self):
        """Classical input dimensionality."""
        return self.circuit.n_inputs

    @property
    def n_weights(self):
        """Trainable parameter count (the paper's 50-parameter budget)."""
        return self.circuit.n_weights

    @property
    def n_outputs(self):
        """Measurement vector dimensionality."""
        return len(self.observables)

    def initial_weights(self, rng):
        """Sample initial trainable angles from the template's distribution."""
        weights = self.template.initial_weights(rng)
        if weights.shape != (self.n_weights,):
            raise ValueError(
                f"template produced {weights.shape} weights, "
                f"circuit needs ({self.n_weights},)"
            )
        return weights

    def run(self, backend, inputs, weights):
        """Forward evaluation on a backend: ``(B, n_outputs)`` expectations."""
        return backend.run(self.circuit, self.observables, inputs, weights)

    def __repr__(self):
        return (
            f"VQC(n_qubits={self.n_qubits}, n_features={self.n_features}, "
            f"n_weights={self.n_weights}, n_outputs={self.n_outputs})"
        )


def make_template(name, n_qubits, n_weights, seed=0, two_qubit_ratio=0.25):
    """Build an ansatz template by name with a target weight budget.

    Args:
        name: ``"random"`` (the paper's choice), ``"basic_entangler"`` or
            ``"strongly_entangling"``.
        n_qubits: Register width.
        n_weights: Requested trainable-parameter budget.  Structured
            templates round *down* to the nearest whole number of layers and
            will raise if the budget is below one layer.
        seed: Seed for the random template's gate sampling.
        two_qubit_ratio: Entangling-gate fraction for the random template.
    """
    if name == "random":
        return RandomLayerTemplate(
            n_qubits, n_weights, seed=seed, two_qubit_ratio=two_qubit_ratio
        )
    if name == "basic_entangler":
        n_layers = n_weights // n_qubits
        if n_layers < 1:
            raise ValueError(
                f"budget {n_weights} below one basic-entangler layer "
                f"({n_qubits} weights)"
            )
        return BasicEntanglerTemplate(n_qubits, n_layers)
    if name == "strongly_entangling":
        n_layers = n_weights // (3 * n_qubits)
        if n_layers < 1:
            raise ValueError(
                f"budget {n_weights} below one strongly-entangling layer "
                f"({3 * n_qubits} weights)"
            )
        return StronglyEntanglingTemplate(n_qubits, n_layers)
    raise ValueError(f"unknown template {name!r}")


def build_vqc(
    n_qubits,
    n_features,
    n_weights,
    seed=0,
    template="random",
    encoding_scale=np.pi,
    observables=None,
    two_qubit_ratio=0.25,
):
    """Assemble the paper's VQC: multi-layer angle encoding + ansatz + Z's.

    When ``n_features == n_qubits`` this degenerates to plain angle encoding
    (the actor case); when ``n_features`` is a larger multiple of
    ``n_qubits`` the Fig. 1 multi-layer encoder compresses the joint state
    (the critic case).

    Args:
        n_qubits: Register width (Table II: 4).
        n_features: Classical input dimensionality.
        n_weights: Trainable gate budget (Table II: 50).
        seed: Ansatz sampling seed.
        template: Template name, see :func:`make_template`.
        encoding_scale: Feature-to-angle scale.
        observables: Measurement set; defaults to ``Z`` on every qubit.
    """
    circuit = QuantumCircuit(n_qubits)
    if n_features == n_qubits:
        encoder = AngleEncoding(n_qubits, scale=encoding_scale)
    else:
        encoder = MultiLayerAngleEncoding(
            n_qubits, n_features, scale=encoding_scale
        )
    encoder.apply(circuit)
    template_obj = make_template(
        template, n_qubits, n_weights, seed=seed, two_qubit_ratio=two_qubit_ratio
    )
    template_obj.apply(circuit)
    if observables is None:
        observables = all_z_observables(n_qubits)
    return VQC(circuit, observables, template_obj)
