"""Deterministic seed management.

Every stochastic component in this library (environment arrivals, weight
initialisation, action sampling, shot noise, ansatz structure) draws from an
explicitly passed ``numpy.random.Generator``.  This module provides the
conventions for deriving independent child generators from one experiment
seed so that runs are exactly reproducible and components are statistically
decoupled (reseeding one never shifts another's stream).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "SeedSequenceFactory"]


def make_rng(seed=None):
    """A fresh ``numpy.random.Generator`` (PCG64) from a seed or entropy."""
    return np.random.default_rng(seed)


def spawn_rngs(seed, n):
    """``n`` statistically independent generators derived from one seed."""
    if n < 1:
        raise ValueError("n must be >= 1")
    children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(child) for child in children]


class SeedSequenceFactory:
    """Named, reproducible generator factory for an experiment run.

    Children are derived from ``(root_seed, name)`` so that the generator a
    component receives depends only on the root seed and its own name, never
    on the order components were constructed in::

        seeds = SeedSequenceFactory(42)
        env_rng = seeds.rng("env")
        actor_rng = seeds.rng("actor/0")
    """

    def __init__(self, root_seed):
        self.root_seed = int(root_seed)

    def seed_for(self, name):
        """Stable 64-bit child seed for a component name."""
        # Hash the name into entropy words; SeedSequence mixes them soundly.
        words = [self.root_seed & 0xFFFFFFFF, (self.root_seed >> 32) & 0xFFFFFFFF]
        words.extend(ord(c) for c in name)
        return np.random.SeedSequence(words)

    def rng(self, name):
        """Generator for a named component."""
        return np.random.default_rng(self.seed_for(name))

    def __repr__(self):
        return f"SeedSequenceFactory(root_seed={self.root_seed})"
