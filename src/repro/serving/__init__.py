"""Low-latency policy serving: micro-batched inference over trained VQCs.

The paper's end state is per-user offloading decisions made online under
heavy traffic; this package is that tier.  A checkpoint is loaded into a
warm framework, concurrent decision requests are adaptively coalesced into
single stacked circuit evaluations (:mod:`repro.serving.batcher`), new
checkpoints hot-swap in between batches without dropping a request
(:mod:`repro.serving.reload`), and batches can fan out across worker
processes over the rollout transport seam (:mod:`repro.serving.sharded`).
``docs/serving.md`` has the architecture tour.
"""

from repro.serving.batcher import MicroBatcher, OverloadedError
from repro.serving.client import AsyncServingClient, ServerError, ServingClient
from repro.serving.engine import (
    FrameworkSpec,
    PolicyEngine,
    build_inference_framework,
    select_actions,
)
from repro.serving.reload import CheckpointWatcher
from repro.serving.server import PolicyServer, make_engine
from repro.serving.sharded import ShardedPolicyEngine

__all__ = [
    "AsyncServingClient",
    "CheckpointWatcher",
    "FrameworkSpec",
    "MicroBatcher",
    "OverloadedError",
    "PolicyEngine",
    "PolicyServer",
    "ServerError",
    "ServingClient",
    "ShardedPolicyEngine",
    "build_inference_framework",
    "make_engine",
    "select_actions",
]
