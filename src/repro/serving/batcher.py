"""Adaptive micro-batching: coalesce concurrent requests into one circuit call.

Per-request evaluation wastes exactly the parallelism the statevector
backend is best at — a 64-row stacked evaluation costs far less than 64
single-row calls (the same observation that made vectorized rollouts and ES
fast).  The batcher therefore queues concurrent decision requests and
flushes them as ONE ``rows_probabilities`` call when either

- ``max_batch`` rows have accumulated (flush on size), or
- the *oldest* queued request has waited ``max_wait_us`` (flush on time).

Under heavy load batches fill instantly and the timer never fires; under
light load a request waits at most ``max_wait_us`` before evaluating alone.
That is the adaptive part: batch size tracks the offered load with a hard
latency bound, no tuning loop required.

Everything runs on one asyncio event loop, and a flush is synchronous once
it starts — which is exactly what makes hot reload safe: the engine swap is
scheduled as a loop callback, so it can interleave *between* flushes but
never inside one.
"""

from __future__ import annotations

import asyncio
import time

from repro import obs
from repro.obs import spans as _spans
from repro.obs import trace as _trace

__all__ = ["MicroBatcher", "OverloadedError"]


class OverloadedError(RuntimeError):
    """Raised by submit() when the pending queue exceeds ``max_pending``."""


class _Entry:
    """One submitted request group and the future its caller awaits."""

    __slots__ = ("observations", "agents", "greedy", "future", "enqueued_at",
                 "meta", "span_id")

    def __init__(self, observations, agents, greedy, future, enqueued_at,
                 meta=None, span_id=None):
        self.observations = observations
        self.agents = agents
        self.greedy = greedy
        self.future = future
        self.enqueued_at = enqueued_at
        self.meta = meta
        # The submitting request's span id (when a trace is open), so the
        # flush can attribute the retroactive queue-wait span to it.
        self.span_id = span_id


class MicroBatcher:
    """Coalesce submit() calls into stacked engine evaluations.

    Args:
        engine: A :class:`~repro.serving.engine.PolicyEngine` (or the
            sharded variant) — anything with
            ``act(observations, agents, greedy_mask)``.
        max_batch: Most rows per flush.  Request groups are never split:
            a group larger than ``max_batch`` flushes as its own batch.
        max_wait_us: Longest the oldest queued row waits before a flush.
        max_pending: Queued-row bound; beyond it submit() raises
            :class:`OverloadedError`.  0 means unbounded.
        flush_observer: Optional callable invoked after every successful
            flush with ``(batch_id, trigger, entries, generation)`` where
            ``entries`` is ``[(meta, rows, queue_wait_us), ...]`` in queue
            order — the server's structured access log hangs off this.
    """

    def __init__(self, engine, max_batch=32, max_wait_us=2000, max_pending=0,
                 flush_observer=None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait = max_wait_us / 1e6
        self.max_pending = int(max_pending)
        self.flush_observer = flush_observer
        self._queue = []
        self._pending_rows = 0
        self._timer = None
        self._batch_seq = 0
        self.stats = {
            "requests": 0,
            "rows": 0,
            "batches": 0,
            "rejected": 0,
            "flush_size": 0,
            "flush_time": 0,
            "batch_size_hist": {},
            "max_batch_seen": 0,
        }

    @property
    def pending_rows(self):
        """Rows currently queued (not yet flushed)."""
        return self._pending_rows

    async def submit(self, observations, agents, greedy, meta=None):
        """Queue one request group; returns ``(actions, probs, generation)``.

        ``observations`` is ``(k, obs_size)``, ``agents`` and ``greedy``
        are length ``k`` — a group is typically one request (k=1) but the
        batch endpoint submits many rows atomically.  ``meta`` is an opaque
        caller tag handed back through ``flush_observer``.
        """
        rows = len(observations)
        if self.max_pending and self._pending_rows + rows > self.max_pending:
            self.stats["rejected"] += 1
            if obs.enabled():
                obs.counter("serving.rejected").inc()
            raise OverloadedError(
                f"{self._pending_rows} rows pending, bound is "
                f"{self.max_pending}"
            )
        loop = asyncio.get_running_loop()
        entry = _Entry(
            observations, agents, greedy, loop.create_future(),
            time.perf_counter(), meta, _trace.current_span_id(),
        )
        self._queue.append(entry)
        self._pending_rows += rows
        self.stats["requests"] += 1
        self.stats["rows"] += rows
        if self._pending_rows >= self.max_batch:
            self._flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_wait, self._flush, "time"
            )
        return await entry.future

    def _take_batch(self):
        """Dequeue whole groups up to ``max_batch`` rows (at least one)."""
        taken = []
        rows = 0
        while self._queue:
            entry = self._queue[0]
            entry_rows = len(entry.observations)
            if taken and rows + entry_rows > self.max_batch:
                break
            taken.append(self._queue.pop(0))
            rows += entry_rows
        self._pending_rows -= rows
        return taken, rows

    def _flush(self, trigger):
        """Evaluate queued groups as stacked engine calls (sync, on-loop)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        while self._queue:
            taken, rows = self._take_batch()
            observations = [o for e in taken for o in e.observations]
            agents = [a for e in taken for a in e.agents]
            greedy = [g for e in taken for g in e.greedy]
            try:
                # The batch span's causal parent is the process default
                # (the server's root span), set explicitly: _flush runs
                # either inside one request's context (size trigger) or a
                # timer callback's captured context (time trigger), and
                # neither request should own a span covering everyone's
                # rows.  Request→batch attribution comes from the
                # queue-wait spans below instead.
                with obs.span("serving.batch",
                              parent_id=_trace.default_parent()):
                    actions, probs, generation = self.engine.act(
                        observations, agents, greedy
                    )
            except Exception as exc:  # noqa: BLE001 — fail the waiters
                for entry in taken:
                    if not entry.future.done():
                        entry.future.set_exception(exc)
                continue
            self.stats["batches"] += 1
            self.stats[f"flush_{trigger}"] += 1
            hist = self.stats["batch_size_hist"]
            hist[rows] = hist.get(rows, 0) + 1
            self.stats["max_batch_seen"] = max(
                self.stats["max_batch_seen"], rows
            )
            self._batch_seq += 1
            telemetry = obs.enabled()
            if telemetry or self.flush_observer is not None:
                now = time.perf_counter()
                waits = [
                    (entry, (now - entry.enqueued_at) * 1e6)
                    for entry in taken
                ]
                if telemetry:
                    obs.counter(f"serving.flush.{trigger}").inc()
                    obs.histogram(
                        "serving.batch_rows", min_edge=1.0, n_buckets=12
                    ).observe(rows)
                    wait_hist = obs.histogram(
                        "serving.queue_wait_us", min_edge=1.0, n_buckets=32
                    )
                    for _, wait_us in waits:
                        wait_hist.observe(wait_us)
                    if _trace.active() and _spans.export_path() is not None:
                        # Retroactive per-request queue-wait spans: the
                        # interval from enqueue to this flush, parented to
                        # the submitting request's span.
                        for entry, wait_us in waits:
                            _trace.emit_manual_span(
                                "serving.queue_wait",
                                t_us=_trace.align_us(
                                    entry.enqueued_at * 1e6
                                ),
                                dur_us=wait_us,
                                parent_id=entry.span_id,
                                batch_id=self._batch_seq,
                                flush=trigger,
                            )
                if self.flush_observer is not None:
                    self.flush_observer(
                        self._batch_seq,
                        trigger,
                        [
                            (e.meta, len(e.observations), wait_us)
                            for e, wait_us in waits
                        ],
                        generation,
                    )
            offset = 0
            for entry in taken:
                k = len(entry.observations)
                if not entry.future.done():
                    entry.future.set_result(
                        (
                            actions[offset:offset + k],
                            probs[offset:offset + k],
                            generation,
                        )
                    )
                offset += k
            if self._pending_rows < self.max_batch:
                break
        if self._queue and self._timer is None:
            # Leftover groups keep the oldest entry's original deadline.
            remaining = max(
                0.0,
                self._queue[0].enqueued_at + self.max_wait
                - time.perf_counter(),
            )
            self._timer = asyncio.get_running_loop().call_later(
                remaining, self._flush, "time"
            )
