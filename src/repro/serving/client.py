"""Minimal stdlib clients for the policy server.

:class:`AsyncServingClient` keeps one persistent HTTP/1.1 connection and
is what the load generator and the tests drive; :class:`ServingClient`
wraps ``http.client`` for synchronous callers (demo scripts, notebooks).
"""

from __future__ import annotations

import asyncio
import http.client
import json

__all__ = ["AsyncServingClient", "ServingClient", "ServerError"]


class ServerError(RuntimeError):
    """A non-200 response; carries the HTTP status code."""

    def __init__(self, status, message):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class AsyncServingClient:
    """One keep-alive connection to a policy server.

    Requests on a single client are serialised (one connection, one
    in-flight request); open several clients for concurrency — that is
    exactly what the load generator does.
    """

    def __init__(self, host, port):
        self.host = host
        self.port = int(port)
        self._reader = None
        self._writer = None

    async def connect(self):
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self):
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self):
        return await self.connect()

    async def __aexit__(self, exc_type, exc_value, tb):
        await self.close()

    async def request(self, method, path, payload=None):
        """One round-trip; returns the decoded JSON document."""
        if self._writer is None:
            await self.connect()
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin1") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        raw = await self._reader.readexactly(length) if length else b""
        document = json.loads(raw) if raw else {}
        if status != 200:
            raise ServerError(status, document.get("error", raw.decode()))
        return document

    async def act(self, observation, agent, greedy=False):
        """One decision; returns the response document."""
        return await self.request(
            "POST", "/v1/act",
            {
                "observation": [float(x) for x in observation],
                "agent": int(agent),
                "greedy": bool(greedy),
            },
        )

    async def act_batch(self, observations, agents, greedy=False,
                        return_probs=False):
        """A batch of decisions submitted atomically."""
        return await self.request(
            "POST", "/v1/act-batch",
            {
                "observations": [[float(x) for x in row]
                                 for row in observations],
                "agents": [int(a) for a in agents],
                "greedy": greedy,
                "return_probs": return_probs,
            },
        )

    async def health(self):
        return await self.request("GET", "/healthz")

    async def stats(self):
        return await self.request("GET", "/v1/stats")

    async def metrics(self):
        return await self.request("GET", "/metrics")


class ServingClient:
    """Synchronous convenience client over ``http.client``."""

    def __init__(self, host, port, timeout=30.0):
        self.connection = http.client.HTTPConnection(
            host, int(port), timeout=timeout
        )

    def request(self, method, path, payload=None):
        body = None if payload is None else json.dumps(payload)
        self.connection.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = self.connection.getresponse()
        raw = response.read()
        document = json.loads(raw) if raw else {}
        if response.status != 200:
            raise ServerError(
                response.status, document.get("error", raw.decode())
            )
        return document

    def act(self, observation, agent, greedy=False):
        return self.request(
            "POST", "/v1/act",
            {
                "observation": [float(x) for x in observation],
                "agent": int(agent),
                "greedy": bool(greedy),
            },
        )

    def act_batch(self, observations, agents, greedy=False,
                  return_probs=False):
        return self.request(
            "POST", "/v1/act-batch",
            {
                "observations": [[float(x) for x in row]
                                 for row in observations],
                "agents": [int(a) for a in agents],
                "greedy": greedy,
                "return_probs": return_probs,
            },
        )

    def health(self):
        return self.request("GET", "/healthz")

    def stats(self):
        return self.request("GET", "/v1/stats")

    def metrics(self):
        return self.request("GET", "/metrics")

    def close(self):
        self.connection.close()
