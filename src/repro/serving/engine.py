"""The in-process policy engine: a warm framework behind a generation counter.

The engine owns everything the serving tier needs to turn a micro-batch of
(agent, observation) rows into actions with ONE stacked circuit call:

- a built :class:`~repro.marl.frameworks.Framework` whose compiled circuit
  programs are pre-warmed (the first real request never pays compile cost);
- the checkpoint *generation* counter — it increments exactly when a new
  checkpoint is swapped in, so every response can state which weights
  produced it;
- the action-sampling stream.  Sampling always happens here, in the parent,
  from parent-drawn uniforms — sharded workers only ever compute
  probabilities — so responses are reproducible for any worker count.

Hot reload goes through :meth:`PolicyEngine.load_shadow` (build + load +
warm a second framework, off the event loop) followed by
:meth:`PolicyEngine.swap` (a pointer flip the server schedules between
batches).  In-flight batches keep evaluating on the old framework object;
nothing is ever mutated in place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.marl.actors import categorical_from_draws
from repro.marl.checkpoint import load_checkpoint
from repro.marl.frameworks import build_framework

__all__ = [
    "FrameworkSpec",
    "build_inference_framework",
    "select_actions",
    "PolicyEngine",
]


@dataclass(frozen=True)
class FrameworkSpec:
    """Picklable recipe for building identical inference frameworks.

    Carried by the parent *and* shipped to sharded workers, so every shard
    builds the same circuit structure and can load the same checkpoints.

    Args:
        name: Framework arm (``"proposed"``, ``"comp1"``, ...).
        seed: Root seed for the built framework.  Irrelevant once a
            checkpoint is loaded, but kept explicit for reproducibility of
            un-checkpointed smoke setups.
        env_config: :class:`~repro.config.SingleHopConfig` or None (defaults).
        vqc_config: :class:`~repro.config.VQCConfig` or None (defaults).
    """

    name: str = "proposed"
    seed: int = 0
    env_config: object = None
    vqc_config: object = None


def build_inference_framework(spec):
    """Build a framework from a spec (policy structure is all serving needs)."""
    return build_framework(
        spec.name,
        seed=spec.seed,
        env_config=spec.env_config,
        vqc_config=spec.vqc_config,
    )


def select_actions(probs, greedy_mask, draws):
    """``(R,)`` actions from ``(R, A)`` probabilities.

    Greedy rows take the argmax; the rest invert their pre-drawn uniform
    through the categorical CDF (:func:`categorical_from_draws`).  ``draws``
    must hold one uniform per row — greedy rows' draws are simply unused,
    which keeps the draw layout independent of the greedy pattern.
    """
    probs = np.asarray(probs)
    greedy_mask = np.asarray(greedy_mask, dtype=bool)
    actions = np.empty(probs.shape[0], dtype=np.int64)
    if greedy_mask.any():
        actions[greedy_mask] = np.argmax(probs[greedy_mask], axis=1)
    sampled = ~greedy_mask
    if sampled.any():
        actions[sampled] = categorical_from_draws(
            probs[sampled], np.asarray(draws)[sampled]
        )
    return actions


class PolicyEngine:
    """Evaluate ragged micro-batches on a warm framework.

    Args:
        spec: :class:`FrameworkSpec` for the policy structure.
        checkpoint_path: Optional checkpoint to load at startup
            (``weights_only`` — serving never touches trainer state).
        sample_seed: Seed for the engine-owned action-sampling stream.
    """

    def __init__(self, spec, checkpoint_path=None, sample_seed=0):
        self.spec = spec
        self._framework = build_inference_framework(spec)
        self.generation = 0
        self.checkpoint_path = None
        self._sample_rng = np.random.default_rng(sample_seed)
        if checkpoint_path is not None:
            self.load(checkpoint_path)
        _warm(self._framework)

    @property
    def framework(self):
        """The currently serving framework (swapped atomically on reload)."""
        return self._framework

    @property
    def n_agents(self):
        return self._framework.env.n_agents

    @property
    def n_actions(self):
        return self._framework.actors.actors[0].n_actions

    @property
    def observation_size(self):
        return self._framework.env.observation_size

    def load(self, path):
        """Load a checkpoint into the live framework (startup only —
        while serving, go through :meth:`load_shadow` + :meth:`swap`)."""
        load_checkpoint(self._framework, path, weights_only=True)
        self.checkpoint_path = path
        self.generation += 1

    def load_shadow(self, path):
        """Build, load, and warm a fresh framework without touching the
        serving one.  Runs on the watcher thread; the returned framework is
        ready to :meth:`swap` in with zero on-loop work beyond the flip."""
        shadow = build_inference_framework(self.spec)
        load_checkpoint(shadow, path, weights_only=True)
        _warm(shadow)
        return shadow

    def swap(self, framework, checkpoint_path=None):
        """Point serving at a shadow-loaded framework; bumps the generation.

        The old framework object is untouched, so a batch that captured it
        before the swap finishes on the old weights — the generation in its
        responses says so.
        """
        old = self._framework
        self._framework = framework
        self.checkpoint_path = checkpoint_path
        self.generation += 1
        old.close()

    def infer(self, observations, agents):
        """``(R, A)`` probabilities + the generation that produced them."""
        framework = self._framework
        probs = framework.actors.rows_probabilities(observations, agents)
        return probs, self.generation

    def act(self, observations, agents, greedy_mask):
        """``(actions, probs, generation)`` for one micro-batch."""
        probs, generation = self.infer(observations, agents)
        draws = self._sample_rng.random(probs.shape[0])
        return select_actions(probs, greedy_mask, draws), probs, generation

    def close(self):
        self._framework.close()


def _warm(framework):
    """Run one dummy micro-batch so compiled programs and suffix-unitary
    caches exist before the first real request."""
    env = framework.env
    obs = np.zeros((env.n_agents, env.observation_size))
    framework.actors.rows_probabilities(obs, np.arange(env.n_agents))
