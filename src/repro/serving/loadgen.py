"""Closed/open-loop load generation against a live policy server.

Two canonical load models:

- **Closed loop** — ``C`` clients, each firing its next request the moment
  the previous answer lands.  Measures sustainable throughput at a given
  concurrency; latency here includes batching wait by construction.
- **Open loop** — requests arrive on a fixed schedule at an *offered* rate
  regardless of completions (a bounded connection pool carries them, and
  latency is measured from the scheduled arrival, so queueing delay counts).
  This is the model that exposes the latency cliff as offered load crosses
  capacity.

:func:`run_serving_load` drives both, plus the batch-size-vs-latency
frontier and the batched-vs-batch-size-1 comparison the acceptance
criterion asks for, each against a fresh server on an ephemeral port.  The
result document is what ``benchmarks/bench_serving.py`` writes to
``BENCH_serving.json``.
"""

from __future__ import annotations

import asyncio
import os
import tempfile

import numpy as np

from repro.config import ServingConfig, SingleHopConfig, TrainingConfig
from repro.marl.checkpoint import save_checkpoint
from repro.marl.frameworks import build_framework
from repro.serving.client import AsyncServingClient, ServerError
from repro.serving.engine import FrameworkSpec
from repro.serving.server import PolicyServer

__all__ = ["latency_stats", "closed_loop", "open_loop", "run_serving_load"]


def latency_stats(latencies):
    """p50/p95/p99/mean in milliseconds from a list of seconds."""
    if not latencies:
        return {"count": 0}
    arr = np.asarray(latencies) * 1e3
    return {
        "count": int(arr.size),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "mean_ms": float(arr.mean()),
        "max_ms": float(arr.max()),
    }


async def closed_loop(host, port, n_clients, duration, observation_size,
                      n_agents, seed=0):
    """``n_clients`` always-busy clients for ``duration`` seconds.

    Returns ``(latencies, errors, elapsed)``.
    """
    loop = asyncio.get_running_loop()
    start = loop.time()
    deadline = start + duration
    latencies = []
    errors = 0

    async def one_client(i):
        nonlocal errors
        client = AsyncServingClient(host, port)
        await client.connect()
        rng = np.random.default_rng(seed * 1000 + i)
        observations = rng.uniform(size=(64, observation_size))
        j = 0
        try:
            while loop.time() < deadline:
                t0 = loop.time()
                try:
                    await client.act(observations[j % 64], j % n_agents)
                except ServerError:
                    errors += 1
                else:
                    latencies.append(loop.time() - t0)
                j += 1
        finally:
            await client.close()

    await asyncio.gather(*(one_client(i) for i in range(n_clients)))
    return latencies, errors, loop.time() - start


async def open_loop(host, port, rate, duration, observation_size, n_agents,
                    pool_size=64, seed=0):
    """Fixed-rate arrivals for ``duration`` seconds over a connection pool.

    Latency is measured from each request's *scheduled* arrival time, so
    time spent waiting for a free pool connection counts against the
    server — the honest open-loop accounting.  Returns
    ``(latencies, errors, elapsed)``.
    """
    loop = asyncio.get_running_loop()
    n_requests = max(1, int(rate * duration))
    pool = asyncio.Queue()
    clients = []
    for _ in range(min(pool_size, n_requests)):
        client = AsyncServingClient(host, port)
        await client.connect()
        clients.append(client)
        pool.put_nowait(client)
    rng = np.random.default_rng(seed)
    observations = rng.uniform(size=(256, observation_size))
    latencies = []
    errors = 0
    start = loop.time()

    async def fire(i, scheduled_at):
        nonlocal errors
        client = await pool.get()
        try:
            await client.act(observations[i % 256], i % n_agents)
        except (ServerError, ConnectionError):
            errors += 1
        else:
            latencies.append(loop.time() - scheduled_at)
        finally:
            pool.put_nowait(client)

    tasks = []
    for i in range(n_requests):
        scheduled_at = start + i / rate
        delay = scheduled_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(i, scheduled_at)))
    await asyncio.gather(*tasks)
    elapsed = loop.time() - start
    for client in clients:
        await client.close()
    return latencies, errors, elapsed


def _make_checkpoint(directory, framework_name, env_config, seed=7):
    """Train a small framework briefly and checkpoint it for serving."""
    framework = build_framework(
        framework_name,
        seed=seed,
        env_config=env_config,
        train_config=TrainingConfig(
            episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3
        ),
    )
    framework.train(n_epochs=1)
    path = save_checkpoint(framework, os.path.join(directory, "serving"))
    framework.close()
    return path


async def _measure(spec, config, checkpoint_path, scenario, **kwargs):
    """Run one load scenario against a fresh server; returns its stats."""
    server = PolicyServer(spec, config, checkpoint_path=checkpoint_path)
    await server.start()
    try:
        latencies, errors, elapsed = await scenario(
            config.host, server.port,
            observation_size=server.engine.observation_size,
            n_agents=server.engine.n_agents,
            **kwargs,
        )
        stats = latency_stats(latencies)
        stats["errors"] = int(errors)
        stats["elapsed_s"] = float(elapsed)
        stats["throughput_rps"] = (
            float(len(latencies) / elapsed) if elapsed > 0 else 0.0
        )
        stats["batches"] = server.batcher.stats["batches"]
        batches = max(1, server.batcher.stats["batches"])
        stats["mean_batch_rows"] = server.batcher.stats["rows"] / batches
        return stats
    finally:
        await server.stop()


def run_serving_load(framework="proposed", smoke=False, duration=None,
                     concurrencies=None, batch_sizes=None,
                     offered_rates=None, max_wait_us=2000):
    """The full serving benchmark; returns the BENCH_serving document."""
    duration = duration if duration is not None else (0.6 if smoke else 2.5)
    concurrencies = concurrencies if concurrencies is not None else (
        [1, 8] if smoke else [1, 4, 16, 64]
    )
    batch_sizes = batch_sizes if batch_sizes is not None else (
        [1, 8] if smoke else [1, 2, 4, 8, 16, 32]
    )
    env_config = SingleHopConfig()
    spec = FrameworkSpec(name=framework, env_config=env_config)

    async def _run():
        document = {
            "framework": framework,
            "smoke": bool(smoke),
            "duration_s": duration,
            "max_wait_us": max_wait_us,
            "cpu_count": os.cpu_count(),
        }
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = _make_checkpoint(tmp, framework, env_config)
            adaptive = ServingConfig(
                max_batch=max(batch_sizes), max_wait_us=max_wait_us, port=0,
                reload_poll_ms=0,
            )

            # Closed-loop throughput/latency vs concurrency (adaptive).
            document["closed_loop"] = []
            for c in concurrencies:
                stats = await _measure(
                    spec, adaptive, ckpt, closed_loop,
                    n_clients=c, duration=duration, seed=c,
                )
                stats["concurrency"] = c
                document["closed_loop"].append(stats)

            # Batch-size-vs-latency frontier at fixed concurrency.
            frontier_clients = max(concurrencies)
            document["frontier"] = []
            for size in batch_sizes:
                config = ServingConfig(
                    max_batch=size, max_wait_us=max_wait_us, port=0,
                    reload_poll_ms=0,
                )
                stats = await _measure(
                    spec, config, ckpt, closed_loop,
                    n_clients=frontier_clients, duration=duration, seed=size,
                )
                stats["max_batch"] = size
                document["frontier"].append(stats)

            # The acceptance comparison: adaptive batching vs a batch-size-1
            # baseline under the same closed-loop concurrency.
            single = next(
                s for s in document["frontier"] if s["max_batch"] == 1
            )
            batched = max(
                document["frontier"], key=lambda s: s["throughput_rps"]
            )
            document["batched_vs_single"] = {
                "concurrency": frontier_clients,
                "single": single,
                "batched": batched,
                "throughput_ratio": (
                    batched["throughput_rps"] / single["throughput_rps"]
                    if single["throughput_rps"] else float("inf")
                ),
                "batched_is_faster": bool(
                    batched["throughput_rps"] > single["throughput_rps"]
                    and batched.get("p99_ms", float("inf"))
                    <= single.get("p99_ms", float("inf"))
                ),
            }

            # Open-loop latency vs offered load (adaptive).  Offered rates
            # default to fractions of the measured closed-loop capacity so
            # the sweep brackets the knee wherever this machine puts it.
            capacity = max(
                s["throughput_rps"] for s in document["closed_loop"]
            )
            rates = offered_rates if offered_rates is not None else [
                round(capacity * frac)
                for frac in ([0.25, 0.75] if smoke else [0.25, 0.5, 0.75, 0.9])
            ]
            document["open_loop"] = []
            for rate in rates:
                if rate < 1:
                    continue
                stats = await _measure(
                    spec, adaptive, ckpt, open_loop,
                    rate=rate, duration=duration, seed=int(rate),
                )
                stats["offered_rps"] = rate
                document["open_loop"].append(stats)
        return document

    return asyncio.run(_run())
