"""Hot checkpoint reload: watch, validate, shadow-load, swap between batches.

The watcher thread polls the checkpoint pair's file signature (mtime+size
of header and archive).  When it changes, the candidate is *verified
first* — :func:`~repro.marl.checkpoint.verify_checkpoint` re-computes the
archive checksum against the header — so a torn pair (a crash between the
archive and header renames, or a write caught mid-flight over NFS-ish
storage) is rejected and retried at the next poll while the server keeps
answering from the in-memory generation.  A verified candidate is loaded
into a shadow framework on the watcher thread (construction, checkpoint
restore, and circuit-program warmup all happen off the event loop) and the
swap itself is marshalled onto the loop with ``call_soon_threadsafe``,
where it lands between micro-batch flushes: in-flight batches finish on
the old weights, the next batch serves the new generation, and no request
is ever dropped.

The checksum doubles as the change fingerprint, so rewriting an identical
checkpoint never triggers a pointless swap.
"""

from __future__ import annotations

import os
import threading

from repro.marl.checkpoint import verify_checkpoint

__all__ = ["CheckpointWatcher"]


def _file_signature(path):
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return stat.st_mtime_ns, stat.st_size


class CheckpointWatcher(threading.Thread):
    """Poll a checkpoint path and hand verified updates to a swap callback.

    Args:
        path: Checkpoint archive path (``.npz``).
        apply: Called on the *watcher thread* with ``(path, header)`` once a
            new, verified checkpoint appears; it owns shadow-loading and
            scheduling the swap onto the event loop.
        poll_interval: Seconds between stat polls.
        initial_checksum: Checksum already serving (skips a redundant first
            reload when the server loaded ``path`` at startup).
    """

    def __init__(self, path, apply, poll_interval=0.2, initial_checksum=None):
        super().__init__(name="repro-serving-reload", daemon=True)
        self.path = path
        self.apply = apply
        self.poll_interval = float(poll_interval)
        self._stop_event = threading.Event()
        self._signature = None
        self._checksum = initial_checksum
        self.stats = {"reloads": 0, "rejected": 0, "unchanged": 0}
        if initial_checksum is not None:
            self._signature = self._pair_signature()

    def _pair_signature(self):
        from repro.marl.checkpoint import _archive_path, _header_path

        archive = _archive_path(self.path)
        return (
            _file_signature(archive),
            _file_signature(_header_path(archive)),
        )

    def poll_once(self):
        """One poll step; returns True when a new checkpoint was applied.

        Exposed for deterministic tests — the thread loop just calls this
        on an interval.
        """
        signature = self._pair_signature()
        if signature == self._signature or None in signature:
            return False
        try:
            header = verify_checkpoint(self.path)
        except (OSError, ValueError):
            # Torn or mid-write pair: keep serving the old generation and
            # try again next poll.  Do NOT record the signature — the pair
            # will settle and then differ from the recorded one.
            self.stats["rejected"] += 1
            return False
        self._signature = signature
        checksum = header.get("checksum")
        if checksum is not None and checksum == self._checksum:
            self.stats["unchanged"] += 1
            return False
        self._checksum = checksum
        self.apply(self.path, header)
        self.stats["reloads"] += 1
        return True

    def run(self):
        while not self._stop_event.wait(self.poll_interval):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 — a failed apply must not kill
                # the watcher; the next good checkpoint still gets picked up.
                self.stats["rejected"] += 1

    def stop(self, timeout=5.0):
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)
