"""Asyncio + stdlib-HTTP policy server.

A deliberately small HTTP/1.1 front (no external dependencies — the repo
constraint) over the micro-batcher:

- ``POST /v1/act`` — one decision: ``{"observation": [...], "agent": 0,
  "greedy": false}`` -> ``{"action": 2, "probs": [...], "generation": 1}``.
- ``POST /v1/act-batch`` — many rows atomically: ``{"observations":
  [[...], ...], "agents": [...], "greedy": false}``.
- ``GET /healthz`` — liveness + the serving generation.
- ``GET /v1/stats`` — batcher histogram, reload counters, request totals.
- ``GET /metrics`` — the telemetry view (``docs/observability.md``):
  batch-occupancy histogram, queue-wait p50/p99, flush-reason counters,
  reload counts.  The server enables ``repro.obs`` for its lifetime.

With ``--log-requests`` every request additionally emits one structured
JSON access-log line at flush time (request id, batch id, queue-wait µs,
flush reason) to stderr.

Connections are keep-alive; each request parks on the batcher until its
micro-batch flushes, so thousands of idle connections cost only their
coroutine.  Overload (``max_pending`` exceeded) answers 503 — shedding at
the door keeps p99 bounded for the admitted traffic.

Run standalone with ``python -m repro.serving.server --checkpoint ckpt.npz``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from repro import obs
from repro.config import ServingConfig
from repro.obs import flight as _flight
from repro.obs import trace as _trace
from repro.marl.checkpoint import checkpoint_info
from repro.serving.batcher import MicroBatcher, OverloadedError
from repro.serving.engine import FrameworkSpec, PolicyEngine
from repro.serving.reload import CheckpointWatcher
from repro.serving.sharded import ShardedPolicyEngine

__all__ = ["PolicyServer", "make_engine", "main"]


def make_engine(spec, config, checkpoint_path=None):
    """Build the in-process or sharded engine a config asks for."""
    if config.workers > 1:
        return ShardedPolicyEngine(
            spec,
            checkpoint_path=checkpoint_path,
            n_workers=config.workers,
            transport=config.effective_transport,
            sample_seed=config.sample_seed,
        )
    return PolicyEngine(
        spec, checkpoint_path=checkpoint_path, sample_seed=config.sample_seed
    )


async def _read_request(reader):
    """Parse one HTTP/1.1 request; returns (method, path, headers, body)."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin1").split()
    if len(parts) < 2:
        raise ValueError(f"malformed request line: {request_line!r}")
    method, path = parts[0], parts[1]
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin1").partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                503: "Service Unavailable"}


def _write_response(writer, status, document, keep_alive=True):
    body = json.dumps(document).encode()
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, '')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n\r\n"
    )
    writer.write(head.encode("latin1") + body)


class PolicyServer:
    """The serving tier: engine + micro-batcher + watcher + HTTP front.

    Args:
        spec: :class:`~repro.serving.engine.FrameworkSpec` for the policy.
        config: :class:`~repro.config.ServingConfig`.
        checkpoint_path: Optional checkpoint to serve (and watch for hot
            reload when ``config.reload_poll_ms > 0``).

    Use as an async context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, spec=None, config=None, checkpoint_path=None,
                 engine=None):
        self.config = config if config is not None else ServingConfig()
        self.checkpoint_path = checkpoint_path
        if engine is None:
            engine = make_engine(
                spec if spec is not None else FrameworkSpec(),
                self.config, checkpoint_path,
            )
        self.engine = engine
        # Swappable sink for the structured access log (tests point it at a
        # StringIO); one JSON line per request, written at flush time.
        self.access_log_stream = sys.stderr
        self.batcher = MicroBatcher(
            engine,
            max_batch=self.config.max_batch,
            max_wait_us=self.config.max_wait_us,
            max_pending=self.config.max_pending,
            flush_observer=(
                self._log_batch if self.config.log_requests else None
            ),
        )
        self.watcher = None
        self._server = None
        self._loop = None
        self._obs_prev = None
        self._trace_root = None
        self._trace_root_started = 0
        self._trace_owner = False
        self._request_seq = 0
        self.request_count = 0
        self.error_count = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(self):
        """Bind the socket and start the reload watcher; returns self."""
        # The serving tier runs with telemetry on for its lifetime — the
        # /metrics surface is part of its contract.  The previous flag is
        # restored on stop() so embedding tests don't leak the enable.
        self._obs_prev = obs.set_enabled(True)
        # One trace spans the server's lifetime; every request span (and,
        # through the transport seam, every shard-eval span) parents back
        # to the ``serving.server`` root, whose event is emitted at stop()
        # once its duration is known.
        self._trace_owner = not _trace.active()
        obs.begin_trace(label="serving")
        self._trace_root = _trace.new_span_id()
        self._trace_root_started = _trace.now_us()
        _trace.set_default_parent(self._trace_root)
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.checkpoint_path and self.config.reload_poll_ms > 0:
            initial = None
            try:
                initial = checkpoint_info(self.checkpoint_path).get("checksum")
            except (OSError, ValueError):
                pass
            self.watcher = CheckpointWatcher(
                self.checkpoint_path,
                self._apply_checkpoint,
                poll_interval=self.config.reload_poll_ms / 1000.0,
                initial_checksum=initial,
            )
            self.watcher.start()
        return self

    @property
    def port(self):
        """The actually bound port (resolves config.port=0)."""
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        if self.watcher is not None:
            self.watcher.stop()
            self.watcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.engine.close()
        if self._trace_root is not None:
            _trace.emit_manual_span(
                "serving.server",
                t_us=self._trace_root_started,
                dur_us=_trace.now_us() - self._trace_root_started,
                span_id=self._trace_root,
            )
            _trace.set_default_parent(None)
            self._trace_root = None
            if self._trace_owner:
                obs.end_trace()
        if self._obs_prev is not None:
            obs.set_enabled(self._obs_prev)
            self._obs_prev = None

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, tb):
        await self.stop()

    # -- hot reload -----------------------------------------------------------

    def _apply_checkpoint(self, path, header):
        """Watcher-thread callback: shadow-load, then swap on the loop.

        In-process engines pay the build+load+warm cost here, off the loop;
        the loop only executes the pointer flip (between batches).  Sharded
        engines instead broadcast the load on the loop — worker channels
        are not thread-safe, so the exchange must be serialised with
        inference, and it must not interleave with an in-flight batch.
        """
        engine = self.engine
        if hasattr(engine, "load_shadow"):
            shadow = engine.load_shadow(path)
            self._loop.call_soon_threadsafe(engine.swap, shadow, path)
        else:
            self._loop.call_soon_threadsafe(engine.load, path)

    # -- request handling -----------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except (ValueError, asyncio.IncompleteReadError,
                        ConnectionError):
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    status, document = await self._dispatch(
                        method, path, body
                    )
                except OverloadedError as exc:
                    status, document = 503, {"error": str(exc)}
                except (KeyError, TypeError, ValueError,
                        json.JSONDecodeError) as exc:
                    status, document = 400, {"error": str(exc)}
                self.request_count += 1
                if status != 200:
                    self.error_count += 1
                _write_response(writer, status, document, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Shutdown cancels parked handlers; the transport is closed
                # either way, so finishing quietly is correct.
                pass

    async def _dispatch(self, method, path, body):
        if method == "POST" and path == "/v1/act":
            return await self._act(body)
        if method == "POST" and path == "/v1/act-batch":
            return await self._act_batch(body)
        if method == "GET" and path == "/healthz":
            return 200, self._health()
        if method == "GET" and path == "/v1/stats":
            return 200, self._stats()
        if method == "GET" and path == "/metrics":
            return 200, self._metrics()
        return 404, {"error": f"no route for {method} {path}"}

    def _next_meta(self):
        """Access-log tag for one request group (None when logging is off).

        Called inside the request span, so the tag links the log line to
        the trace: a slow request's ``trace_id``/``span_id`` can be looked
        up straight in the exported timeline.
        """
        if not self.config.log_requests:
            return None
        self._request_seq += 1
        meta = {"request_id": self._request_seq}
        if obs.trace_id() is not None:
            meta["trace_id"] = obs.trace_id()
            meta["span_id"] = obs.current_span_id()
        return meta

    def _log_batch(self, batch_id, trigger, entries, generation):
        """Flush-observer callback: one JSON line per request in the batch."""
        for meta, rows, wait_us in entries:
            line = {
                "event": "request",
                "request_id": None if meta is None else meta["request_id"],
                "batch_id": batch_id,
                "rows": rows,
                "queue_wait_us": round(wait_us, 1),
                "flush": trigger,
                "generation": generation,
            }
            if meta is not None and meta.get("trace_id") is not None:
                line["trace_id"] = meta["trace_id"]
                line["span_id"] = meta.get("span_id")
            print(json.dumps(line), file=self.access_log_stream, flush=True)

    def _request_token(self, request_span):
        """``trace_id:span_id`` response tag (the X-Request-Id analogue)."""
        span_id = getattr(request_span, "span_id", None)
        if span_id is None:
            return None
        return f"{obs.trace_id()}:{span_id}"

    async def _act(self, body):
        payload = json.loads(body)
        observation = np.asarray(payload["observation"], dtype=np.float64)
        if observation.ndim != 1:
            raise ValueError("observation must be a flat vector")
        agent = int(payload["agent"])
        greedy = bool(payload.get("greedy", False))
        with obs.span("serving.request") as request_span:
            actions, probs, generation = await self.batcher.submit(
                observation[None], [agent], [greedy], meta=self._next_meta()
            )
        document = {
            "action": int(actions[0]),
            "probs": [float(p) for p in probs[0]],
            "generation": generation,
        }
        token = self._request_token(request_span)
        if token is not None:
            document["request_id"] = token
        return 200, document

    async def _act_batch(self, body):
        payload = json.loads(body)
        observations = np.asarray(payload["observations"], dtype=np.float64)
        if observations.ndim != 2:
            raise ValueError("observations must be (R, obs_size)")
        agents = [int(a) for a in payload["agents"]]
        greedy = payload.get("greedy", False)
        if isinstance(greedy, bool):
            greedy = [greedy] * len(agents)
        else:
            greedy = [bool(g) for g in greedy]
        if len(agents) != observations.shape[0] or len(greedy) != len(agents):
            raise ValueError(
                "observations, agents, and greedy must agree in length"
            )
        with obs.span("serving.request") as request_span:
            actions, probs, generation = await self.batcher.submit(
                observations, agents, greedy, meta=self._next_meta()
            )
        document = {
            "actions": [int(a) for a in actions],
            "generation": generation,
        }
        if payload.get("return_probs", False):
            document["probs"] = [[float(p) for p in row] for row in probs]
        token = self._request_token(request_span)
        if token is not None:
            document["request_id"] = token
        return 200, document

    def _health(self):
        return {
            "status": "ok",
            "generation": self.engine.generation,
            "checkpoint": self.engine.checkpoint_path,
            "workers": getattr(self.engine, "n_workers", 1),
        }

    def _stats(self):
        stats = dict(self.batcher.stats)
        stats["batch_size_hist"] = {
            str(size): count
            for size, count in sorted(stats["batch_size_hist"].items())
        }
        document = {
            "requests": self.request_count,
            "errors": self.error_count,
            "generation": self.engine.generation,
            "pending_rows": self.batcher.pending_rows,
            "batcher": stats,
        }
        if self.watcher is not None:
            document["reload"] = dict(self.watcher.stats)
        restarts = getattr(self.engine, "total_restarts", None)
        if restarts is not None:
            document["worker_restarts"] = restarts
        return document

    def _metrics(self):
        """The telemetry document behind ``GET /metrics``.

        Built from the global ``repro.obs`` registry (enabled for the
        server's lifetime), so it also surfaces whatever the engine layers
        below record — program cache hit rates, shm backpressure — next to
        the serving tier's own histograms.
        """
        snap = obs.snapshot()
        counters = snap["counters"]
        histograms = snap["histograms"]

        def hist_doc(name):
            state = histograms.get(name)
            if state is None:
                return {"count": 0}
            return {
                "count": state["count"],
                "sum": state["sum"],
                "min": state["min"],
                "max": state["max"],
                "edges": state["edges"],
                "counts": state["counts"],
                "p50": obs.histogram_quantile(state, 0.5),
                "p99": obs.histogram_quantile(state, 0.99),
            }

        document = {
            "telemetry_enabled": obs.enabled(),
            "requests": self.request_count,
            "errors": self.error_count,
            "generation": self.engine.generation,
            "pending_rows": self.batcher.pending_rows,
            "batch_occupancy": hist_doc("serving.batch_rows"),
            "queue_wait_us": hist_doc("serving.queue_wait_us"),
            "flush_reasons": {
                "size": counters.get("serving.flush.size", 0),
                "time": counters.get("serving.flush.time", 0),
            },
            "rejected": counters.get(
                "serving.rejected", self.batcher.stats["rejected"]
            ),
            "reloads": (
                self.watcher.stats["reloads"] if self.watcher is not None
                else 0
            ),
        }
        if self.watcher is not None:
            document["reload"] = dict(self.watcher.stats)
        restarts = getattr(self.engine, "total_restarts", None)
        if restarts is not None:
            document["worker_restarts"] = restarts
        return document


def main(argv=None):
    """CLI entry point: serve a checkpoint until interrupted."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--checkpoint", default=None,
                        help="checkpoint .npz to serve (and hot-reload)")
    parser.add_argument("--framework", default="proposed")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8123)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-us", type=int, default=2000)
    parser.add_argument("--reload-poll-ms", type=int, default=200,
                        help="checkpoint watcher poll interval (0 disables)")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--transport", default="auto",
                        choices=("auto", "pipe", "shm"))
    parser.add_argument("--log-requests", action="store_true",
                        help="emit one structured JSON access-log line per "
                             "request to stderr (off by default)")
    parser.add_argument("--flight-dir", default=None,
                        help="directory for flight-recorder postmortem "
                             "dumps (worker crashes, unhandled exceptions); "
                             "unset disables dumping")
    args = parser.parse_args(argv)

    if args.flight_dir:
        _flight.set_dump_dir(args.flight_dir)
        _flight.install_excepthook()

    config = ServingConfig(
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        reload_poll_ms=args.reload_poll_ms,
        workers=args.workers,
        transport=args.transport,
        host=args.host,
        port=args.port,
        log_requests=args.log_requests,
    )
    spec = FrameworkSpec(name=args.framework)

    async def _serve():
        server = PolicyServer(spec, config, checkpoint_path=args.checkpoint)
        await server.start()
        print(f"serving {args.framework} on {config.host}:{server.port}")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
