"""Multi-worker sharded serving over the rollout transport seam.

One statevector process saturates around one core's worth of batched
evaluation; the sharded engine splits each micro-batch's rows across
worker processes, each holding its own warm framework replica, and
concatenates the probability blocks.  It reuses the exact seam the sharded
rollout collector built: ``make_transport`` pipes or shared-memory rings
(probability blocks ride the ring as generic array blocks), daemon worker
processes, and restart-and-replay crash recovery.

The parent stays the single authority for everything stateful: action
sampling (workers only compute probabilities), the generation counter, and
which checkpoint is current — a restarted worker is simply re-initialised
with the spec and the last broadcast checkpoint path.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback

import numpy as np

from repro import obs as _obs
from repro.marl.parallel.collector import _default_start_method
from repro.marl.parallel.transport import (
    WorkerCrashError,
    make_transport,
    make_worker_endpoint,
)
from repro.obs import flight as _flight
from repro.obs import trace as _trace

from repro.serving.engine import (
    build_inference_framework,
    select_actions,
)

__all__ = ["ShardedPolicyEngine", "serving_worker_main"]


def serving_worker_main(connection, transport_info=None):
    """Blocking command loop run inside each serving worker process.

    Commands: ``init`` (spec + optional checkpoint + optional
    observability config), ``load`` (checkpoint path), ``infer``
    (observation rows + agent indices + optional trace context), ``ping``,
    ``close``, plus the ``clock`` / ``clock_set`` alignment handshake (see
    :mod:`repro.obs.trace`).  Replies put the probability block under
    ``"arrays"`` so the shm transport ships it through the ring.  Commands
    are ringed in the flight recorder so a shard's postmortem shows what
    it was serving when it died.
    """
    try:
        endpoint = make_worker_endpoint(connection, transport_info)
    except Exception:  # noqa: BLE001 — e.g. the shm segment vanished
        try:
            connection.send(("error", traceback.format_exc()))
            connection.close()
        except OSError:
            pass
        return
    framework = None
    while True:
        try:
            message = endpoint.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        command = message[0]
        if _flight.enabled():
            _flight.record("command", command=command)
        if command == "close":
            endpoint.send_ok(None)
            break
        try:
            if command == "init":
                spec, checkpoint_path = message[1], message[2]
                obs_cfg = message[3] if len(message) > 3 else None
                if obs_cfg:
                    if obs_cfg.get("label"):
                        _trace.set_process_label(obs_cfg["label"])
                    if obs_cfg.get("flight_ring"):
                        _flight.attach_file(obs_cfg["flight_ring"])
                framework = build_inference_framework(spec)
                if checkpoint_path is not None:
                    from repro.marl.checkpoint import load_checkpoint

                    load_checkpoint(
                        framework, checkpoint_path, weights_only=True
                    )
                # Warm the compiled programs so the first batch is fast.
                obs = np.zeros(
                    (framework.env.n_agents, framework.env.observation_size)
                )
                framework.actors.rows_probabilities(
                    obs, np.arange(framework.env.n_agents)
                )
                reply = None
            elif command == "load":
                if framework is None:
                    raise RuntimeError("'load' before 'init'")
                from repro.marl.checkpoint import load_checkpoint

                load_checkpoint(framework, message[1], weights_only=True)
                reply = None
            elif command == "infer":
                if framework is None:
                    raise RuntimeError("'infer' before 'init'")
                observations, agents = message[1], message[2]
                ctx = message[3] if len(message) > 3 else None
                if ctx is not None:
                    if _obs.enabled() != bool(ctx.get("telemetry")):
                        _obs.set_enabled(bool(ctx.get("telemetry")))
                    _trace.adopt(ctx.get("trace"))
                with _obs.span("serving.shard_eval"):
                    probs = framework.actors.rows_probabilities(
                        observations, agents
                    )
                reply = {"arrays": [probs]}
            elif command == "ping":
                reply = "pong"
            elif command == "clock":
                reply = _trace.raw_now_us()
            elif command == "clock_set":
                _trace.set_clock_offset_us(message[1])
                reply = None
            else:
                raise RuntimeError(f"unknown serving command {command!r}")
        except Exception:  # noqa: BLE001 — ship any failure to the parent
            if _flight.enabled():
                _flight.record("command_error", command=command)
            endpoint.send_error(traceback.format_exc())
        else:
            endpoint.send_ok(reply)
    endpoint.close()


class _ShardHandle:
    """Parent-side record of one serving worker: process + channel."""

    def __init__(self, context, spec, name, transport):
        self.context = context
        self.spec = spec
        self.name = name
        self.transport = transport
        self.checkpoint_path = None
        self.process = None
        self.channel = None
        self.restarts = 0
        self.flight_ring = None

    def start(self):
        self.transport.reset()
        parent_end, child_end = self.context.Pipe()
        self.process = self.context.Process(
            target=serving_worker_main,
            args=(child_end, self.transport.worker_info()),
            daemon=True,
            name=self.name,
        )
        self.process.start()
        child_end.close()
        self.channel = self.transport.parent_channel(self.process, parent_end)
        obs_cfg = {"label": self.name}
        if _flight.enabled() and _flight.dump_dir() is not None:
            self.flight_ring = os.path.join(
                _flight.dump_dir(), f"{self.name}.ring"
            )
            obs_cfg["flight_ring"] = self.flight_ring
        self.channel.send(("init", self.spec, self.checkpoint_path, obs_cfg))
        self.channel.recv()
        # Clock-alignment handshake (same protocol as rollout workers).
        t0 = _trace.now_us()
        self.channel.send(("clock",))
        worker_now = self.channel.recv()
        t1 = _trace.now_us()
        self.channel.send(
            ("clock_set", _trace.compute_clock_offset(t0, t1, worker_now))
        )
        self.channel.recv()

    def restart(self):
        """Replace a dead shard, dumping a postmortem of its last moments."""
        if _flight.enabled():
            worker_events = None
            if self.flight_ring is not None:
                worker_events = _flight.read_file(self.flight_ring)
            _flight.record(
                "serving_restart", worker=self.name,
                restarts=self.restarts + 1,
            )
            _flight.dump(
                "serving-worker-restart",
                extra={"worker": self.name, "restarts": self.restarts + 1},
                worker_events=worker_events,
            )
        self.terminate()
        self.restarts += 1
        self.start()

    def terminate(self):
        if self.channel is not None:
            self.channel.close()
            self.channel = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover — last resort
                self.process.kill()
                self.process.join(timeout=5.0)
            self.process = None

    def close(self):
        if self.channel is not None and self.process is not None:
            try:
                self.channel.send(("close",))
                self.channel.recv()
            except Exception:  # noqa: BLE001 — dying worker; force below
                pass
        self.terminate()
        self.transport.close()
        if self.flight_ring is not None:
            try:
                os.unlink(self.flight_ring)
            except OSError:
                pass
            self.flight_ring = None


class ShardedPolicyEngine:
    """Fan micro-batches across worker processes; same interface as
    :class:`~repro.serving.engine.PolicyEngine`.

    Args:
        spec: :class:`~repro.serving.engine.FrameworkSpec` every shard
            builds from.
        checkpoint_path: Optional checkpoint loaded into every shard at
            startup.
        n_workers: Shard process count.
        transport: ``"pipe"`` or ``"shm"`` (see
            :mod:`repro.marl.parallel.transport`).
        sample_seed: Seed for the parent-owned sampling stream.
        start_method: Multiprocessing start method override.
    """

    def __init__(self, spec, checkpoint_path=None, n_workers=2,
                 transport="pipe", sample_seed=0, start_method=None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if transport not in ("pipe", "shm"):
            raise ValueError(
                f"transport must be 'pipe' or 'shm', got {transport!r}"
            )
        self.spec = spec
        self.generation = 0
        self.checkpoint_path = None
        self._sample_rng = np.random.default_rng(sample_seed)
        self._closed = False
        context = multiprocessing.get_context(
            start_method if start_method is not None else _default_start_method()
        )
        self._workers = [
            _ShardHandle(
                context, spec, name=f"repro-serving-{w}",
                transport=make_transport(transport),
            )
            for w in range(n_workers)
        ]
        try:
            for worker in self._workers:
                worker.start()
            if checkpoint_path is not None:
                self.load(checkpoint_path)
        except Exception:
            self.close()
            raise

    @property
    def n_workers(self):
        return len(self._workers)

    @property
    def total_restarts(self):
        """Crash-recovery count across the pool (diagnostics)."""
        return sum(w.restarts for w in self._workers)

    def shm_segment_names(self):
        """Live shared-memory segment names (empty for pipe transport).

        Every name here must vanish from ``/dev/shm`` after :meth:`close`
        — the same leak-check contract as the rollout collector.
        """
        names = [w.transport.segment_name() for w in self._workers]
        return [name for name in names if name is not None]

    def _exchange(self, worker, command):
        """Send one command with restart-and-replay crash recovery."""
        try:
            worker.channel.send(command)
            return worker.channel.recv()
        except WorkerCrashError:
            worker.restart()
            worker.channel.send(command)
            return worker.channel.recv()

    def load(self, path):
        """Broadcast a checkpoint to every shard; bumps the generation.

        All shards answer before the generation flips, so no mixed-weights
        batch can be served — a batch is either fully old or fully new.
        """
        for worker in self._workers:
            worker.checkpoint_path = path
            self._exchange(worker, ("load", path))
        self.checkpoint_path = path
        self.generation += 1

    def infer(self, observations, agents):
        """``(R, A)`` probabilities assembled from per-shard blocks."""
        observations = np.asarray(observations, dtype=np.float64)
        agents = np.asarray(agents, dtype=np.int64)
        rows = observations.shape[0]
        n_shards = min(len(self._workers), max(rows, 1))
        splits = np.array_split(np.arange(rows), n_shards)
        # Workers mirror the parent's telemetry flag per command and join
        # its trace: shard evaluation spans parent to the span issuing
        # this infer (the batcher's batch span).
        ctx = {
            "telemetry": _obs.enabled(),
            "trace": _trace.propagation_context(),
        }
        for worker, rows_idx in zip(self._workers, splits):
            try:
                worker.channel.send(
                    ("infer", observations[rows_idx], agents[rows_idx], ctx)
                )
            except WorkerCrashError:
                worker.restart()
                worker.channel.send(
                    ("infer", observations[rows_idx], agents[rows_idx], ctx)
                )
        blocks = []
        for worker, rows_idx in zip(self._workers, splits):
            try:
                reply = worker.channel.recv()
            except WorkerCrashError:
                worker.restart()
                worker.channel.send(
                    ("infer", observations[rows_idx], agents[rows_idx], ctx)
                )
                reply = worker.channel.recv()
            blocks.append(reply["arrays"][0])
        return np.concatenate(blocks, axis=0), self.generation

    def act(self, observations, agents, greedy_mask):
        """``(actions, probs, generation)`` — sampling stays parent-side."""
        probs, generation = self.infer(observations, agents)
        draws = self._sample_rng.random(probs.shape[0])
        return select_actions(probs, greedy_mask, draws), probs, generation

    def ping(self):
        """Round-trip every worker (liveness check)."""
        return [self._exchange(w, ("ping",)) for w in self._workers]

    def close(self):
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter teardown
            pass

    def __repr__(self):
        return (
            f"ShardedPolicyEngine(workers={len(self._workers)}, "
            f"generation={self.generation})"
        )
