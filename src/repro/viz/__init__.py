"""Visualisation: HLS amplitude colouring, qubit heatmaps, ASCII plots."""

from repro.viz.ascii_plots import line_plot, multi_series_table, sparkline
from repro.viz.hls import (
    amplitude_to_hls,
    amplitude_to_rgb,
    phase_to_hue,
    rgb_grid,
)
from repro.viz.qubit_heatmap import QubitStateHeatmap, render_ansi, render_text

__all__ = [
    "line_plot",
    "multi_series_table",
    "sparkline",
    "amplitude_to_hls",
    "amplitude_to_rgb",
    "phase_to_hue",
    "rgb_grid",
    "QubitStateHeatmap",
    "render_ansi",
    "render_text",
]
