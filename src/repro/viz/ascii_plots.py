"""Terminal line plots for training curves (no plotting dependency).

Used by the examples and the benchmark harness to show the Fig. 3 curves
directly in the terminal, and to dump aligned multi-series tables that can
be pasted into external plotting tools.
"""

from __future__ import annotations

import numpy as np

__all__ = ["line_plot", "multi_series_table", "sparkline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(series):
    """One-line unicode sparkline of a numeric series."""
    series = np.asarray(series, dtype=np.float64)
    if series.size == 0:
        return ""
    low, high = float(series.min()), float(series.max())
    if high - low < 1e-12:
        return _SPARK_CHARS[0] * series.size
    scaled = (series - low) / (high - low)
    indices = np.minimum(
        (scaled * len(_SPARK_CHARS)).astype(int), len(_SPARK_CHARS) - 1
    )
    return "".join(_SPARK_CHARS[i] for i in indices)


def line_plot(series_by_name, width=72, height=16, title=None, y_label=None):
    """ASCII line plot of one or more equally-indexed series.

    Args:
        series_by_name: Mapping ``name -> 1-D array``.  Series are drawn
            with distinct marker characters and listed in a legend.
        width: Plot width in characters (x-axis is resampled to fit).
        height: Plot height in rows.
        title: Optional title line.
        y_label: Optional y-axis label in the legend.
    """
    if not series_by_name:
        raise ValueError("need at least one series")
    markers = "*+ox#@%&"
    arrays = {
        name: np.asarray(values, dtype=np.float64)
        for name, values in series_by_name.items()
    }
    y_min = min(float(a.min()) for a in arrays.values())
    y_max = max(float(a.max()) for a in arrays.values())
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]

    for series_index, (name, values) in enumerate(arrays.items()):
        marker = markers[series_index % len(markers)]
        n = len(values)
        for col in range(width):
            # Resample: average the series slice mapping onto this column.
            start = int(col * n / width)
            stop = max(start + 1, int((col + 1) * n / width))
            value = float(values[start:stop].mean())
            level = (value - y_min) / (y_max - y_min)
            row = height - 1 - int(level * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:>10.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(arrays)
    )
    if y_label:
        legend = f"[{y_label}]  " + legend
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def multi_series_table(index, series_by_name, index_label="epoch",
                       float_format="{:.3f}", max_rows=None):
    """Aligned text table: one column per series, one row per index entry."""
    names = list(series_by_name)
    arrays = [np.asarray(series_by_name[n], dtype=np.float64) for n in names]
    index = np.asarray(index)
    for name, arr in zip(names, arrays):
        if len(arr) != len(index):
            raise ValueError(f"series {name!r} length != index length")

    rows = range(len(index))
    if max_rows is not None and len(index) > max_rows:
        stride = int(np.ceil(len(index) / max_rows))
        rows = range(0, len(index), stride)

    header = [index_label] + names
    widths = [max(len(h), 10) for h in header]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for r in rows:
        cells = [str(index[r]).ljust(widths[0])]
        for col, arr in enumerate(arrays):
            cells.append(float_format.format(arr[r]).ljust(widths[col + 1]))
        lines.append("  ".join(cells))
    return "\n".join(lines)
