"""HLS colour mapping for complex quantum amplitudes (Fig. 4).

The paper renders "superpositioned qubit states (magnitude and phase
vector)" in the hue-lightness-saturation colour system: the phase of an
amplitude selects the hue around the colour wheel and the magnitude drives
lightness/saturation.  This module provides the pure-python colour math
(no external plotting dependency) and returns 8-bit RGB triples that both
the ANSI terminal renderer and file exporters consume.
"""

from __future__ import annotations

import colorsys

import numpy as np

__all__ = ["phase_to_hue", "amplitude_to_hls", "amplitude_to_rgb", "rgb_grid"]


def phase_to_hue(phase):
    """Map a phase in ``[-pi, pi]`` onto a hue in ``[0, 1)``."""
    phase = np.asarray(phase, dtype=np.float64)
    return np.mod(phase / (2.0 * np.pi) + 0.5, 1.0)


def amplitude_to_hls(magnitude, phase, max_magnitude=1.0):
    """HLS components for one or more complex amplitudes.

    Hue encodes phase; lightness interpolates from near-black (zero
    magnitude) to mid-lightness (full magnitude); saturation is full except
    for vanishing amplitudes.

    Returns arrays ``(hue, lightness, saturation)`` of the input shape.
    """
    magnitude = np.asarray(magnitude, dtype=np.float64)
    phase = np.asarray(phase, dtype=np.float64)
    if max_magnitude <= 0:
        raise ValueError("max_magnitude must be positive")
    scaled = np.clip(magnitude / max_magnitude, 0.0, 1.0)
    hue = phase_to_hue(phase)
    lightness = 0.08 + 0.52 * scaled
    saturation = np.where(scaled > 1e-9, 0.9, 0.0)
    return hue, lightness, saturation


def amplitude_to_rgb(magnitude, phase, max_magnitude=1.0):
    """8-bit RGB triple(s) for complex amplitude(s)."""
    hue, lightness, saturation = amplitude_to_hls(magnitude, phase, max_magnitude)
    hue = np.atleast_1d(hue)
    lightness = np.atleast_1d(lightness)
    saturation = np.atleast_1d(saturation)
    out = np.empty(hue.shape + (3,), dtype=np.uint8)
    for index in np.ndindex(hue.shape):
        r, g, b = colorsys.hls_to_rgb(
            float(hue[index]), float(lightness[index]), float(saturation[index])
        )
        out[index] = (int(r * 255), int(g * 255), int(b * 255))
    return out if out.shape[:-1] != (1,) else out[0]


def rgb_grid(amplitudes, max_magnitude=None):
    """RGB image array ``(rows, cols, 3)`` for a complex amplitude grid."""
    amplitudes = np.asarray(amplitudes)
    magnitude = np.abs(amplitudes)
    phase = np.where(magnitude > 1e-12, np.angle(amplitudes), 0.0)
    if max_magnitude is None:
        max_magnitude = max(float(magnitude.max()), 1e-12)
    return amplitude_to_rgb(magnitude, phase, max_magnitude)
