"""Qubit-state heatmaps: the paper's Fig. 4 demonstration panels.

A 4-qubit statevector's 16 amplitudes are arranged as a 4x4 grid — the
first two qubits index the row, the last two the column — and each cell is
coloured by magnitude (lightness) and phase (hue).  Rendering targets:

- ANSI truecolor blocks for the terminal (examples / demos),
- plain-text magnitude/phase tables,
- CSV / JSON export for external plotting.
"""

from __future__ import annotations

import json

import numpy as np

from repro.quantum.bloch import amplitude_grid, magnitude_phase
from repro.viz.hls import rgb_grid

__all__ = ["QubitStateHeatmap", "render_ansi", "render_text"]


class QubitStateHeatmap:
    """Heatmap view of one pure state.

    Args:
        psi: A single statevector (``(dim,)`` or ``(1, dim)``).
        rows: Grid rows (default: square-ish split of the dimension).
    """

    def __init__(self, psi, rows=None):
        psi = np.asarray(psi)
        if psi.ndim == 2:
            if psi.shape[0] != 1:
                raise ValueError("QubitStateHeatmap takes a single state")
            psi = psi[0]
        dim = psi.shape[0]
        n_qubits = int(np.log2(dim))
        if 2**n_qubits != dim:
            raise ValueError(f"dimension {dim} is not a power of two")
        if rows is None:
            rows = 2 ** (n_qubits // 2)
        cols = dim // rows
        self.psi = psi
        self.n_qubits = n_qubits
        self.rows = rows
        self.cols = cols
        self.grid = amplitude_grid(psi[None, :], rows, cols)[0]
        self.magnitude, self.phase = magnitude_phase(self.grid)

    def rgb(self, max_magnitude=None):
        """``(rows, cols, 3)`` uint8 colour image."""
        return rgb_grid(self.grid, max_magnitude=max_magnitude)

    def to_csv(self):
        """CSV text with one row per cell: row, col, magnitude, phase."""
        lines = ["row,col,magnitude,phase"]
        for r in range(self.rows):
            for c in range(self.cols):
                lines.append(
                    f"{r},{c},{self.magnitude[r, c]:.6f},{self.phase[r, c]:.6f}"
                )
        return "\n".join(lines) + "\n"

    def to_json(self):
        """JSON document with magnitude and phase grids."""
        return json.dumps(
            {
                "n_qubits": self.n_qubits,
                "rows": self.rows,
                "cols": self.cols,
                "magnitude": self.magnitude.tolist(),
                "phase": self.phase.tolist(),
            },
            indent=2,
        )


def render_ansi(heatmap, cell_width=4):
    """Truecolor ANSI rendering (two terminal rows per grid row)."""
    rgb = heatmap.rgb()
    lines = []
    for r in range(heatmap.rows):
        cells = []
        for c in range(heatmap.cols):
            red, green, blue = (int(v) for v in rgb[r, c])
            cells.append(
                f"\x1b[48;2;{red};{green};{blue}m" + " " * cell_width + "\x1b[0m"
            )
        row = "".join(cells)
        lines.append(row)
        lines.append(row)
    return "\n".join(lines)


def render_text(heatmap):
    """Plain-text magnitude (and phase) table for logs and tests."""
    lines = [f"{heatmap.n_qubits}-qubit state ({heatmap.rows}x{heatmap.cols})"]
    lines.append("magnitude:")
    for r in range(heatmap.rows):
        lines.append(
            "  " + " ".join(f"{heatmap.magnitude[r, c]:.3f}" for c in range(heatmap.cols))
        )
    lines.append("phase/pi:")
    for r in range(heatmap.rows):
        lines.append(
            "  "
            + " ".join(
                f"{heatmap.phase[r, c] / np.pi:+.2f}" for c in range(heatmap.cols)
            )
        )
    return "\n".join(lines)
