"""Shared fixtures for the test suite."""

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running integration tests (excluded by the CI fast job)",
    )


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
