"""Shared numeric helpers for the test suite."""


from __future__ import annotations

import numpy as np

from repro.quantum import statevector as sv


def random_state(rng, n_qubits, batch=1):
    """A normalised random pure-state batch."""
    dim = 2**n_qubits
    psi = rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
    return sv.normalize(psi)


def numeric_gradient(fn, array, epsilon=1e-6):
    """Central-difference gradient of scalar ``fn`` w.r.t. every entry."""
    array = np.asarray(array, dtype=np.float64)
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = fn(array)
        flat[i] = original - epsilon
        minus = fn(array)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def full_gate_matrix(gate_matrix, wires, n_qubits):
    """Embed a gate matrix into the full Hilbert space by kron products.

    Only supports wires in ascending adjacent-free order via permutations —
    used as an independent oracle against the simulator's axis shuffling.
    """
    dim = 2**n_qubits
    k = len(wires)
    other = [w for w in range(n_qubits) if w not in wires]
    perm_qubits = list(wires) + other

    big = np.kron(gate_matrix, np.eye(2 ** len(other), dtype=np.complex128))

    # Basis permutation matrix mapping natural order -> (wires, other).
    perm = np.zeros((dim, dim), dtype=np.complex128)
    for index in range(dim):
        bits = [(index >> (n_qubits - 1 - q)) & 1 for q in range(n_qubits)]
        permuted_bits = [bits[q] for q in perm_qubits]
        new_index = 0
        for bit in permuted_bits:
            new_index = (new_index << 1) | bit
        perm[new_index, index] = 1.0
    return perm.conj().T @ big @ perm
