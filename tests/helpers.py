"""Shared helpers for the test suite: numeric oracles plus the unified
cross-engine rollout equivalence harness.

The repo's determinism contract spans four interchangeable collection
engines — the serial reference loop, the in-process vectorized engine, and
the process-sharded engine over either transition transport (pickle-pipe or
shared-memory ring).  The harness here builds identically-seeded trainers
for any engine over either environment family and asserts bit-identical
episodes, train-epoch metrics, and post-run RNG stream positions, so every
suite pins the contract through one code path instead of hand-rolled
copies.

The **ES axis** extends the same harness to the gradient-free training
engine (:mod:`repro.marl.evolution`): one ES generation must be
bit-identical under the per-member reference loop ("serial"), the stacked
in-process evaluation ("stacked"), and the population-sharded worker pool
over both transports — including the updated base vector and the RNG
stream positions.
"""


from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SingleHopConfig, TrainingConfig
from repro.envs.multi_hop import MultiHopOffloadEnv, layered_topology
from repro.envs.single_hop import SingleHopOffloadEnv
from repro.marl.actors import ActorGroup, ClassicalActor
from repro.marl.critics import ClassicalCentralCritic
from repro.marl.evolution import ESTrainer
from repro.marl.frameworks import Framework
from repro.marl.parallel.transport import EPISODE_COLUMNS
from repro.marl.trainer import CTDETrainer
from repro.quantum import statevector as sv


# -- cross-engine rollout equivalence harness ---------------------------------

#: Every interchangeable collection engine, in contract-chain order.
ROLLOUT_ENGINES = ("serial", "vector", "sharded-pipe", "sharded-shm")

#: Both environment families the contract must hold on.
OFFLOAD_ENV_KINDS = ("single_hop", "multi_hop")

#: The ragged (data-dependent termination) variants of both families:
#: ``terminate_on_overflow`` plus a queue preload high enough that early
#: overflow endings actually occur, so episode lengths genuinely vary
#: under the 5-step harness horizon.  (The multi-hop variant widens the
#: sink layer: the default ``(3, 2, 1)`` topology funnels constant inflow
#: into one sink, which would overflow deterministically on step 1.)
RAGGED_ENV_KINDS = ("single_hop_ragged", "multi_hop_ragged")

#: TrainingConfig fragments realising each engine (n_envs/n_workers filled
#: in by :func:`make_engine_trainer`).
_ENGINE_SETTINGS = {
    "serial": {"rollout_mode": "serial"},
    "vector": {"rollout_mode": "vector"},
    "sharded-pipe": {"rollout_mode": "sharded", "rollout_transport": "pipe"},
    "sharded-shm": {"rollout_mode": "sharded", "rollout_transport": "shm"},
}

# EPISODE_COLUMNS (the per-episode block layout) is imported from the
# transport codec above — one definition for wire format and harness alike.


def make_offload_env(env_kind, seed, episode_limit=5, **env_kwargs):
    """A deterministically seeded SingleHop or MultiHop environment.

    The ``*_ragged`` kinds are the same families with data-dependent
    termination switched on (see :data:`RAGGED_ENV_KINDS`); explicit
    ``env_kwargs`` still win over the ragged defaults.
    """
    if env_kind == "single_hop_ragged":
        env_kwargs.setdefault("terminate_on_overflow", True)
        env_kwargs.setdefault("initial_queue_level", 0.8)
        env_kind = "single_hop"
    elif env_kind == "multi_hop_ragged":
        env_kwargs.setdefault("terminate_on_overflow", True)
        env_kwargs.setdefault("initial_queue_level", 0.8)
        env_kwargs.setdefault("layers", (3, 2, 2))
        env_kind = "multi_hop"
    if env_kind == "single_hop":
        config = SingleHopConfig(episode_limit=episode_limit, **env_kwargs)
        return SingleHopOffloadEnv(config, rng=np.random.default_rng(seed))
    if env_kind == "multi_hop":
        return MultiHopOffloadEnv(
            layered_topology(env_kwargs.pop("layers", (3, 2, 1))),
            rng=np.random.default_rng(seed),
            episode_limit=episode_limit,
            **env_kwargs,
        )
    raise ValueError(f"unknown env kind {env_kind!r}")


def make_classical_team(env, seed, hidden=(5,)):
    """A tiny classical actor team sized to ``env`` (one weight stream)."""
    weight_rng = np.random.default_rng(seed)
    return ActorGroup(
        [
            ClassicalActor(
                env.observation_size, env.action_space.n, hidden, weight_rng
            )
            for _ in range(env.n_agents)
        ]
    )


def make_engine_trainer(env_kind, engine, seed=3, n_envs=4, n_workers=2,
                        episode_limit=5, env_kwargs=None, **train_overrides):
    """An identically-seeded :class:`CTDETrainer` for any collection engine.

    Two calls with the same ``(env_kind, seed, ...)`` but different
    ``engine`` build trainers whose only difference is the collection
    engine — the precondition for asserting bit-identical behaviour.
    """
    if engine not in _ENGINE_SETTINGS:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ROLLOUT_ENGINES}"
        )
    env = make_offload_env(
        env_kind, seed, episode_limit=episode_limit, **(env_kwargs or {})
    )
    actors = make_classical_team(env, seed + 1)
    critic = ClassicalCentralCritic(
        env.state_size, (4,), np.random.default_rng(seed + 7)
    )
    target = ClassicalCentralCritic(
        env.state_size, (4,), np.random.default_rng(seed + 8)
    )
    settings = {
        "n_epochs": 2,
        "episodes_per_epoch": 4,
        "actor_lr": 1e-2,
        "critic_lr": 1e-2,
        "rollout_envs": n_envs,
        "rollout_workers": n_workers,
    }
    settings.update(_ENGINE_SETTINGS[engine])
    settings.update(train_overrides)
    if settings["rollout_mode"] in ("serial", "vector"):
        settings["rollout_workers"] = 1
    config = TrainingConfig(**settings)
    return CTDETrainer(
        env, actors, critic, target, config, np.random.default_rng(seed)
    )


@dataclass
class EngineRun:
    """Everything one engine produced: the bit-identity comparison surface."""

    engine: str
    records: list  # train_epoch metric dicts, in order
    episode_batches: list  # per epoch: the collected Episode objects
    action_rng_state: dict  # trainer.rng position after the run
    env_rng_state: dict  # env.rng position after the run


def run_engine_epochs(env_kind, engine, n_epochs=2, **kwargs):
    """Run ``n_epochs`` train epochs under one engine; capture everything."""
    trainer = make_engine_trainer(env_kind, engine, **kwargs)
    try:
        records, episode_batches = [], []
        for _ in range(n_epochs):
            records.append(trainer.train_epoch())
            # The buffer holds exactly this epoch's episodes until the next
            # epoch clears it.
            episode_batches.append(list(trainer.buffer.episodes))
        return EngineRun(
            engine=engine,
            records=records,
            episode_batches=episode_batches,
            action_rng_state=trainer.rng.bit_generator.state,
            env_rng_state=trainer.env.rng.bit_generator.state,
        )
    finally:
        trainer.close()


def assert_episodes_equal(left, right):
    """Bit-exact equality over every column of two episode lists."""
    assert len(left) == len(right)
    for a, b in zip(left, right):
        for column in EPISODE_COLUMNS:
            assert np.array_equal(
                getattr(a, column), getattr(b, column)
            ), column


def assert_engine_runs_equal(reference, other):
    """Bit-identical episodes, metrics, and RNG stream positions.

    The env stream is only comparable between engines with the same reset
    discipline: the batched engines auto-reset the moment an episode ends,
    pre-drawing the *next* episode's reset randomness that the serial loop
    would draw at its next ``env.reset()`` — mid-run the interleaving is
    bit-identical (that is what the episode/metric/action-stream asserts
    pin), but at run end the batched env stream sits exactly one pending
    reset draw ahead of serial whenever resets consume randomness.
    """
    label = f"{other.engine} vs {reference.engine}"
    assert len(reference.records) == len(other.records), label
    for record_ref, record_other in zip(reference.records, other.records):
        assert record_ref.keys() == record_other.keys(), label
        for key in record_ref:
            assert record_ref[key] == record_other[key], f"{label}: {key}"
    for batch_ref, batch_other in zip(
        reference.episode_batches, other.episode_batches
    ):
        assert_episodes_equal(batch_ref, batch_other)
    assert reference.action_rng_state == other.action_rng_state, label
    if "serial" not in (reference.engine, other.engine):
        assert reference.env_rng_state == other.env_rng_state, label


def assert_cross_engine_equivalence(env_kind, engines, n_epochs=2, **kwargs):
    """The harness: every engine's run is bit-identical to the first's.

    With ``n_envs=1`` the full four-way chain
    serial == vector == sharded-pipe == sharded-shm holds; with more
    lockstep copies the batched engines (vector and both sharded
    transports) remain mutually bit-identical while serial legitimately
    consumes streams differently.
    """
    runs = [
        run_engine_epochs(env_kind, engine, n_epochs=n_epochs, **kwargs)
        for engine in engines
    ]
    for other in runs[1:]:
        assert_engine_runs_equal(runs[0], other)
    return runs


def make_harness_framework(env_kind="single_hop", engine="serial", seed=3,
                           **kwargs):
    """Wrap a harness trainer in a real :class:`Framework`.

    Gives checkpoint tests the framework-level save/load surface while
    reusing :func:`make_engine_trainer`'s identically-seeded construction,
    so resume runs are comparable through the equivalence harness.
    """
    trainer = make_engine_trainer(env_kind, engine, seed=seed, **kwargs)
    metadata = {
        "actor_parameters": int(
            sum(p.data.size for p in trainer.actors.actors[0].parameters())
        ),
        "critic_parameters": int(
            sum(p.data.size for p in trainer.critic.parameters())
        ),
    }
    return Framework(
        "harness", trainer.env, trainer.actors, trainer, metadata,
        np.random.default_rng(seed + 100),
    )


def run_framework_epochs(framework, n_epochs, engine="framework"):
    """Run train epochs on a built framework, captured as an EngineRun.

    The companion to :func:`run_engine_epochs` for resume tests: call it
    on a freshly built framework for the reference run and on a
    checkpoint-restored one for the candidate, then compare with
    :func:`assert_engine_runs_equal`.  (Pick an ``engine`` label without
    ``"serial"`` in it so the env-stream comparison applies.)
    """
    trainer = framework.trainer
    records, episode_batches = [], []
    for _ in range(n_epochs):
        records.append(trainer.train_epoch())
        episode_batches.append(list(trainer.buffer.episodes))
    return EngineRun(
        engine=engine,
        records=records,
        episode_batches=episode_batches,
        action_rng_state=trainer.rng.bit_generator.state,
        env_rng_state=trainer.env.rng.bit_generator.state,
    )


# -- ES cross-engine equivalence axis ------------------------------------------

#: Every interchangeable ES evaluation engine, in contract-chain order:
#: per-member reference loop, stacked in-process, sharded over each
#: transport.
ES_ENGINES = ("serial", "stacked", "sharded-pipe", "sharded-shm")

_ES_ENGINE_SETTINGS = {
    "serial": {"rollout_mode": "serial"},
    "stacked": {"rollout_mode": "vector"},
    "sharded-pipe": {"rollout_mode": "sharded", "rollout_transport": "pipe"},
    "sharded-shm": {"rollout_mode": "sharded", "rollout_transport": "shm"},
}


def make_es_trainer(env_kind, engine, seed=3, population=4, n_envs=1,
                    n_workers=2, episode_limit=5, env_kwargs=None,
                    **train_overrides):
    """An identically-seeded :class:`ESTrainer` for any ES engine.

    Mirrors :func:`make_engine_trainer`: two calls differing only in
    ``engine`` build trainers whose sole difference is how the population
    is evaluated — the precondition for asserting bit-identity.
    """
    if engine not in _ES_ENGINE_SETTINGS:
        raise ValueError(
            f"unknown ES engine {engine!r}; choose from {ES_ENGINES}"
        )
    env = make_offload_env(
        env_kind, seed, episode_limit=episode_limit, **(env_kwargs or {})
    )
    actors = make_classical_team(env, seed + 1)
    settings = {
        "trainer": "es",
        "n_epochs": 2,
        "episodes_per_epoch": 2,
        "es_population": population,
        "es_sigma": 0.05,
        "es_lr": 0.1,
        "rollout_envs": n_envs,
        "rollout_workers": n_workers,
    }
    settings.update(_ES_ENGINE_SETTINGS[engine])
    settings.update(train_overrides)
    if settings["rollout_mode"] in ("serial", "vector"):
        settings["rollout_workers"] = 1
    config = TrainingConfig(**settings)
    return ESTrainer(env, actors, config, np.random.default_rng(seed))


@dataclass
class ESEngineRun:
    """Everything one ES engine produced: the bit-identity surface."""

    engine: str
    records: list  # train_epoch metric dicts, in order
    base_vector: np.ndarray  # theta after the run
    action_rng_state: dict  # trainer.rng position after the run
    env_rng_state: dict  # env.rng position after the run


def run_es_generations(env_kind, engine, n_generations=2, **kwargs):
    """Run ``n_generations`` ES generations under one engine; capture all."""
    trainer = make_es_trainer(env_kind, engine, **kwargs)
    try:
        records = [trainer.train_epoch() for _ in range(n_generations)]
        return ESEngineRun(
            engine=engine,
            records=records,
            base_vector=trainer.base_vector.copy(),
            action_rng_state=trainer.rng.bit_generator.state,
            env_rng_state=trainer.env.rng.bit_generator.state,
        )
    finally:
        trainer.close()


def assert_es_runs_equal(reference, other):
    """Bit-identical generation records, base vectors, and RNG positions."""
    label = f"{other.engine} vs {reference.engine}"
    assert len(reference.records) == len(other.records), label
    for record_ref, record_other in zip(reference.records, other.records):
        assert record_ref.keys() == record_other.keys(), label
        for key in record_ref:
            assert record_ref[key] == record_other[key], f"{label}: {key}"
    assert np.array_equal(reference.base_vector, other.base_vector), label
    assert reference.action_rng_state == other.action_rng_state, label
    assert reference.env_rng_state == other.env_rng_state, label


def assert_es_cross_engine_equivalence(env_kind, engines, n_generations=2,
                                       **kwargs):
    """The ES harness: every engine's run is bit-identical to the first's.

    Unlike the MAPG chain, the full four-way equality holds at *any* env
    copy count: every ES engine shares the same lockstep vector env layout
    (the per-member loop only changes how probabilities are computed), so
    nothing about stream consumption differs between engines.
    """
    runs = [
        run_es_generations(env_kind, engine, n_generations=n_generations,
                           **kwargs)
        for engine in engines
    ]
    for other in runs[1:]:
        assert_es_runs_equal(runs[0], other)
    return runs


def random_state(rng, n_qubits, batch=1):
    """A normalised random pure-state batch."""
    dim = 2**n_qubits
    psi = rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
    return sv.normalize(psi)


def numeric_gradient(fn, array, epsilon=1e-6):
    """Central-difference gradient of scalar ``fn`` w.r.t. every entry."""
    array = np.asarray(array, dtype=np.float64)
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = fn(array)
        flat[i] = original - epsilon
        minus = fn(array)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def full_gate_matrix(gate_matrix, wires, n_qubits):
    """Embed a gate matrix into the full Hilbert space by kron products.

    Only supports wires in ascending adjacent-free order via permutations —
    used as an independent oracle against the simulator's axis shuffling.
    """
    dim = 2**n_qubits
    k = len(wires)
    other = [w for w in range(n_qubits) if w not in wires]
    perm_qubits = list(wires) + other

    big = np.kron(gate_matrix, np.eye(2 ** len(other), dtype=np.complex128))

    # Basis permutation matrix mapping natural order -> (wires, other).
    perm = np.zeros((dim, dim), dtype=np.complex128)
    for index in range(dim):
        bits = [(index >> (n_qubits - 1 - q)) & 1 for q in range(n_qubits)]
        permuted_bits = [bits[q] for q in perm_qubits]
        new_index = 0
        for bit in permuted_bits:
            new_index = (new_index << 1) | bit
        perm[new_index, index] = 1.0
    return perm.conj().T @ big @ perm
