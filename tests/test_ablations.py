"""Smoke tests for the remaining ablation runners (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_barren_plateau,
    run_noise_robustness,
    run_parameter_budget,
    run_shot_budget,
    run_template_comparison,
)
from repro.experiments.registry import run_experiment


class TestNoiseRobustness:
    def test_structure(self):
        result = run_noise_robustness(
            noise_levels=(0.0, 0.05),
            train_epochs=1,
            episode_limit=4,
            n_episodes=1,
            seed=3,
        )
        assert result["noise_levels"] == [0.0, 0.05]
        assert len(result["greedy_rewards"]) == 2
        assert all(r <= 0.0 for r in result["greedy_rewards"])

    def test_reuses_framework(self):
        from repro.experiments.ablations import _train_proposed

        framework = _train_proposed(train_epochs=1, episode_limit=4, seed=3)
        result = run_noise_robustness(
            noise_levels=(0.0,), n_episodes=1, seed=3, framework=framework
        )
        assert len(result["greedy_rewards"]) == 1


class TestShotBudget:
    def test_structure(self):
        result = run_shot_budget(
            shot_counts=(8, None),
            train_epochs=1,
            episode_limit=4,
            n_episodes=1,
            seed=3,
        )
        assert result["shot_counts"] == [8, "exact"]
        assert len(result["greedy_rewards"]) == 2


class TestParameterBudget:
    def test_structure(self):
        result = run_parameter_budget(
            budgets=(5, 10), train_epochs=1, episode_limit=4, seed=3
        )
        assert result["budgets"] == [5, 10]
        assert len(result["final_rewards"]) == 2
        assert result["random_walk_return"] < 0.0


class TestTemplateComparison:
    def test_structure(self):
        result = run_template_comparison(
            templates=("random", "basic_entangler"),
            train_epochs=1,
            episode_limit=4,
            seed=3,
        )
        assert set(result["final_rewards"]) == {"random", "basic_entangler"}
        assert result["actor_parameters"]["random"] == 50
        assert result["actor_parameters"]["basic_entangler"] == 48


class TestBarrenPlateau:
    def test_variance_collapses_with_width(self):
        result = run_barren_plateau(
            qubit_counts=(2, 6), n_gates=20, n_samples=12, seed=5
        )
        variances = result["gradient_variance"]
        assert len(variances) == 2
        assert variances[1] < variances[0]
        assert all(v >= 0.0 for v in variances)
        assert all(np.isfinite(v) for v in result["gradient_mean_abs"])

    def test_registry_dispatch(self):
        result = run_experiment(
            "ablation-plateau", qubit_counts=(2, 3), n_gates=8, n_samples=4
        )
        assert result["experiment"] == "ablation_barren_plateau"
