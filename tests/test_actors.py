"""Unit tests for actors and actor groups."""

import numpy as np
import pytest

from repro.marl.actors import (
    ActorGroup,
    ClassicalActor,
    QuantumActor,
    QuantumActorGroup,
    RandomActor,
)
from repro.nn.tensor import Tensor
from repro.quantum.backends import StatevectorBackend
from repro.quantum.vqc import build_vqc


@pytest.fixture
def shared_vqc():
    return build_vqc(4, 4, 12, seed=3)


def quantum_team(shared_vqc, n=3, logit_scale=1.0):
    actors = [
        QuantumActor(shared_vqc, np.random.default_rng(i), logit_scale=logit_scale)
        for i in range(n)
    ]
    return QuantumActorGroup(actors)


class TestQuantumActor:
    def test_forward_is_distribution(self, shared_vqc, rng):
        actor = QuantumActor(shared_vqc, rng)
        probs = actor(Tensor(rng.uniform(size=(5, 4))))
        assert probs.shape == (5, 4)
        assert np.allclose(probs.data.sum(axis=1), 1.0)
        assert np.all(probs.data > 0)

    def test_log_policy_matches_log_of_policy(self, shared_vqc, rng):
        actor = QuantumActor(shared_vqc, rng)
        obs = rng.uniform(size=(3, 4))
        assert np.allclose(
            actor.log_policy(obs).data, np.log(actor(Tensor(obs)).data)
        )

    def test_probabilities_fast_path_matches_forward(self, shared_vqc, rng):
        actor = QuantumActor(shared_vqc, rng)
        obs = rng.uniform(size=(4, 4))
        assert np.allclose(actor.probabilities(obs), actor(Tensor(obs)).data)

    def test_sample_action_range(self, shared_vqc, rng):
        actor = QuantumActor(shared_vqc, rng)
        actions = {actor.sample_action(rng.uniform(size=4), rng) for _ in range(50)}
        assert actions <= {0, 1, 2, 3}

    def test_greedy_action_is_argmax(self, shared_vqc, rng):
        actor = QuantumActor(shared_vqc, rng)
        obs = rng.uniform(size=4)
        greedy = actor.greedy_action(obs)
        assert greedy == int(np.argmax(actor.probabilities(obs)[0]))

    def test_logit_scale_sharpens(self, shared_vqc, rng):
        flat = QuantumActor(shared_vqc, np.random.default_rng(0), logit_scale=1.0)
        sharp = QuantumActor(shared_vqc, np.random.default_rng(0), logit_scale=5.0)
        obs = rng.uniform(size=4)
        assert sharp.probabilities(obs).max() > flat.probabilities(obs).max()

    def test_parameter_budget(self, shared_vqc, rng):
        assert QuantumActor(shared_vqc, rng).n_parameters() == 12

    def test_with_backend_shares_weights(self, shared_vqc, rng):
        actor = QuantumActor(shared_vqc, rng)
        clone = actor.with_backend(StatevectorBackend())
        assert clone.layer.weights is actor.layer.weights
        obs = rng.uniform(size=4)
        assert np.allclose(actor.probabilities(obs), clone.probabilities(obs))


class TestClassicalActor:
    def test_distribution(self, rng):
        actor = ClassicalActor(4, 4, (5,), rng)
        probs = actor(Tensor(rng.normal(size=(3, 4))))
        assert np.allclose(probs.data.sum(axis=1), 1.0)

    def test_comp2_parameter_budget(self, rng):
        actor = ClassicalActor(4, 4, (5,), rng)
        assert actor.n_parameters() == 49

    def test_sample_and_greedy(self, rng):
        actor = ClassicalActor(4, 4, (5,), rng)
        obs = rng.normal(size=4)
        assert 0 <= actor.sample_action(obs, rng) < 4
        assert actor.greedy_action(obs) == int(
            np.argmax(actor.probabilities(obs)[0])
        )


class TestRandomActor:
    def test_uniform_probabilities(self):
        actor = RandomActor(4)
        probs = actor.probabilities(np.zeros((3, 2)))
        assert np.allclose(probs, 0.25)

    def test_sample(self, rng):
        actor = RandomActor(4)
        assert {actor.sample_action(None, rng) for _ in range(100)} == {0, 1, 2, 3}

    def test_no_greedy(self):
        with pytest.raises(RuntimeError):
            RandomActor(2).greedy_action(None)

    def test_parameterless(self):
        assert RandomActor(2).parameters() == []
        assert RandomActor(2).n_parameters() == 0


class TestActorGroup:
    def test_act_per_agent(self, rng):
        group = ActorGroup([RandomActor(4) for _ in range(3)])
        actions = group.act([np.zeros(2)] * 3, rng)
        assert len(actions) == 3
        assert all(0 <= a < 4 for a in actions)

    def test_parameters_aggregate(self, rng):
        group = ActorGroup([ClassicalActor(4, 4, (5,), rng) for _ in range(2)])
        assert group.n_parameters() == 98
        # Each actor: two Linear layers x (weight, bias) = 4 parameters.
        assert len(group.parameters()) == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ActorGroup([])


class TestQuantumActorGroup:
    def test_team_probabilities_match_individual(self, shared_vqc, rng):
        """The single batched team evaluation must equal per-actor calls."""
        group = quantum_team(shared_vqc, n=3)
        observations = [rng.uniform(size=4) for _ in range(3)]
        team = group.team_probabilities(observations)
        individual = np.concatenate(
            [a.probabilities(o) for a, o in zip(group.actors, observations)]
        )
        assert np.allclose(team, individual, atol=1e-12)

    def test_greedy_act_matches_individual(self, shared_vqc, rng):
        group = quantum_team(shared_vqc, n=3)
        observations = [rng.uniform(size=4) for _ in range(3)]
        team_actions = group.act(observations, rng, greedy=True)
        solo_actions = [
            a.greedy_action(o) for a, o in zip(group.actors, observations)
        ]
        assert team_actions == solo_actions

    def test_sampled_actions_in_range(self, shared_vqc, rng):
        group = quantum_team(shared_vqc, n=4)
        actions = group.act([rng.uniform(size=4)] * 4, rng)
        assert all(0 <= a < 4 for a in actions)

    def test_requires_shared_circuit(self, rng):
        a = QuantumActor(build_vqc(4, 4, 8, seed=1), rng)
        b = QuantumActor(build_vqc(4, 4, 8, seed=1), rng)
        with pytest.raises(ValueError, match="sharing one circuit"):
            QuantumActorGroup([a, b])

    def test_logit_scale_respected_in_group(self, shared_vqc, rng):
        group = quantum_team(shared_vqc, n=2, logit_scale=4.0)
        observations = [rng.uniform(size=4) for _ in range(2)]
        team = group.team_probabilities(observations)
        individual = np.concatenate(
            [a.probabilities(o) for a, o in zip(group.actors, observations)]
        )
        assert np.allclose(team, individual, atol=1e-12)


class TestRowsProbabilities:
    """The ragged-row inference surface the serving tier batches through."""

    def test_quantum_rows_match_per_actor_calls(self, shared_vqc, rng):
        group = quantum_team(shared_vqc, n=3)
        observations = rng.uniform(size=(7, 4))
        agents = np.array([2, 0, 1, 1, 0, 2, 0])
        rows = group.rows_probabilities(observations, agents)
        assert rows.shape == (7, 4)
        for r, agent in enumerate(agents):
            direct = group.actors[agent].probabilities(
                observations[r][None]
            )[0]
            assert np.allclose(rows[r], direct, atol=1e-12), r

    def test_compiled_matches_uncompiled_path(self, shared_vqc, rng):
        def team(compile_rollouts):
            actors = [
                QuantumActor(shared_vqc, np.random.default_rng(i))
                for i in range(3)
            ]
            return QuantumActorGroup(actors,
                                     compile_rollouts=compile_rollouts)

        observations = rng.uniform(size=(6, 4))
        agents = [0, 2, 2, 1, 0, 1]
        assert np.allclose(
            team(True).rows_probabilities(observations, agents),
            team(False).rows_probabilities(observations, agents),
            atol=1e-12,
        )

    def test_classical_group_rows(self, rng):
        group = ActorGroup(
            [ClassicalActor(4, 3, (5,), rng) for _ in range(2)]
        )
        observations = rng.uniform(size=(5, 4))
        agents = [1, 0, 1, 1, 0]
        rows = group.rows_probabilities(observations, agents)
        for r, agent in enumerate(agents):
            direct = group.actors[agent].probabilities(
                observations[r][None]
            )[0]
            assert np.allclose(rows[r], direct, atol=1e-12), r

    def test_empty_batch(self, shared_vqc):
        group = quantum_team(shared_vqc, n=2)
        rows = group.rows_probabilities(np.empty((0, 4)), [])
        assert rows.shape == (0, 4)

    def test_validation(self, shared_vqc, rng):
        group = quantum_team(shared_vqc, n=2)
        observations = rng.uniform(size=(3, 4))
        with pytest.raises(ValueError, match="observations must be"):
            group.rows_probabilities(observations[0], [0])
        with pytest.raises(ValueError, match="agent indices"):
            group.rows_probabilities(observations, [0, 1])
        with pytest.raises(ValueError, match=r"in \[0, 2\)"):
            group.rows_probabilities(observations, [0, 1, 2])


class TestStackedLogPolicies:
    """The single-call training forward (update-path vectorization)."""

    def stacked_and_reference(self, group, rng, batch=5):
        n_agents = group.n_agents
        obs = rng.uniform(size=(batch, n_agents, 4))
        stacked = group.stacked_log_policies(obs)
        assert stacked.shape == (batch, n_agents, group.actors[0].n_actions)
        reference = np.stack(
            [
                actor.log_policy(obs[:, n, :]).data
                for n, actor in enumerate(group.actors)
            ],
            axis=1,
        )
        return obs, stacked, reference

    def test_quantum_values_match_per_agent_forwards(self, shared_vqc, rng):
        group = quantum_team(shared_vqc, n=3)
        _, stacked, reference = self.stacked_and_reference(group, rng)
        assert np.allclose(stacked.data, reference, atol=1e-12)

    def test_quantum_gradients_match_per_agent_backward(self, shared_vqc, rng):
        group = quantum_team(shared_vqc, n=3)
        obs, stacked, _ = self.stacked_and_reference(group, rng)
        upstream = rng.normal(size=stacked.shape)

        stacked.backward(upstream)
        stacked_grads = [a.layer.weights.grad.copy() for a in group.actors]
        group.zero_grad()
        for n, actor in enumerate(group.actors):
            actor.log_policy(obs[:, n, :]).backward(upstream[:, n, :])
        loop_grads = [a.layer.weights.grad.copy() for a in group.actors]
        for fast, slow in zip(stacked_grads, loop_grads):
            assert np.allclose(fast, slow, atol=1e-9)

    def test_born_head_stacked_matches(self, shared_vqc, rng):
        actors = [
            QuantumActor(shared_vqc, np.random.default_rng(i), policy_head="born")
            for i in range(2)
        ]
        group = QuantumActorGroup(actors)
        _, stacked, reference = self.stacked_and_reference(group, rng)
        assert np.allclose(stacked.data, reference, atol=1e-12)

    def test_classical_group_stacks_per_agent_forwards(self, rng):
        group = ActorGroup(
            [ClassicalActor(4, 4, (5,), np.random.default_rng(i)) for i in range(3)]
        )
        obs, stacked, reference = self.stacked_and_reference(group, rng)
        assert np.allclose(stacked.data, reference, atol=1e-15)
        stacked.sum().backward()
        assert all(
            p.grad is not None for actor in group.actors for p in actor.parameters()
        )

    def test_shot_backend_falls_back_to_per_agent_path(self, shared_vqc):
        actors = [
            QuantumActor(
                shared_vqc,
                np.random.default_rng(i),
                backend=StatevectorBackend(shots=64, rng=np.random.default_rng(9)),
                gradient_method="parameter_shift",
            )
            for i in range(2)
        ]
        group = QuantumActorGroup(actors)
        assert group._fast_backend is None
        obs = np.random.default_rng(0).uniform(size=(2, 2, 4))
        stacked = group.stacked_log_policies(obs)
        assert stacked.shape == (2, 2, 4)
        assert np.all(np.isfinite(stacked.data))


class TestBornPolicyHead:
    def test_probabilities_are_measurement_distribution(self, shared_vqc, rng):
        """The born head must equal the exact marginal measurement probs."""
        from repro.quantum import statevector as sv
        from repro.quantum.backends import StatevectorBackend

        actor = QuantumActor(shared_vqc, rng, policy_head="born")
        obs = rng.uniform(size=(3, 4))
        probs = actor.probabilities(obs)
        psi = StatevectorBackend().evolve(
            actor.layer.vqc.circuit, obs, actor.layer.weights.data
        )
        marginal = sv.marginal_probabilities(psi, (0, 1), 4)
        assert np.allclose(probs, marginal, atol=1e-7)

    def test_forward_matches_probabilities(self, shared_vqc, rng):
        from repro.nn.tensor import Tensor

        actor = QuantumActor(shared_vqc, rng, policy_head="born")
        obs = rng.uniform(size=(4, 4))
        assert np.allclose(
            actor(Tensor(obs)).data, actor.probabilities(obs), atol=1e-7
        )

    def test_log_policy_gradcheck(self, shared_vqc, rng):
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor

        actor = QuantumActor(shared_vqc, rng, policy_head="born")
        obs = rng.uniform(size=(2, 4))
        actions = np.array([0, 3])
        loss = F.gather(actor.log_policy(Tensor(obs)), actions).sum()
        loss.backward()
        w = actor.layer.weights
        eps, k = 1e-6, 5
        orig = w.data[k]

        def value():
            lp = actor.log_policy(Tensor(obs))
            return float(F.gather(lp, actions).sum().data)

        w.data[k] = orig + eps
        plus = value()
        w.data[k] = orig - eps
        minus = value()
        w.data[k] = orig
        assert abs((plus - minus) / (2 * eps) - w.grad[k]) < 1e-6

    def test_non_power_of_two_rejected(self, rng):
        vqc = build_vqc(4, 4, 8, seed=2,
                        observables=None)
        from repro.quantum.observables import all_z_observables
        from repro.quantum.vqc import VQC

        three_action = VQC(
            vqc.circuit, all_z_observables(4)[:3], vqc.template
        )
        with pytest.raises(ValueError, match="power-of-two"):
            QuantumActor(three_action, rng, policy_head="born")

    def test_unknown_head_rejected(self, shared_vqc, rng):
        with pytest.raises(ValueError, match="unknown policy head"):
            QuantumActor(shared_vqc, rng, policy_head="argmax")

    def test_group_batched_matches_individual(self, shared_vqc, rng):
        actors = [
            QuantumActor(shared_vqc, np.random.default_rng(i),
                         policy_head="born")
            for i in range(3)
        ]
        group = QuantumActorGroup(actors)
        observations = [rng.uniform(size=4) for _ in range(3)]
        team = group.team_probabilities(observations)
        individual = np.concatenate(
            [a.probabilities(o) for a, o in zip(actors, observations)]
        )
        assert np.allclose(team, individual, atol=1e-10)

    def test_mixed_heads_rejected(self, shared_vqc, rng):
        a = QuantumActor(shared_vqc, np.random.default_rng(0))
        b = QuantumActor(shared_vqc, np.random.default_rng(1),
                         policy_head="born")
        with pytest.raises(ValueError, match="policy head"):
            QuantumActorGroup([a, b])

    def test_with_backend_preserves_head(self, shared_vqc, rng):
        from repro.quantum.backends import StatevectorBackend

        actor = QuantumActor(shared_vqc, rng, policy_head="born")
        clone = actor.with_backend(StatevectorBackend())
        obs = rng.uniform(size=4)
        assert np.allclose(
            actor.probabilities(obs), clone.probabilities(obs), atol=1e-12
        )

    def test_framework_builds_with_born_head(self):
        from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
        from repro.marl.frameworks import build_framework

        fw = build_framework(
            "proposed",
            env_config=SingleHopConfig(episode_limit=4),
            vqc_config=VQCConfig(actor_policy_head="born"),
            train_config=TrainingConfig(
                episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3
            ),
        )
        record = fw.trainer.train_epoch()
        assert np.isfinite(record["actor_loss"])
