"""The array-backend seam: selection, zero-overhead numpy, mock transfers.

Three contracts under test:

1. **Selection** — name / instance / default resolution, the context
   manager, and ``available_array_backends()``.
2. **Zero-overhead numpy default** — every hot op on the numpy backend is
   the numpy function itself (no wrapper frames), and the boundary
   primitives are identities.
3. **Device residency on mock** — compiled programs upload constants once,
   never re-upload them, never round-trip through the host inside the hot
   loop (the mock raises on any implicit mix), and cross back to the host
   exactly once per measure / adjoint boundary.  A full ``train_epoch`` on
   the mock backend runs transfer-clean and bit-identical to numpy.
"""

import numpy as np
import pytest

from repro.config import SingleHopConfig, TrainingConfig, VQCConfig
from repro.marl.frameworks import build_framework
from repro.quantum import backend as qback
from repro.quantum import program as qprog
from repro.quantum import statevector as sv
from repro.quantum.backends import StatevectorBackend
from repro.quantum.gradients import adjoint_backward
from repro.quantum.vqc import build_vqc


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def mock():
    backend = qback.get_array_backend("mock")
    backend.reset_counts()
    return backend


def _problem(rng, n_qubits=4, n_features=4, n_weights=12, batch=5, seed=3):
    vqc = build_vqc(n_qubits, n_features, n_weights, seed=seed)
    inputs = rng.uniform(size=(batch, n_features))
    weights = rng.uniform(-np.pi, np.pi, size=n_weights)
    return vqc, inputs, weights


class TestSelection:
    def test_names_resolve_to_singletons(self):
        assert qback.get_array_backend("numpy") is qback.get_array_backend("numpy")
        assert qback.get_array_backend("mock") is qback.get_array_backend("mock")

    def test_instance_passthrough(self):
        backend = qback.get_array_backend("mock")
        assert qback.get_array_backend(backend) is backend

    def test_none_follows_process_default(self):
        assert qback.get_array_backend(None) is qback.default_array_backend()

    def test_unknown_name_rejected(self):
        with pytest.raises((ValueError, ImportError)):
            qback.get_array_backend("not-a-backend")

    def test_context_manager_restores_default(self):
        before = qback.default_array_backend()
        with qback.using_array_backend("mock"):
            assert qback.default_array_backend().name == "mock"
        assert qback.default_array_backend() is before

    def test_available_always_includes_numpy_and_mock(self):
        names = qback.available_array_backends()
        assert names[:2] == ["numpy", "mock"]

    def test_array_namespace_dispatch(self):
        mock = qback.get_array_backend("mock")
        device = mock.asarray(np.zeros(3))
        assert qback.array_namespace(device) is mock
        assert qback.array_namespace(np.zeros(3)).name == "numpy"
        assert qback.array_namespace(None).name == "numpy"


class TestNumpyZeroOverhead:
    def test_hot_ops_are_numpy_functions(self):
        nb = qback.get_array_backend("numpy")
        assert nb.take is np.take
        assert nb.multiply is np.multiply
        assert nb.matmul is np.matmul
        assert nb.einsum is np.einsum
        assert nb.concatenate is np.concatenate
        assert nb.zeros is np.zeros

    def test_boundaries_are_identities(self):
        nb = qback.get_array_backend("numpy")
        x = np.arange(4.0)
        assert nb.device_constant(x) is x
        assert nb.to_host(x) is x
        assert nb.asarray(x) is x


class TestMockProtocol:
    def test_implicit_host_mix_rejected(self, mock):
        device = mock.asarray(np.arange(4.0))
        with pytest.raises(qback.MockTransferError):
            device + np.arange(4.0)
        with pytest.raises(qback.MockTransferError):
            device[np.array([0, 1])]

    def test_scalars_allowed(self, mock):
        device = mock.asarray(np.arange(4.0))
        out = device * 2.0 + np.float64(1.0)
        assert isinstance(out, qback.MockDeviceArray)

    def test_transfer_counters(self, mock):
        device = mock.asarray(np.arange(4.0))
        assert mock.counts["h2d"] == 1
        host = mock.to_host(device)
        assert mock.counts["d2h"] == 1
        assert type(host) is np.ndarray

    def test_device_constant_uploads_once(self, mock):
        table = np.arange(8.0)
        first = mock.device_constant(table)
        second = mock.device_constant(table)
        assert first is second
        assert mock.counts["constant_uploads"] == 1


class TestProgramResidency:
    def test_evolve_bit_identical_and_transfer_clean(self, rng, mock):
        vqc, inputs, weights = _problem(rng)
        reference = qprog.compile_program(vqc.circuit).evolve(
            inputs, weights, batch_size=inputs.shape[0]
        )
        program = qprog.compile_program(vqc.circuit, mock)
        out = program.evolve(inputs, weights, batch_size=inputs.shape[0])
        assert isinstance(out, qback.MockDeviceArray)
        # Bitwise equality: the mock is numpy underneath and the kernels
        # issue the same ops in the same order.
        assert np.array_equal(mock.to_host(out), reference)

    def test_constants_upload_once_across_calls(self, rng, mock):
        vqc, inputs, weights = _problem(rng)
        program = qprog.compile_program(vqc.circuit, mock)
        program.evolve(inputs, weights, batch_size=inputs.shape[0])
        steady = dict(mock.counts)
        program.evolve(inputs, weights, batch_size=inputs.shape[0])
        assert mock.counts["constant_uploads"] == steady["constant_uploads"]
        assert mock.counts["d2h"] == steady["d2h"]  # evolve never downloads

    def test_measure_downloads_exactly_once(self, rng, mock):
        vqc, inputs, weights = _problem(rng)
        backend = StatevectorBackend(array_backend=mock)
        reference = StatevectorBackend().run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        mock.reset_counts()
        out = backend.run(vqc.circuit, vqc.observables, inputs, weights)
        assert type(out) is np.ndarray
        assert mock.counts["d2h"] == 1
        assert np.array_equal(out, reference)

    def test_adjoint_downloads_only_gradients(self, rng, mock):
        vqc, inputs, weights = _problem(rng)
        upstream = rng.normal(size=(inputs.shape[0], vqc.n_outputs))
        gi_ref, gw_ref = adjoint_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream
        )
        mock.reset_counts()
        gi, gw = adjoint_backward(
            vqc.circuit, vqc.observables, inputs, weights, upstream,
            array_backend=mock,
        )
        assert type(gi) is np.ndarray and type(gw) is np.ndarray
        # One download per returned gradient buffer, nothing mid-sweep.
        assert mock.counts["d2h"] == 2
        assert np.array_equal(gi, gi_ref)
        assert np.array_equal(gw, gw_ref)

    def test_sample_bitstrings_converts_explicitly(self, rng, mock):
        psi = rng.normal(size=(3, 8)) + 1j * rng.normal(size=(3, 8))
        psi /= np.linalg.norm(psi, axis=1, keepdims=True)
        device = mock.asarray(psi)
        mock.reset_counts()
        host_draws = sv.sample_bitstrings(psi, 16, np.random.default_rng(11))
        device_draws = sv.sample_bitstrings(device, 16, np.random.default_rng(11))
        assert mock.counts["d2h"] == 1
        assert np.array_equal(host_draws, device_draws)


class TestTrainEpochResidency:
    def test_train_epoch_transfer_clean_and_bit_identical(self):
        """A full quantum train_epoch on the mock backend must never
        round-trip implicitly (the mock raises if it does), must not
        re-upload program constants after warm-up, and must produce
        bit-identical training metrics to the numpy run."""
        env_config = SingleHopConfig(episode_limit=4)
        train = TrainingConfig(
            n_epochs=2, episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3
        )
        records = {}
        for name in ("numpy", "mock"):
            fw = build_framework(
                "proposed",
                seed=11,
                env_config=env_config,
                train_config=train,
                vqc_config=VQCConfig(array_backend=name),
            )
            if name == "mock":
                mock = qback.get_array_backend("mock")
                mock.reset_counts()
                records[name] = [fw.trainer.train_epoch()]
                warm = dict(mock.counts)
                records[name].append(fw.trainer.train_epoch())
                # Steady state: constants stay resident across epochs.
                assert mock.counts["constant_uploads"] == warm["constant_uploads"]
                assert mock.counts["d2h"] > warm["d2h"]  # measure boundaries only
            else:
                records[name] = [fw.trainer.train_epoch() for _ in range(2)]
        for record_np, record_mock in zip(records["numpy"], records["mock"]):
            for key in record_np:
                assert record_np[key] == record_mock[key], key
