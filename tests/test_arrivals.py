"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.envs.arrivals import (
    BernoulliBurstArrivals,
    DeterministicArrivals,
    TruncatedPoissonArrivals,
    UniformArrivals,
)


class TestUniformArrivals:
    def test_paper_range(self, rng):
        """b ~ U(0, w_p * q_max) with Table II's w_p = 0.3, q_max = 1."""
        process = UniformArrivals(0.3, 1.0)
        samples = process.sample(rng, 10_000)
        assert np.all(samples >= 0.0)
        assert np.all(samples <= 0.3)
        assert samples.mean() == pytest.approx(0.15, abs=0.01)

    def test_mean(self):
        assert UniformArrivals(0.3, 1.0).mean == pytest.approx(0.15)

    def test_zero_rate(self, rng):
        assert np.all(UniformArrivals(0.0, 1.0).sample(rng, 10) == 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UniformArrivals(-0.1, 1.0)


class TestBernoulliBurstArrivals:
    def test_values_binary(self, rng):
        process = BernoulliBurstArrivals(0.3, 0.5)
        samples = process.sample(rng, 1000)
        assert set(np.unique(samples)) <= {0.0, 0.5}

    def test_mean(self, rng):
        process = BernoulliBurstArrivals(0.25, 0.8)
        assert process.mean == pytest.approx(0.2)
        samples = process.sample(rng, 20_000)
        assert samples.mean() == pytest.approx(0.2, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliBurstArrivals(1.5, 0.1)
        with pytest.raises(ValueError):
            BernoulliBurstArrivals(0.5, -0.1)


class TestTruncatedPoissonArrivals:
    def test_cap_respected(self, rng):
        process = TruncatedPoissonArrivals(rate=10.0, packet_size=0.1, cap=0.4)
        samples = process.sample(rng, 1000)
        assert np.all(samples <= 0.4)

    def test_mean_without_truncation(self, rng):
        process = TruncatedPoissonArrivals(rate=1.0, packet_size=0.1, cap=10.0)
        samples = process.sample(rng, 50_000)
        assert samples.mean() == pytest.approx(0.1, abs=0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedPoissonArrivals(-1.0, 0.1, 1.0)


class TestDeterministicArrivals:
    def test_constant(self, rng):
        process = DeterministicArrivals(0.25)
        assert np.all(process.sample(rng, 5) == 0.25)
        assert process.mean == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(-1.0)


class TestReprs:
    def test_all_reprs(self):
        assert "Uniform" in repr(UniformArrivals(0.3, 1.0))
        assert "Bernoulli" in repr(BernoulliBurstArrivals(0.1, 0.5))
        assert "Poisson" in repr(TruncatedPoissonArrivals(1.0, 0.1, 1.0))
        assert "Deterministic" in repr(DeterministicArrivals(0.1))
