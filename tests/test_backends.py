"""Unit tests for the execution backends."""

import numpy as np
import pytest

from repro.quantum.backends import DensityMatrixBackend, StatevectorBackend
from repro.quantum.channels import NoiseModel
from repro.quantum.circuit import ParameterRef, QuantumCircuit
from repro.quantum.observables import Hamiltonian, PauliString, all_z_observables
from repro.quantum.vqc import build_vqc


def simple_circuit():
    circuit = QuantumCircuit(2)
    circuit.add("rx", (0,), ParameterRef.input(0))
    circuit.add("ry", (1,), ParameterRef.input(1))
    circuit.add("cnot", (0, 1))
    circuit.add("rz", (1,), ParameterRef.weight(0))
    circuit.add("crx", (1, 0), ParameterRef.weight(1))
    return circuit


class TestStatevectorBackend:
    def test_run_shape(self, rng):
        circuit = simple_circuit()
        backend = StatevectorBackend()
        inputs = rng.uniform(size=(5, 2))
        out = backend.run(circuit, all_z_observables(2), inputs, [0.3, 0.4])
        assert out.shape == (5, 2)
        assert np.all(np.abs(out) <= 1.0 + 1e-12)

    def test_1d_input_promoted(self):
        circuit = simple_circuit()
        backend = StatevectorBackend()
        out = backend.run(circuit, all_z_observables(2), [0.1, 0.2], [0.0, 0.0])
        assert out.shape == (1, 2)

    def test_run_without_inputs(self):
        circuit = QuantumCircuit(1)
        circuit.add("x", (0,))
        backend = StatevectorBackend()
        out = backend.run(circuit, [PauliString.z(0)], batch_size=3)
        assert out.shape == (3, 1)
        assert np.allclose(out, -1.0)

    def test_missing_inputs_raises(self):
        backend = StatevectorBackend()
        with pytest.raises(ValueError):
            backend.run(simple_circuit(), all_z_observables(2), None, [0.1, 0.2])

    def test_too_few_features_raises(self):
        backend = StatevectorBackend()
        with pytest.raises(ValueError):
            backend.run(
                simple_circuit(), all_z_observables(2), np.zeros((1, 1)), [0.1, 0.2]
            )

    def test_probabilities(self, rng):
        circuit = simple_circuit()
        backend = StatevectorBackend()
        probs = backend.probabilities(circuit, rng.uniform(size=(3, 2)), [0.5, 0.1])
        assert probs.shape == (3, 4)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_hamiltonian_observable(self, rng):
        circuit = simple_circuit()
        backend = StatevectorBackend()
        inputs = rng.uniform(size=(3, 2))
        weights = [0.5, 0.1]
        z0, z1 = all_z_observables(2)
        ham = Hamiltonian([2.0, -1.0], [z0, z1])
        combined = backend.run(circuit, [ham], inputs, weights)
        separate = backend.run(circuit, [z0, z1], inputs, weights)
        assert np.allclose(combined[:, 0], 2 * separate[:, 0] - separate[:, 1])

    def test_unsupported_observable_type(self):
        backend = StatevectorBackend()
        with pytest.raises(TypeError):
            backend.run(simple_circuit(), ["Z0"], np.zeros((1, 2)), [0.0, 0.0])

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            StatevectorBackend(shots=0)


class TestShotSampling:
    def test_shot_estimate_close_to_exact(self, rng):
        vqc = build_vqc(3, 3, 12, seed=2)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(2, 3))
        exact = StatevectorBackend().run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        sampled = StatevectorBackend(shots=40000, rng=rng).run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        assert np.max(np.abs(exact - sampled)) < 0.05

    def test_x_observable_basis_rotation(self, rng):
        # <X> of |+> is exactly +1, so sampling must return all +1.
        circuit = QuantumCircuit(1)
        circuit.add("h", (0,))
        backend = StatevectorBackend(shots=64, rng=rng)
        out = backend.run(circuit, [PauliString({0: "X"})], batch_size=1)
        assert np.allclose(out, 1.0)

    def test_y_observable_basis_rotation(self, rng):
        # RX(-pi/2)|0> is the +1 eigenstate of Y.
        circuit = QuantumCircuit(1)
        circuit.add("rx", (0,), ParameterRef.fixed(-np.pi / 2))
        backend = StatevectorBackend(shots=64, rng=rng)
        out = backend.run(circuit, [PauliString({0: "Y"})], batch_size=1)
        assert np.allclose(out, 1.0)

    def test_shot_noise_scales_down(self, rng):
        vqc = build_vqc(2, 2, 6, seed=4)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(1, 2))
        exact = StatevectorBackend().run(vqc.circuit, vqc.observables, inputs, weights)

        def error(shots, reps=12):
            errors = []
            for _ in range(reps):
                est = StatevectorBackend(shots=shots, rng=rng).run(
                    vqc.circuit, vqc.observables, inputs, weights
                )
                errors.append(np.abs(est - exact).mean())
            return np.mean(errors)

        assert error(2048) < error(32)


class TestDensityMatrixBackend:
    def test_noiseless_matches_statevector(self, rng):
        vqc = build_vqc(3, 6, 15, seed=5)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(4, 6))
        exact = StatevectorBackend().run(vqc.circuit, vqc.observables, inputs, weights)
        dense = DensityMatrixBackend().run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        assert np.allclose(exact, dense, atol=1e-10)

    def test_noise_attenuates_expectations(self, rng):
        vqc = build_vqc(2, 2, 8, seed=6)
        weights = vqc.initial_weights(rng)
        inputs = rng.uniform(size=(6, 2))
        clean = DensityMatrixBackend().run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        noisy = DensityMatrixBackend(NoiseModel(0.05)).run(
            vqc.circuit, vqc.observables, inputs, weights
        )
        assert np.mean(np.abs(noisy)) < np.mean(np.abs(clean))

    def test_noisy_probabilities_sum_to_one(self, rng):
        vqc = build_vqc(2, 2, 8, seed=6)
        weights = vqc.initial_weights(rng)
        backend = DensityMatrixBackend(NoiseModel(0.1))
        probs = backend.probabilities(
            vqc.circuit, rng.uniform(size=(3, 2)), weights
        )
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_shots_on_density_backend(self, rng):
        circuit = QuantumCircuit(1)
        circuit.add("h", (0,))
        backend = DensityMatrixBackend(shots=64, rng=rng)
        out = backend.run(circuit, [PauliString({0: "X"})], batch_size=1)
        assert np.allclose(out, 1.0)

    def test_supports_adjoint_flag(self):
        assert StatevectorBackend().supports_adjoint
        assert not DensityMatrixBackend().supports_adjoint

    def test_repr(self):
        assert "shots=None" in repr(StatevectorBackend())
        assert "NoiseModel" in repr(DensityMatrixBackend())
