"""Unit tests for state analysis: partial trace, Bloch vectors, grids."""

import numpy as np
import pytest

from repro.quantum import statevector as sv
from repro.quantum.bloch import (
    all_bloch_vectors,
    amplitude_grid,
    bloch_vector,
    magnitude_phase,
    partial_trace,
)

from tests.helpers import random_state


class TestPartialTrace:
    def test_product_state(self):
        # |0> (x) |1>: each marginal is pure.
        psi = sv.basis_state(2, 1)
        rho0 = partial_trace(psi, (0,), 2)
        rho1 = partial_trace(psi, (1,), 2)
        assert np.allclose(rho0[0], [[1, 0], [0, 0]])
        assert np.allclose(rho1[0], [[0, 0], [0, 1]])

    def test_bell_state_marginals_maximally_mixed(self):
        psi = sv.zero_state(2)
        psi = sv.apply_gate(psi, "h", (0,), 2)
        psi = sv.apply_gate(psi, "cnot", (0, 1), 2)
        for wire in (0, 1):
            rho = partial_trace(psi, (wire,), 2)
            assert np.allclose(rho[0], np.eye(2) / 2.0)

    def test_trace_one_and_hermitian(self, rng):
        psi = random_state(rng, 3, batch=4)
        rho = partial_trace(psi, (0, 2), 3)
        assert rho.shape == (4, 4, 4)
        assert np.allclose(np.einsum("bii->b", rho), 1.0)
        assert np.allclose(rho, np.conjugate(np.swapaxes(rho, 1, 2)))

    def test_keep_all_wires(self, rng):
        psi = random_state(rng, 2)
        rho = partial_trace(psi, (0, 1), 2)
        expected = np.einsum("bi,bj->bij", psi, np.conjugate(psi))
        assert np.allclose(rho, expected)

    def test_wire_order_transposes_subsystems(self, rng):
        psi = random_state(rng, 2)
        ab = partial_trace(psi, (0, 1), 2)[0]
        ba = partial_trace(psi, (1, 0), 2)[0]
        swap = np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
        )
        assert np.allclose(ba, swap @ ab @ swap)

    def test_duplicate_wires_rejected(self, rng):
        with pytest.raises(ValueError):
            partial_trace(random_state(rng, 2), (0, 0), 2)

    def test_out_of_range_rejected(self, rng):
        with pytest.raises(ValueError):
            partial_trace(random_state(rng, 2), (2,), 2)


class TestBlochVector:
    def test_basis_states(self):
        psi0 = sv.zero_state(1)
        vec = bloch_vector(partial_trace(psi0, (0,), 1))
        assert np.allclose(vec[0], [0, 0, 1])
        psi1 = sv.apply_gate(psi0, "x", (0,), 1)
        vec = bloch_vector(partial_trace(psi1, (0,), 1))
        assert np.allclose(vec[0], [0, 0, -1])

    def test_plus_state(self):
        psi = sv.apply_gate(sv.zero_state(1), "h", (0,), 1)
        vec = bloch_vector(partial_trace(psi, (0,), 1))
        assert np.allclose(vec[0], [1, 0, 0], atol=1e-12)

    def test_pure_states_on_sphere(self, rng):
        psi = random_state(rng, 1, batch=6)
        vec = bloch_vector(partial_trace(psi, (0,), 1))
        assert np.allclose(np.linalg.norm(vec, axis=1), 1.0)

    def test_entangled_marginal_inside_sphere(self):
        psi = sv.apply_gate(sv.zero_state(2), "h", (0,), 2)
        psi = sv.apply_gate(psi, "cnot", (0, 1), 2)
        vec = bloch_vector(partial_trace(psi, (0,), 2))
        assert np.linalg.norm(vec[0]) < 1e-10

    def test_all_bloch_vectors_shape(self, rng):
        psi = random_state(rng, 3, batch=2)
        vectors = all_bloch_vectors(psi, 3)
        assert vectors.shape == (2, 3, 3)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            bloch_vector(np.eye(4)[None])


class TestAmplitudeGrid:
    def test_fig4_layout(self):
        """First two qubits index the row, last two the column."""
        psi = sv.basis_state(4, 0b0110)  # q0q1 = 01, q2q3 = 10
        grid = amplitude_grid(psi, 4, 4)
        assert grid.shape == (1, 4, 4)
        assert abs(grid[0, 1, 2]) == pytest.approx(1.0)

    def test_1d_input_promoted(self):
        grid = amplitude_grid(np.ones(4) / 2.0, 2, 2)
        assert grid.shape == (1, 2, 2)

    def test_incompatible_grid(self):
        with pytest.raises(ValueError):
            amplitude_grid(np.ones(8), 3, 3)

    def test_magnitude_phase(self):
        amp = np.array([1.0, 1j, -1.0, 0.0])
        magnitude, phase = magnitude_phase(amp)
        assert np.allclose(magnitude, [1, 1, 1, 0])
        assert phase[0] == pytest.approx(0.0)
        assert phase[1] == pytest.approx(np.pi / 2)
        assert abs(phase[2]) == pytest.approx(np.pi)
        assert phase[3] == 0.0  # zero amplitude gets zero phase
