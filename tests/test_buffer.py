"""Unit tests for episode storage."""

import numpy as np
import pytest

from repro.marl.buffer import Episode, RolloutBuffer, TransitionBatch


def make_episode(length=3, n_agents=2, obs_size=4, state_size=8, reward=-1.0):
    episode = Episode()
    for t in range(length):
        episode.add(
            state=np.full(state_size, t, dtype=float),
            observations=np.full((n_agents, obs_size), t, dtype=float),
            actions=[t % 4] * n_agents,
            reward=reward,
            next_state=np.full(state_size, t + 1, dtype=float),
            next_observations=np.full((n_agents, obs_size), t + 1, dtype=float),
            done=(t == length - 1),
        )
    return episode.finish()


class TestEpisode:
    def test_shapes_after_finish(self):
        episode = make_episode(length=5)
        assert episode.states.shape == (5, 8)
        assert episode.observations.shape == (5, 2, 4)
        assert episode.actions.shape == (5, 2)
        assert episode.rewards.shape == (5,)
        assert episode.dones.shape == (5,)

    def test_total_reward(self):
        assert make_episode(length=4, reward=-2.0).total_reward == -8.0

    def test_done_only_at_end(self):
        episode = make_episode(length=4)
        assert list(episode.dones) == [False, False, False, True]

    def test_add_after_finish_rejected(self):
        episode = make_episode()
        with pytest.raises(RuntimeError):
            episode.add(
                np.zeros(8), np.zeros((2, 4)), [0, 0], 0.0,
                np.zeros(8), np.zeros((2, 4)), False,
            )

    def test_finish_empty_rejected(self):
        with pytest.raises(ValueError):
            Episode().finish()

    def test_len(self):
        assert len(make_episode(length=7)) == 7


class TestTransitionBatch:
    def test_concatenates_episodes(self):
        batch = TransitionBatch([make_episode(3), make_episode(4)])
        assert batch.size == 7
        assert batch.n_episodes == 2
        assert batch.n_agents == 2
        assert len(batch) == 7

    def test_agent_views(self):
        batch = TransitionBatch([make_episode(3)])
        obs = batch.agent_observations(1)
        acts = batch.agent_actions(1)
        assert obs.shape == (3, 4)
        assert acts.shape == (3,)
        assert np.allclose(obs[2], 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TransitionBatch([])


class TestRolloutBuffer:
    def test_add_and_batch(self):
        buffer = RolloutBuffer()
        buffer.add_episode(make_episode(3))
        buffer.add_episode(make_episode(2))
        assert buffer.n_episodes == 2
        assert buffer.n_transitions == 5
        assert buffer.batch().size == 5

    def test_unfinished_rejected(self):
        buffer = RolloutBuffer()
        with pytest.raises(ValueError):
            buffer.add_episode(Episode())

    def test_capacity_eviction(self):
        buffer = RolloutBuffer(capacity=2)
        first = make_episode(1)
        buffer.add_episode(first)
        buffer.add_episode(make_episode(2))
        buffer.add_episode(make_episode(3))
        assert buffer.n_episodes == 2
        assert first not in buffer.episodes

    def test_clear(self):
        buffer = RolloutBuffer()
        buffer.add_episode(make_episode())
        buffer.clear()
        assert len(buffer) == 0

    def test_mean_episode_reward(self):
        buffer = RolloutBuffer()
        buffer.add_episode(make_episode(2, reward=-1.0))
        buffer.add_episode(make_episode(2, reward=-3.0))
        assert buffer.mean_episode_reward() == pytest.approx(-4.0)

    def test_mean_reward_empty_raises(self):
        with pytest.raises(ValueError):
            RolloutBuffer().mean_episode_reward()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RolloutBuffer(capacity=0)


class TestAddEpisodesBatch:
    """Capacity semantics: N parallel episodes must never self-evict."""

    def test_batch_within_capacity_keeps_order(self):
        buffer = RolloutBuffer(capacity=4)
        batch = [make_episode(1), make_episode(2), make_episode(3)]
        buffer.add_episodes(batch)
        assert buffer.episodes == batch

    def test_batch_exceeding_capacity_rejected_atomically(self):
        buffer = RolloutBuffer(capacity=2)
        with pytest.raises(ValueError, match="exceeds capacity"):
            buffer.add_episodes([make_episode(1) for _ in range(3)])
        assert buffer.n_episodes == 0  # nothing partially stored

    def test_batch_at_exact_capacity_accepted(self):
        buffer = RolloutBuffer(capacity=3)
        buffer.add_episodes([make_episode(1) for _ in range(3)])
        assert buffer.n_episodes == 3

    def test_batch_evicts_older_episodes_only(self):
        buffer = RolloutBuffer(capacity=3)
        old = make_episode(1)
        buffer.add_episode(old)
        batch = [make_episode(2), make_episode(3), make_episode(4)]
        buffer.add_episodes(batch)
        assert buffer.n_episodes == 3
        assert old not in buffer.episodes
        assert buffer.episodes == batch

    def test_empty_batch_is_noop(self):
        buffer = RolloutBuffer(capacity=2)
        buffer.add_episodes([])
        assert buffer.n_episodes == 0

    def test_unfinished_episode_in_batch_rejected_atomically(self):
        buffer = RolloutBuffer(capacity=4)
        with pytest.raises(ValueError, match="finished"):
            buffer.add_episodes([make_episode(1), Episode()])
        assert buffer.n_episodes == 0  # the finished episode was not stored
