"""Unit tests for Kraus channels and the noise model."""

import numpy as np
import pytest

from repro.quantum import channels as ch
from repro.quantum.circuit import Operation, ParameterRef


ALL_FACTORIES = [
    ch.depolarizing,
    ch.bit_flip,
    ch.phase_flip,
    ch.bit_phase_flip,
    ch.amplitude_damping,
    ch.phase_damping,
]


class TestKrausChannels:
    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 1.0])
    def test_trace_preserving(self, factory, p):
        channel = factory(p)
        total = sum(k.conj().T @ k for k in channel.kraus_operators)
        assert np.allclose(total, np.eye(channel.dim))

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_invalid_probability(self, factory):
        with pytest.raises(ValueError):
            factory(-0.1)
        with pytest.raises(ValueError):
            factory(1.5)

    def test_n_qubits(self):
        assert ch.depolarizing(0.1).n_qubits == 1

    def test_non_trace_preserving_rejected(self):
        with pytest.raises(ValueError, match="not trace preserving"):
            ch.KrausChannel("bad", [np.eye(2) * 0.5])

    def test_empty_kraus_rejected(self):
        with pytest.raises(ValueError):
            ch.KrausChannel("empty", [])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ch.KrausChannel("mixed", [np.eye(2), np.eye(4)])

    def test_repr(self):
        assert "depolarizing" in repr(ch.depolarizing(0.1))


class TestNoiseModel:
    def _op(self, gate, wires, param=None):
        return Operation(gate=gate, wires=wires, param=param)

    def test_noiseless_default(self):
        model = ch.NoiseModel()
        assert model.is_noiseless
        op = self._op("rx", (0,), ParameterRef.fixed(0.1))
        assert model.channels_after(op) == []

    def test_single_qubit_channel_per_wire(self):
        model = ch.NoiseModel(single_qubit_error=0.01)
        op = self._op("rx", (2,), ParameterRef.fixed(0.1))
        channels = model.channels_after(op)
        assert len(channels) == 1
        assert channels[0][1] == 2

    def test_two_qubit_gate_gets_channel_on_both_wires(self):
        model = ch.NoiseModel(single_qubit_error=0.01)
        op = self._op("cnot", (0, 3))
        channels = model.channels_after(op)
        assert [wire for _, wire in channels] == [0, 3]

    def test_default_two_qubit_ratio(self):
        model = ch.NoiseModel(single_qubit_error=0.01)
        assert model.two_qubit_error == pytest.approx(0.1)

    def test_two_qubit_error_capped_at_one(self):
        model = ch.NoiseModel(single_qubit_error=0.5)
        assert model.two_qubit_error == 1.0

    def test_explicit_two_qubit_error(self):
        model = ch.NoiseModel(single_qubit_error=0.01, two_qubit_error=0.02)
        op = self._op("cnot", (0, 1))
        (channel, _), _ = model.channels_after(op)
        assert "0.02" in channel.name

    def test_custom_factory(self):
        model = ch.NoiseModel(
            single_qubit_error=0.3, channel_factory=ch.bit_flip
        )
        op = self._op("rx", (0,), ParameterRef.fixed(0.0))
        (channel, _), = model.channels_after(op)
        assert "bit_flip" in channel.name

    def test_repr(self):
        assert "single_qubit_error=0.01" in repr(
            ch.NoiseModel(single_qubit_error=0.01)
        )
