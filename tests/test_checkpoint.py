"""Unit tests for framework checkpointing."""

import numpy as np
import pytest

from repro.config import SingleHopConfig, TrainingConfig
from repro.marl.checkpoint import (
    checkpoint_info,
    load_checkpoint,
    save_checkpoint,
)
from repro.marl.frameworks import build_framework

ENV = SingleHopConfig(episode_limit=5)
TRAIN = TrainingConfig(episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3)


def build(name="proposed", seed=0):
    return build_framework(name, seed=seed, env_config=ENV, train_config=TRAIN)


class TestRoundtrip:
    @pytest.mark.parametrize("name", ["proposed", "comp1", "comp2", "comp3"])
    def test_policy_identical_after_restore(self, name, tmp_path, rng):
        source = build(name, seed=1)
        source.train(n_epochs=2)
        path = save_checkpoint(source, str(tmp_path / "ckpt"))

        target = build(name, seed=99)  # different init
        observations = rng.uniform(size=(3, ENV.observation_size))
        before = source.actors.actors[0].probabilities(observations)
        assert not np.allclose(
            before, target.actors.actors[0].probabilities(observations)
        )

        load_checkpoint(target, path)
        after = target.actors.actors[0].probabilities(observations)
        assert np.allclose(before, after, atol=1e-12)

    def test_critic_restored(self, tmp_path, rng):
        source = build("proposed", seed=1)
        source.train(n_epochs=2)
        path = save_checkpoint(source, str(tmp_path / "ckpt"))
        target = build("proposed", seed=7)
        load_checkpoint(target, path)
        states = rng.uniform(size=(3, ENV.state_size))
        assert np.allclose(
            source.trainer.critic.values(states),
            target.trainer.critic.values(states),
            atol=1e-12,
        )
        assert np.allclose(
            source.trainer.target_critic.values(states),
            target.trainer.target_critic.values(states),
            atol=1e-12,
        )

    def test_epoch_restored(self, tmp_path):
        source = build("comp2", seed=1)
        source.train(n_epochs=3)
        path = save_checkpoint(source, str(tmp_path / "ckpt"))
        target = build("comp2", seed=2)
        load_checkpoint(target, path)
        assert target.trainer.epoch == 3

    def test_npz_suffix_added(self, tmp_path):
        source = build("comp2", seed=1)
        path = save_checkpoint(source, str(tmp_path / "model"))
        assert path.endswith(".npz")
        load_checkpoint(build("comp2", seed=2), str(tmp_path / "model"))


class TestVectorizedTrainerRoundtrip:
    """Checkpoint round-trip through a trainer using vectorized collection."""

    VECTOR_TRAIN = TrainingConfig(
        episodes_per_epoch=4, actor_lr=1e-3, critic_lr=1e-3, rollout_envs=4
    )

    def build_vectorized(self, seed):
        return build_framework(
            "proposed", seed=seed, env_config=ENV,
            train_config=self.VECTOR_TRAIN,
        )

    def test_save_restore_continue(self, tmp_path, rng):
        source = self.build_vectorized(seed=1)
        assert source.trainer.vectorized_rollouts
        source.train(n_epochs=2)  # "mid-run": more epochs follow below
        path = save_checkpoint(source, str(tmp_path / "vec"))

        target = self.build_vectorized(seed=42)
        load_checkpoint(target, path)
        assert target.trainer.epoch == 2

        # Restored parameters drive identical policies through the
        # vectorized inference path...
        observations = rng.uniform(size=(3, ENV.n_agents, ENV.observation_size))
        assert np.allclose(
            source.actors.batch_probabilities(observations),
            target.actors.batch_probabilities(observations),
            atol=1e-12,
        )
        # ...and identical greedy vectorized rollouts under matched env
        # streams (metric continuity across the save/restore boundary).
        from repro.envs.vector import SingleHopVectorEnv
        from repro.marl.rollout import VectorRolloutCollector

        stats = {}
        for name, framework in (("source", source), ("target", target)):
            vector_env = SingleHopVectorEnv(
                4, config=ENV,
                rngs=[np.random.default_rng(100 + i) for i in range(4)],
            )
            collector = VectorRolloutCollector(vector_env, framework.actors)
            _, stats[name] = collector.collect(4, np.random.default_rng(0),
                                               greedy=True)
        assert stats["source"] == stats["target"]

        # Training continues from the restored epoch and keeps recording.
        record = target.trainer.train_epoch()
        assert record["epoch"] == 3
        assert np.isfinite(record["total_reward"])
        assert target.trainer.history.n_epochs == 1

    def test_restore_into_serial_trainer_is_compatible(self, tmp_path):
        """Collection mode is runtime configuration, not checkpoint state."""
        source = self.build_vectorized(seed=1)
        source.train(n_epochs=1)
        path = save_checkpoint(source, str(tmp_path / "vec"))
        target = build_framework(
            "proposed", seed=5, env_config=ENV, train_config=TRAIN
        )
        load_checkpoint(target, path)
        assert target.trainer.epoch == 1
        record = target.trainer.train_epoch()
        assert record["epoch"] == 2


class TestHeader:
    def test_info(self, tmp_path):
        source = build("proposed", seed=1)
        source.train(n_epochs=1)
        path = save_checkpoint(source, str(tmp_path / "ckpt"))
        info = checkpoint_info(path)
        assert info["framework"] == "proposed"
        assert info["epoch"] == 1
        assert info["metadata"]["actor_parameters"] == 50
        assert any(key.startswith("actor.0.") for key in info["arrays"])


class TestValidation:
    def test_wrong_framework_rejected(self, tmp_path):
        path = save_checkpoint(build("proposed", seed=1), str(tmp_path / "a"))
        with pytest.raises(ValueError, match="checkpoint is for"):
            load_checkpoint(build("comp2", seed=1), path)

    def test_non_strict_allows_compatible_shapes(self, tmp_path):
        """comp1 and proposed share actor shapes but differ in critics."""
        path = save_checkpoint(build("proposed", seed=1), str(tmp_path / "a"))
        with pytest.raises(KeyError):
            load_checkpoint(build("comp1", seed=1), path, strict=False)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(build("comp2", seed=1), str(tmp_path / "a"))
        bigger = build_framework(
            "comp2",
            seed=1,
            env_config=SingleHopConfig(n_agents=2, episode_limit=5),
            train_config=TRAIN,
        )
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(bigger, path)
