"""Unit tests for framework checkpointing."""

import json
import os

import numpy as np
import pytest

from helpers import (
    assert_engine_runs_equal,
    make_harness_framework,
    run_framework_epochs,
)
from repro.config import SingleHopConfig, TrainingConfig
from repro.marl.checkpoint import (
    checkpoint_info,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from repro.marl.frameworks import build_framework

ENV = SingleHopConfig(episode_limit=5)
TRAIN = TrainingConfig(episodes_per_epoch=1, actor_lr=1e-3, critic_lr=1e-3)
ES_TRAIN = TrainingConfig(
    trainer="es", episodes_per_epoch=1, es_population=2, es_sigma=0.05,
    es_lr=0.1,
)


def build(name="proposed", seed=0):
    return build_framework(name, seed=seed, env_config=ENV, train_config=TRAIN)


class TestRoundtrip:
    @pytest.mark.parametrize("name", ["proposed", "comp1", "comp2", "comp3"])
    def test_policy_identical_after_restore(self, name, tmp_path, rng):
        source = build(name, seed=1)
        source.train(n_epochs=2)
        path = save_checkpoint(source, str(tmp_path / "ckpt"))

        target = build(name, seed=99)  # different init
        observations = rng.uniform(size=(3, ENV.observation_size))
        before = source.actors.actors[0].probabilities(observations)
        assert not np.allclose(
            before, target.actors.actors[0].probabilities(observations)
        )

        load_checkpoint(target, path)
        after = target.actors.actors[0].probabilities(observations)
        assert np.allclose(before, after, atol=1e-12)

    def test_critic_restored(self, tmp_path, rng):
        source = build("proposed", seed=1)
        source.train(n_epochs=2)
        path = save_checkpoint(source, str(tmp_path / "ckpt"))
        target = build("proposed", seed=7)
        load_checkpoint(target, path)
        states = rng.uniform(size=(3, ENV.state_size))
        assert np.allclose(
            source.trainer.critic.values(states),
            target.trainer.critic.values(states),
            atol=1e-12,
        )
        assert np.allclose(
            source.trainer.target_critic.values(states),
            target.trainer.target_critic.values(states),
            atol=1e-12,
        )

    def test_epoch_restored(self, tmp_path):
        source = build("comp2", seed=1)
        source.train(n_epochs=3)
        path = save_checkpoint(source, str(tmp_path / "ckpt"))
        target = build("comp2", seed=2)
        load_checkpoint(target, path)
        assert target.trainer.epoch == 3

    def test_npz_suffix_added(self, tmp_path):
        source = build("comp2", seed=1)
        path = save_checkpoint(source, str(tmp_path / "model"))
        assert path.endswith(".npz")
        load_checkpoint(build("comp2", seed=2), str(tmp_path / "model"))


class TestVectorizedTrainerRoundtrip:
    """Checkpoint round-trip through a trainer using vectorized collection."""

    VECTOR_TRAIN = TrainingConfig(
        episodes_per_epoch=4, actor_lr=1e-3, critic_lr=1e-3, rollout_envs=4
    )

    def build_vectorized(self, seed):
        return build_framework(
            "proposed", seed=seed, env_config=ENV,
            train_config=self.VECTOR_TRAIN,
        )

    def test_save_restore_continue(self, tmp_path, rng):
        source = self.build_vectorized(seed=1)
        assert source.trainer.vectorized_rollouts
        source.train(n_epochs=2)  # "mid-run": more epochs follow below
        path = save_checkpoint(source, str(tmp_path / "vec"))

        target = self.build_vectorized(seed=42)
        load_checkpoint(target, path)
        assert target.trainer.epoch == 2

        # Restored parameters drive identical policies through the
        # vectorized inference path...
        observations = rng.uniform(size=(3, ENV.n_agents, ENV.observation_size))
        assert np.allclose(
            source.actors.batch_probabilities(observations),
            target.actors.batch_probabilities(observations),
            atol=1e-12,
        )
        # ...and identical greedy vectorized rollouts under matched env
        # streams (metric continuity across the save/restore boundary).
        from repro.envs.vector import SingleHopVectorEnv
        from repro.marl.rollout import VectorRolloutCollector

        stats = {}
        for name, framework in (("source", source), ("target", target)):
            vector_env = SingleHopVectorEnv(
                4, config=ENV,
                rngs=[np.random.default_rng(100 + i) for i in range(4)],
            )
            collector = VectorRolloutCollector(vector_env, framework.actors)
            _, stats[name] = collector.collect(4, np.random.default_rng(0),
                                               greedy=True)
        assert stats["source"] == stats["target"]

        # Training continues from the restored epoch and keeps recording.
        record = target.trainer.train_epoch()
        assert record["epoch"] == 3
        assert np.isfinite(record["total_reward"])
        assert target.trainer.history.n_epochs == 1

    def test_restore_into_serial_trainer_is_compatible(self, tmp_path):
        """Collection mode is runtime configuration, not checkpoint state."""
        source = self.build_vectorized(seed=1)
        source.train(n_epochs=1)
        path = save_checkpoint(source, str(tmp_path / "vec"))
        target = build_framework(
            "proposed", seed=5, env_config=ENV, train_config=TRAIN
        )
        load_checkpoint(target, path)
        assert target.trainer.epoch == 1
        record = target.trainer.train_epoch()
        assert record["epoch"] == 2


class TestHeader:
    def test_info(self, tmp_path):
        source = build("proposed", seed=1)
        source.train(n_epochs=1)
        path = save_checkpoint(source, str(tmp_path / "ckpt"))
        info = checkpoint_info(path)
        assert info["framework"] == "proposed"
        assert info["epoch"] == 1
        assert info["metadata"]["actor_parameters"] == 50
        assert any(key.startswith("actor.0.") for key in info["arrays"])


class TestValidation:
    def test_wrong_framework_rejected(self, tmp_path):
        path = save_checkpoint(build("proposed", seed=1), str(tmp_path / "a"))
        with pytest.raises(ValueError, match="checkpoint is for"):
            load_checkpoint(build("comp2", seed=1), path)

    def test_non_strict_allows_compatible_shapes(self, tmp_path):
        """comp1 and proposed share actor shapes but differ in critics."""
        path = save_checkpoint(build("proposed", seed=1), str(tmp_path / "a"))
        with pytest.raises(KeyError):
            load_checkpoint(build("comp1", seed=1), path, strict=False)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(build("comp2", seed=1), str(tmp_path / "a"))
        bigger = build_framework(
            "comp2",
            seed=1,
            env_config=SingleHopConfig(n_agents=2, episode_limit=5),
            train_config=TRAIN,
        )
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(bigger, path)


class TestAtomicSave:
    """Crash-mid-save simulations: the old pair survives or the tear shows."""

    def test_crash_before_replace_preserves_old_pair(self, tmp_path,
                                                     monkeypatch):
        source = build("comp2", seed=1)
        source.train(n_epochs=1)
        path = save_checkpoint(source, str(tmp_path / "ck"))
        before = checkpoint_info(path)

        source.train(n_epochs=1)
        with monkeypatch.context() as m:
            def crash(src, dst):
                raise RuntimeError("killed mid-save")
            m.setattr(os, "replace", crash)
            with pytest.raises(RuntimeError, match="killed mid-save"):
                save_checkpoint(source, str(tmp_path / "ck"))

        # Old pair untouched and loadable; no temp-file litter left behind.
        assert checkpoint_info(path) == before
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "ck.json", "ck.npz",
        ]
        target = build("comp2", seed=9)
        load_checkpoint(target, path)
        assert target.trainer.epoch == 1

    def test_crash_between_renames_is_detectable(self, tmp_path, monkeypatch):
        source = build("comp2", seed=1)
        source.train(n_epochs=1)
        path = save_checkpoint(source, str(tmp_path / "ck"))

        source.train(n_epochs=1)
        real_replace = os.replace
        replaced = []
        with monkeypatch.context() as m:
            def crash_after_first(src, dst):
                if replaced:
                    raise RuntimeError("killed between renames")
                replaced.append(dst)
                real_replace(src, dst)
            m.setattr(os, "replace", crash_after_first)
            with pytest.raises(RuntimeError, match="between renames"):
                save_checkpoint(source, str(tmp_path / "ck"))

        # New archive behind the old header: the checksum exposes the tear,
        # and loading refuses rather than mixing generations.
        assert replaced == [path]
        with pytest.raises(ValueError, match="torn checkpoint"):
            verify_checkpoint(path)
        with pytest.raises(ValueError, match="torn checkpoint"):
            load_checkpoint(build("comp2", seed=9), path)

    def test_tampered_archive_rejected(self, tmp_path):
        source = build("comp2", seed=1)
        path = save_checkpoint(source, str(tmp_path / "ck"))
        with open(path, "ab") as f:
            f.write(b"\x00garbage")
        with pytest.raises(ValueError, match="torn checkpoint"):
            verify_checkpoint(path)

    def test_checkpoint_inside_npz_named_directory(self, tmp_path):
        """Header derivation must only touch the trailing suffix.

        A ``str.replace('.npz', '.json')`` would also rewrite the parent
        directory name and scatter the header into a nonexistent path.
        """
        directory = tmp_path / "runs" / "v1.npz.backup"
        directory.mkdir(parents=True)
        source = build("comp2", seed=1)
        path = save_checkpoint(source, str(directory / "model"))
        assert path == str(directory / "model.npz")
        assert (directory / "model.json").exists()
        assert checkpoint_info(path)["framework"] == "comp2"
        load_checkpoint(build("comp2", seed=4), path)


class TestResumeState:
    """Format v2: optimizer moments, counters and RNG streams round-trip."""

    def test_optimizer_and_counters_roundtrip(self, tmp_path):
        source = build("comp2", seed=1)
        source.train(n_epochs=3)
        path = save_checkpoint(source, str(tmp_path / "ck"))
        target = build("comp2", seed=2)
        load_checkpoint(target, path)

        for attr in ("actor_optimizer", "critic_optimizer"):
            src_state = getattr(source.trainer, attr).state_dict()
            dst_state = getattr(target.trainer, attr).state_dict()
            assert src_state.keys() == dst_state.keys(), attr
            for key in src_state:
                assert np.array_equal(src_state[key], dst_state[key]), (
                    f"{attr}: {key}"
                )
        assert target.trainer.target_syncs == source.trainer.target_syncs
        assert (
            target.trainer.rng.bit_generator.state
            == source.trainer.rng.bit_generator.state
        )
        assert (
            target.trainer.env.rng.bit_generator.state
            == source.trainer.env.rng.bit_generator.state
        )

    def test_resume_bit_identity(self, tmp_path):
        """Save mid-run, restore into a differently-seeded framework,
        continue: the tail is bit-identical to a run that never stopped."""
        reference = make_harness_framework(seed=3)
        run_framework_epochs(reference, 2)  # epochs 1-2, discarded
        reference_tail = run_framework_epochs(
            reference, 2, engine="uninterrupted"
        )

        interrupted = make_harness_framework(seed=3)
        run_framework_epochs(interrupted, 2)
        path = save_checkpoint(interrupted, str(tmp_path / "mid"))

        restored = make_harness_framework(seed=99)  # everything differs
        load_checkpoint(restored, path)
        assert restored.trainer.epoch == 2
        resumed_tail = run_framework_epochs(restored, 2, engine="resumed")

        assert_engine_runs_equal(reference_tail, resumed_tail)

    def test_v1_checkpoint_loads_weights_and_epoch(self, tmp_path):
        """Hand-built version-1 pair: inference-grade load still works."""
        from repro.marl.checkpoint import _framework_state

        source = build("comp2", seed=1)
        source.train(n_epochs=1)
        state = _framework_state(source)
        archive = str(tmp_path / "old.npz")
        np.savez(archive, **state)
        with open(str(tmp_path / "old.json"), "w") as f:
            json.dump({
                "format_version": 1,
                "framework": "comp2",
                "epoch": 1,
                "metadata": source.metadata,
                "arrays": sorted(state),
            }, f)

        target = build("comp2", seed=5)
        load_checkpoint(target, archive)
        assert target.trainer.epoch == 1
        observations = np.random.default_rng(0).uniform(
            size=(3, ENV.observation_size)
        )
        assert np.allclose(
            source.actors.actors[0].probabilities(observations),
            target.actors.actors[0].probabilities(observations),
            atol=1e-12,
        )
        # v1 carries no optimizer state: the target's stays untouched.
        assert int(
            target.trainer.critic_optimizer.state_dict()["step_count"]
        ) == 0


class TestESCheckpoint:
    """The gradient-free trainer checkpoints too (regression: the saver
    used to assume every trainer had a critic)."""

    def build_es(self, seed):
        return build_framework(
            "comp2", seed=seed, env_config=ENV, train_config=ES_TRAIN
        )

    def test_roundtrip(self, tmp_path):
        source = self.build_es(seed=1)
        source.train(n_epochs=2)
        path = save_checkpoint(source, str(tmp_path / "es"))
        target = self.build_es(seed=8)
        load_checkpoint(target, path)
        assert target.trainer.epoch == 2
        assert np.array_equal(
            target.trainer.base_vector, source.trainer.base_vector
        )
        assert (
            target.trainer.optimizer.generation
            == source.trainer.optimizer.generation
        )
        assert (
            target.trainer.rng.bit_generator.state
            == source.trainer.rng.bit_generator.state
        )

    def test_weights_only_crosses_trainer_kinds(self, tmp_path):
        """An ES checkpoint serves through a critic-bearing framework."""
        source = self.build_es(seed=1)
        source.train(n_epochs=1)
        path = save_checkpoint(source, str(tmp_path / "es"))

        serving = build("comp2", seed=3)  # MAPG-built, has critics
        load_checkpoint(serving, path, weights_only=True)
        observations = np.random.default_rng(0).uniform(
            size=(3, ENV.observation_size)
        )
        assert np.allclose(
            source.actors.actors[0].probabilities(observations),
            serving.actors.actors[0].probabilities(observations),
            atol=1e-12,
        )
        # A full (resume) load across trainer kinds must refuse instead.
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(build("comp2", seed=3), path)
