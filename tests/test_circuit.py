"""Unit tests for the circuit IR."""

import numpy as np
import pytest

from repro.quantum.circuit import Operation, ParameterRef, QuantumCircuit


class TestParameterRef:
    def test_input_ref(self):
        ref = ParameterRef.input(3, scale=2.0)
        assert (ref.kind, ref.index, ref.scale) == ("input", 3, 2.0)

    def test_weight_ref(self):
        ref = ParameterRef.weight(0)
        assert (ref.kind, ref.index, ref.scale) == ("weight", 0, 1.0)

    def test_fixed_ref(self):
        assert ParameterRef.fixed(0.5).value == 0.5

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            ParameterRef(kind="other", index=0)

    def test_negative_index(self):
        with pytest.raises(ValueError):
            ParameterRef.input(-1)

    def test_fixed_needs_value(self):
        with pytest.raises(ValueError):
            ParameterRef(kind="fixed")

    def test_frozen(self):
        ref = ParameterRef.weight(1)
        with pytest.raises(AttributeError):
            ref.index = 2


class TestOperation:
    def test_parameterised_gate_needs_param(self):
        with pytest.raises(ValueError):
            Operation(gate="rx", wires=(0,))

    def test_fixed_gate_rejects_param(self):
        with pytest.raises(ValueError):
            Operation(gate="h", wires=(0,), param=ParameterRef.fixed(1.0))

    def test_wire_arity(self):
        with pytest.raises(ValueError):
            Operation(gate="cnot", wires=(0,))

    def test_flags(self):
        weight_op = Operation("rx", (0,), ParameterRef.weight(0))
        input_op = Operation("ry", (0,), ParameterRef.input(0))
        fixed_op = Operation("rz", (0,), ParameterRef.fixed(0.1))
        plain_op = Operation("h", (0,))
        assert weight_op.is_trainable and not weight_op.is_input
        assert input_op.is_input and not input_op.is_trainable
        assert fixed_op.is_parameterised
        assert not fixed_op.is_trainable and not fixed_op.is_input
        assert not plain_op.is_parameterised


class TestQuantumCircuit:
    def build(self):
        circuit = QuantumCircuit(3)
        circuit.add("rx", (0,), ParameterRef.input(0, scale=np.pi))
        circuit.add("ry", (1,), ParameterRef.input(1))
        circuit.add("h", (2,))
        circuit.add("rz", (2,), ParameterRef.weight(0))
        circuit.add("crx", (0, 1), ParameterRef.weight(1))
        circuit.add("rx", (1,), ParameterRef.fixed(0.25))
        return circuit

    def test_counts(self):
        circuit = self.build()
        assert circuit.n_operations == 6
        assert circuit.n_inputs == 2
        assert circuit.n_weights == 2
        assert len(circuit.trainable_operations) == 2

    def test_gate_counts(self):
        counts = self.build().gate_counts()
        assert counts == {"rx": 2, "ry": 1, "h": 1, "rz": 1, "crx": 1}

    def test_wire_out_of_range(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.add("h", (2,))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_validate_contiguous_weights(self):
        circuit = QuantumCircuit(1)
        circuit.add("rx", (0,), ParameterRef.weight(1))
        with pytest.raises(ValueError, match="not contiguous"):
            circuit.validate()

    def test_validate_passes(self):
        assert self.build().validate() is not None

    def test_extend(self):
        a = self.build()
        b = QuantumCircuit(3)
        b.add("x", (0,))
        a.extend(b)
        assert a.n_operations == 7

    def test_extend_width_mismatch(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).extend(QuantumCircuit(3))

    def test_copy_independent(self):
        a = self.build()
        b = a.copy()
        b.add("x", (0,))
        assert a.n_operations == 6
        assert b.n_operations == 7

    def test_resolve_fixed(self):
        circuit = self.build()
        op = circuit.operations[5]
        assert circuit.resolve_angle(op) == pytest.approx(0.25)

    def test_resolve_weight(self):
        circuit = self.build()
        op = circuit.operations[3]
        assert circuit.resolve_angle(op, weights=[0.3, 0.4]) == pytest.approx(0.3)

    def test_resolve_weight_batched(self):
        circuit = self.build()
        op = circuit.operations[3]
        weights = np.array([[0.3, 0.4], [0.5, 0.6]])
        assert np.allclose(
            circuit.resolve_angle(op, weights=weights), [0.3, 0.5]
        )

    def test_resolve_input_scaled(self):
        circuit = self.build()
        op = circuit.operations[0]
        inputs = np.array([[0.5, 0.1], [1.0, 0.2]])
        assert np.allclose(
            circuit.resolve_angle(op, inputs=inputs), [0.5 * np.pi, np.pi]
        )

    def test_resolve_missing_inputs(self):
        circuit = self.build()
        with pytest.raises(ValueError):
            circuit.resolve_angle(circuit.operations[0], weights=[0.1, 0.2])

    def test_resolve_missing_weights(self):
        circuit = self.build()
        with pytest.raises(ValueError):
            circuit.resolve_angle(circuit.operations[3], inputs=np.zeros((1, 2)))

    def test_resolve_non_parameterised(self):
        circuit = self.build()
        assert circuit.resolve_angle(circuit.operations[2]) is None

    def test_draw_mentions_everything(self):
        text = self.build().draw()
        assert "x[0]*3.142" in text
        assert "w[1]" in text
        assert "(0.25)" in text
        assert "crx" in text

    def test_draw_truncation(self):
        text = self.build().draw(max_ops=2)
        assert "4 more" in text

    def test_repr(self):
        assert "n_qubits=3" in repr(self.build())
